"""A deterministic global order for the sharded AE event stream.

Each group orders its own events perfectly (consensus), but the HMI
subscribes to *all* groups and needs one coherent alarm sequence. The
rule, applied identically by every observer:

    global order = sort by (logical timestamp, shard id, per-shard seq)

- The **logical timestamp** is the consensus-assigned ContextInfo clock
  (§IV-C): deterministic across the replicas of a group, monotone along
  each group's decision log.
- The **shard id** breaks cross-shard ties: two events stamped at the
  same logical instant by different groups have no causal order, so any
  fixed tiebreak is correct — the shard id is the conventional one.
- The **per-shard sequence** (position in the group's commit order)
  breaks intra-shard ties; it never contradicts the timestamp because
  each group's log is timestamp-monotone.

:func:`merge_event_streams` applies the rule offline to whole per-shard
logs (the ground truth tests compare against). :class:`GlobalAeMerger`
applies it online: it buffers arriving events for a short holdback and
releases them in global order, so the HMI's live AE stream matches the
offline merge whenever cross-shard skew stays inside the holdback —
and stays *deterministic* (same seed, same released sequence) even when
it does not, because late events count but are never reordered
retroactively.
"""

from __future__ import annotations


def merge_key(timestamp: float, shard: int, seq: int) -> tuple:
    """The global AE sort key."""
    return (timestamp, shard, seq)


def merge_event_streams(streams) -> list:
    """Merge per-shard event logs into the global order.

    ``streams`` is a sequence indexed by shard id, each element the
    shard's events in commit order. Returns ``(shard, event)`` pairs in
    global order.
    """
    tagged = []
    for shard, events in enumerate(streams):
        for seq, event in enumerate(events):
            tagged.append((merge_key(event.timestamp, shard, seq), shard, event))
    tagged.sort(key=lambda entry: entry[0])
    return [(shard, event) for _key, shard, event in tagged]


class GlobalAeMerger:
    """Online holdback merge of per-shard AE pushes.

    Parameters
    ----------
    sim:
        The simulator (clock + timers).
    sink:
        ``fn(shard, event)`` called for every released event, in global
        order.
    holdback:
        How long an event may wait for smaller-keyed stragglers from
        other shards before it is released. Larger than the push-path
        latency in the fault-free case; a late event (arriving after
        something greater was already released) is released immediately
        and counted in ``stats["late"]``.
    """

    def __init__(
        self, sim, sink, holdback: float = 0.05, process: str = "ae-merger"
    ) -> None:
        if holdback <= 0:
            raise ValueError("holdback must be positive")
        self.sim = sim
        self.sink = sink
        self.holdback = holdback
        self.process = process
        #: Buffered ``(key, shard, event)`` entries, kept sorted lazily.
        self._pending: list = []
        self._seq: dict[int, int] = {}
        self._timer_armed = False
        self._last_released_key: tuple | None = None
        #: ``(global_seq, shard, event)`` of everything released, in order.
        self.released: list = []
        self.stats = {"offered": 0, "released": 0, "late": 0, "peak_buffer": 0}
        #: (shard, seq) -> open ``shard.merge.holdback`` span.
        self._spans: dict = {}

    @property
    def pending(self) -> int:
        """Events currently held back waiting for the watermark."""
        return len(self._pending)

    def oldest_pending_age(self, now: float) -> float:
        """Age of the oldest buffered event (0.0 when the buffer is empty).

        This is the AE *freshness* signal the SLO engine evaluates: how
        long the most delayed alarm has been invisible to the operator.
        """
        if not self._pending:
            return 0.0
        oldest = min(entry[0][0] for entry in self._pending)
        return max(now - oldest, 0.0)

    def offer(self, shard: int, event) -> None:
        """Feed one event from ``shard`` (in that shard's push order)."""
        seq = self._seq.get(shard, 0)
        self._seq[shard] = seq + 1
        key = merge_key(event.timestamp, shard, seq)
        self.stats["offered"] += 1
        tracer = self.sim.tracer
        if self._last_released_key is not None and key < self._last_released_key:
            # A straggler beyond the holdback: the greater-keyed events
            # are already out, so release it now rather than rewrite
            # history. Deterministic — arrival order is seeded.
            self.stats["late"] += 1
            if tracer is not None and tracer.enabled:
                tracer.point(
                    "shard.merge.late",
                    f"ae:s{shard}:{seq}",
                    process=self.process,
                    shard=shard,
                    seq=seq,
                    timestamp=event.timestamp,
                )
            self._release(key, shard, event)
            return
        if tracer is not None and tracer.enabled:
            self._spans[(shard, seq)] = tracer.begin(
                "shard.merge.holdback",
                f"ae:s{shard}:{seq}",
                process=self.process,
                shard=shard,
                seq=seq,
                timestamp=event.timestamp,
            )
        self._pending.append((key, shard, event))
        if len(self._pending) > self.stats["peak_buffer"]:
            self.stats["peak_buffer"] = len(self._pending)
        if not self._timer_armed:
            self._timer_armed = True
            self.sim.defer(self.holdback, self._on_timer)

    def _on_timer(self) -> None:
        self._timer_armed = False
        self._release_due(self.sim.now - self.holdback)
        if self._pending:
            # Wake exactly when the oldest buffered event matures.
            oldest = min(entry[0][0] for entry in self._pending)
            delay = max(oldest + self.holdback - self.sim.now, 0.0)
            self._timer_armed = True
            self.sim.defer(delay, self._on_timer)

    def _release_due(self, watermark: float) -> None:
        due = [entry for entry in self._pending if entry[0][0] <= watermark]
        if not due:
            return
        due.sort(key=lambda entry: entry[0])
        self._pending = [e for e in self._pending if e[0][0] > watermark]
        for key, shard, event in due:
            self._release(key, shard, event)

    def _release(self, key: tuple, shard: int, event) -> None:
        if self._last_released_key is None or key > self._last_released_key:
            self._last_released_key = key
        self.stats["released"] += 1
        span = self._spans.pop((shard, key[2]), None)
        if span is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.end(span, global_seq=len(self.released))
        self.released.append((len(self.released), shard, event))
        self.sink(shard, event)

    def flush(self) -> None:
        """Drain everything buffered, in global order (quiescence)."""
        self._release_due(float("inf"))

    def released_events(self) -> list:
        """``(shard, event)`` pairs released so far, in global order."""
        return [(shard, event) for _seq, shard, event in self.released]
