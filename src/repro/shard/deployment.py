"""Builder and handle for the sharded SMaRt-SCADA deployment.

:func:`build_sharded_scada` assembles ``shards`` independent BFT groups
— each with its own leader, consensus pipeline, WAL and view — behind
the single-Master facade: one item namespace, the same Frontends and
HMI, the same proxies (now holding one BFT client per group). A 1-shard
build degenerates to the classic :func:`repro.core.build_smartscada`
topology, wire addresses included.

The handle flattens the replicas into one ``proxy_masters`` list
(global index ``shard * n + local``, and every ProxyMaster knows its
``shard``), so the chaos engine, monitors and recovery machinery can
keep addressing replicas by position while grouping any cross-replica
comparison by ``pm.shard``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DEFAULT_LOCAL_LATENCY
from repro.core.proxy_frontend import ProxyFrontend
from repro.core.proxy_hmi import ProxyHMI
from repro.core.proxy_master import ProxyMaster
from repro.core.system import make_network
from repro.crypto import KeyStore
from repro.neoscada.frontend import Frontend
from repro.neoscada.hmi import HMI
from repro.net.network import Network
from repro.shard.config import ShardedScadaConfig
from repro.shard.map import ShardMap
from repro.sim.kernel import Simulator


@dataclass
class ShardedScadaSystem:
    """Handle to an assembled sharded SMaRt-SCADA deployment."""

    sim: Simulator
    net: Network
    config: ShardedScadaConfig
    keystore: KeyStore
    shard_map: ShardMap
    frontends: list
    proxy_frontends: list
    #: Flattened: replicas of shard ``k`` occupy ``[k*n, (k+1)*n)``.
    proxy_masters: list
    proxy_hmi: ProxyHMI
    hmi: HMI
    #: global index -> ReplicaStorage when built durable, else ``None``.
    durable_storage: dict | None = None
    #: item id -> chain factory, so replicas provisioned *after* deploy
    #: time (shard-split spares) get the same configuration.
    handler_factories: dict = field(default_factory=dict)

    @property
    def frontend(self) -> Frontend:
        return self.frontends[0]

    @property
    def shards(self) -> int:
        return self.config.shards

    @property
    def masters(self) -> list:
        return [pm.master for pm in self.proxy_masters]

    @property
    def replicas(self) -> list:
        return [pm.replica for pm in self.proxy_masters]

    def group(self, shard: int) -> list:
        """The ProxyMasters of one group (spares joined later included)."""
        return [pm for pm in self.proxy_masters if pm.shard == shard]

    def shard_of(self, item_id: str) -> int:
        return self.shard_map.shard_of(item_id)

    def start(self) -> None:
        for frontend in self.frontends:
            frontend.start()
        for proxy_frontend in self.proxy_frontends:
            proxy_frontend.start()
        self.proxy_hmi.start()
        self.hmi.start()
        # Let subscriptions, browses and the first consensus settle.
        self.sim.run(until=self.sim.now + 0.2)

    def attach_handlers(self, item_id: str, chain_factory) -> None:
        """Attach an identical handler chain to every replica of every group.

        Handler chains are configuration: installing them everywhere (not
        just on the owning group) keeps a later shard split from changing
        alarm behaviour — the target group is already configured.
        """
        self.handler_factories[item_id] = chain_factory
        for proxy_master in self.proxy_masters:
            proxy_master.attach_handlers(item_id, chain_factory())

    def state_digests(self, shard: int | None = None) -> list:
        """Per-replica state digests, whole deployment or one group.

        Digest equality is only meaningful *within* a group — different
        groups legitimately hold different state. Pass ``shard`` for the
        convergence-check form.
        """
        from repro.crypto import digest

        members = self.proxy_masters if shard is None else self.group(shard)
        return [
            digest(pm.service.snapshot())
            for pm in members
            if pm.replica.active
        ]

    def update_views(self, view, shard: int = 0) -> None:
        """Propagate one group's post-reconfiguration view to its clients."""
        self.proxy_hmi.bft_clients[shard].update_view(view)
        for proxy_frontend in self.proxy_frontends:
            proxy_frontend.bft_clients[shard].update_view(view)
        for proxy_master in self.group(shard):
            proxy_master.vote_client.update_view(view)

    def flush_events(self) -> None:
        """Drain the HMI-side AE merge buffer (quiescence helper)."""
        self.proxy_hmi.flush_events()


def build_sharded_scada(
    sim: Simulator,
    net: Network | None = None,
    config: ShardedScadaConfig | None = None,
    frontend_count: int = 1,
    keystore: KeyStore | None = None,
    replica_classes: dict | None = None,
) -> ShardedScadaSystem:
    """Assemble ``config.shards`` BFT groups behind one item namespace.

    ``replica_classes`` overrides the BFT-server class by *global*
    replica index (Byzantine drills inside one group).
    """
    net = net if net is not None else make_network(sim)
    config = config if config is not None else ShardedScadaConfig()
    keystore = keystore if keystore is not None else KeyStore()
    replica_classes = replica_classes or {}
    groups = config.group_configs()
    shard_map = config.shard_map()

    frontends = []
    proxy_frontends = []
    for i in range(frontend_count):
        frontend = Frontend(sim, net, f"frontend-{i}")
        proxy = ProxyFrontend(
            sim,
            net,
            f"proxy-frontend-{i}",
            frontend_address=frontend.address,
            config=groups[0],
            keystore=keystore,
            invoke_timeout=config.base.invoke_timeout,
            groups=groups,
            shard_map=shard_map,
        )
        net.set_local_pair(frontend.address, proxy.address, DEFAULT_LOCAL_LATENCY)
        frontends.append(frontend)
        proxy_frontends.append(proxy)

    durable_storage = None
    if config.base.durability:
        from repro.storage import ReplicaStorage

        durable_storage = {}
        for shard, group in enumerate(groups):
            for local, address in enumerate(group.addresses):
                durable_storage[config.global_index(shard, local)] = ReplicaStorage(
                    address,
                    fsync_policy=config.base.fsync_policy,
                    fsync_interval=config.base.fsync_interval,
                    checkpoint_retention=config.base.checkpoint_retention,
                )
        storages = dict(durable_storage)
        sim.register_stats_source(
            "storage",
            lambda: {s.address: s.counters() for s in storages.values()},
        )

    proxy_masters = []
    for shard, group in enumerate(groups):
        for local, address in enumerate(group.addresses):
            global_index = config.global_index(shard, local)
            proxy_masters.append(
                ProxyMaster(
                    sim,
                    net,
                    global_index,
                    config.base,
                    keystore,
                    group=group,
                    replica_class=replica_classes.get(global_index),
                    storage=(
                        durable_storage[global_index] if durable_storage else None
                    ),
                    address=address,
                    shard=shard,
                )
            )

    proxy_hmi = ProxyHMI(
        sim,
        net,
        "proxy-hmi",
        config=groups[0],
        keystore=keystore,
        invoke_timeout=config.base.invoke_timeout,
        groups=groups,
        shard_map=shard_map,
        merge_holdback=config.merge_holdback,
        correlate_window=config.correlate_window,
    )
    hmi = HMI(sim, net, "hmi", master_address="proxy-hmi")
    net.set_local_pair("hmi", "proxy-hmi", DEFAULT_LOCAL_LATENCY)

    if config.shards > 1:
        # Shard-tier stats surface for the fleet scoreboard: every
        # router cache in the deployment plus the global AE merger.
        routers = {"proxy-hmi": proxy_hmi.router}
        for proxy in proxy_frontends:
            routers[proxy.address] = proxy.router
        merger = proxy_hmi.merger

        def _router_stats() -> dict:
            totals = {"hits": 0, "misses": 0, "invalidations": 0}
            for router in routers.values():
                for key in totals:
                    totals[key] += router.stats[key]
            totals["epoch"] = shard_map.epoch
            return totals

        def _merger_stats() -> dict:
            stats = dict(merger.stats)
            stats["pending"] = merger.pending
            return stats

        sim.register_stats_source("shard.router", _router_stats)
        sim.register_stats_source("shard.merge", _merger_stats)

    return ShardedScadaSystem(
        sim=sim,
        net=net,
        config=config,
        keystore=keystore,
        shard_map=shard_map,
        frontends=frontends,
        proxy_frontends=proxy_frontends,
        proxy_masters=proxy_masters,
        proxy_hmi=proxy_hmi,
        hmi=hmi,
        durable_storage=durable_storage,
    )
