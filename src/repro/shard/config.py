"""Topology configuration for a sharded deployment.

Group topology is configuration, not code: a
:class:`ShardedScadaConfig` wraps one per-group
:class:`~repro.core.config.SmartScadaConfig` (every group gets the same
protocol tunables) plus the shard count and partition spec, and derives
one :class:`~repro.bftsmart.config.GroupConfig` *per shard* whose
replica addresses are namespaced ``s<k>-replica-<i>`` so the groups
coexist on one network without address collisions.

Shard 0 of a one-shard deployment keeps the classic ``replica-<i>``
addresses, so a 1-shard sharded deployment is wire-compatible with the
unsharded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bftsmart.config import GroupConfig, replica_address
from repro.core.config import SmartScadaConfig
from repro.shard.map import ShardMap


def shard_replica_address(shard: int, index: int, shards: int = 2) -> str:
    """Network address of replica ``index`` of group ``shard``."""
    if shards <= 1:
        return replica_address(index)
    return f"s{shard}-{replica_address(index)}"


@dataclass(frozen=True)
class ShardedScadaConfig:
    """Everything needed to build one sharded SMaRt-SCADA deployment."""

    #: Number of independent BFT groups.
    shards: int = 2
    #: Per-group deployment config (n, f, pipeline, durability, ...).
    base: SmartScadaConfig = field(default_factory=SmartScadaConfig)
    #: Partition spec (see :class:`repro.shard.map.ShardMap`).
    map_kind: str = "hash"
    map_ranges: tuple = ()
    #: Holdback of the global AE merge (:mod:`repro.shard.merge`).
    merge_holdback: float = 0.05
    #: Correlation window of the cross-shard alarm correlator.
    correlate_window: float = 1.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    def shard_map(self) -> ShardMap:
        return ShardMap(self.shards, kind=self.map_kind, ranges=self.map_ranges)

    def group_config(self, shard: int) -> GroupConfig:
        """The ``GroupConfig`` of group ``shard`` (namespaced addresses)."""
        base = self.base.group_config()
        if self.shards == 1:
            return base
        addresses = tuple(
            shard_replica_address(shard, i, self.shards)
            for i in range(self.base.n)
        )
        return GroupConfig(
            n=base.n,
            f=base.f,
            batch_max=base.batch_max,
            batch_wait=base.batch_wait,
            pipeline_depth=base.pipeline_depth,
            request_timeout=base.request_timeout,
            sync_timeout=base.sync_timeout,
            checkpoint_interval=base.checkpoint_interval,
            processing_delay=base.processing_delay,
            execution_lanes=base.execution_lanes,
            fsync_policy=base.fsync_policy,
            fsync_interval=base.fsync_interval,
            checkpoint_retention=base.checkpoint_retention,
            state_retry_interval=base.state_retry_interval,
            addresses=addresses,
        )

    def group_configs(self) -> list:
        return [self.group_config(k) for k in range(self.shards)]

    #: Global replica index of ``(shard, local_index)`` — the flattened
    #: numbering ``ShardedScadaSystem.proxy_masters`` uses.
    def global_index(self, shard: int, local_index: int) -> int:
        return shard * self.base.n + local_index

    def shard_of_index(self, global_index: int) -> int:
        return global_index // self.base.n
