"""Sharded SMaRt-SCADA: N independent BFT groups behind one namespace.

One replicated Master tops out near the paper's Figure 8 ceiling no
matter how deep the consensus pipeline goes — execution is serial by
construction (§III-B challenge b). The only remaining axis is
horizontal: partition the *item namespace* across several independent
BFT-SMaRt groups, each with its own leader, pipeline, WAL and view, and
hide the partitioning behind the existing ProxyFrontend / ProxyHMI
transparency layer so neither the Frontends nor the HMI can tell the
difference (the same seam the paper used to hide replication itself).

The hard parts this package owns:

- :mod:`repro.shard.map` — the item→group partition (hash or range),
  expressed as configuration, with a resolve-once router cache so the
  hot path pays no per-request hashing.
- :mod:`repro.shard.merge` — a deterministic *global* order for the AE
  event stream over the per-shard decision logs: events sort by their
  consensus-assigned logical timestamp with the shard id (then the
  per-shard commit order) as tiebreak, so every observer derives the
  identical global sequence.
- :mod:`repro.shard.correlate` — cross-shard alarm correlation over
  that merged stream.
- :mod:`repro.shard.split` — a live shard split: migrate an item range
  between groups under traffic, then optionally grow the target group
  through the signed reconfiguration protocol.

Exports resolve lazily (PEP 562): :mod:`repro.core.adapter` imports the
shard wire messages, so this ``__init__`` must not import the
deployment layer (which imports :mod:`repro.core`) at module time.
"""

_EXPORTS = {
    "AlarmCorrelator": "repro.shard.correlate",
    "CORRELATED_ALARM": "repro.shard.correlate",
    "GlobalAeMerger": "repro.shard.merge",
    "ShardExport": "repro.shard.messages",
    "ShardImport": "repro.shard.messages",
    "ShardMap": "repro.shard.map",
    "ShardRouter": "repro.shard.map",
    "ShardSplitter": "repro.shard.split",
    "ShardedScadaConfig": "repro.shard.config",
    "ShardedScadaSystem": "repro.shard.deployment",
    "SplitReport": "repro.shard.split",
    "build_sharded_scada": "repro.shard.deployment",
    "hash_shard": "repro.shard.map",
    "merge_event_streams": "repro.shard.merge",
    "merge_key": "repro.shard.merge",
    "shard_replica_address": "repro.shard.config",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
