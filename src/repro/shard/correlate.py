"""Cross-shard alarm correlation over the merged AE stream.

A plant-wide incident (a feeder trip, a coordinated attack) raises
alarms on items that the shard map scattered across several groups; no
single group can see the pattern. The :class:`AlarmCorrelator` consumes
the *globally ordered* AE stream (see :mod:`repro.shard.merge`) and
raises one synthetic ``correlated-alarm`` event whenever alarms from at
least ``min_shards`` distinct shards land within a ``window`` of
logical time.

Determinism: the correlator is a pure function of the merged stream —
its input order is deterministic, its ids are a local counter, and its
timestamps are the triggering event's logical timestamp. Every observer
consuming the same merged stream derives the identical correlations.
"""

from __future__ import annotations

from repro.neoscada.ae.events import EventRecord, Severity

#: Event type of the synthesized cross-shard alarm.
CORRELATED_ALARM = "correlated-alarm"

#: Severities that count as alarm-grade for correlation.
_ALARM_GRADE = (Severity.WARNING, Severity.ALARM, Severity.ERROR)


class AlarmCorrelator:
    """Detects alarm bursts spanning several shards.

    Parameters
    ----------
    window:
        Logical-time span (seconds) within which alarms correlate.
    min_shards:
        Distinct shards that must alarm within the window to trigger.
    sink:
        ``fn(event)`` receiving each synthesized correlated alarm
        (typically the ProxyHMI's AE server publish).
    """

    def __init__(self, window: float = 1.0, min_shards: int = 2, sink=None) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if min_shards < 2:
            raise ValueError("min_shards must be >= 2 (one shard needs no merge)")
        self.window = window
        self.min_shards = min_shards
        self.sink = sink
        #: Recent alarm-grade ``(timestamp, shard, event)`` entries.
        self._recent: list = []
        self._counter = 0
        #: Timestamp until which new correlations are suppressed (one
        #: synthetic alarm per burst, not one per contributing event).
        self._suppress_until = float("-inf")
        #: Every synthesized correlated alarm, in emission order.
        self.correlated: list = []

    def observe(self, shard: int, event: EventRecord):
        """Feed one event from the merged global stream.

        Returns the synthesized :class:`EventRecord` when this event
        completed a cross-shard correlation, else ``None``.
        """
        if event.event_type == CORRELATED_ALARM:
            return None  # never correlate our own output
        if event.severity not in _ALARM_GRADE:
            return None
        now = event.timestamp
        horizon = now - self.window
        self._recent = [e for e in self._recent if e[0] >= horizon]
        self._recent.append((now, shard, event))
        if now < self._suppress_until:
            return None
        shards = {entry[1] for entry in self._recent}
        if len(shards) < self.min_shards:
            return None
        self._counter += 1
        self._suppress_until = now + self.window
        contributors = sorted(
            {entry[2].item_id for entry in self._recent}
        )
        correlated = EventRecord(
            event_id=f"corr-{self._counter}",
            item_id="*",
            event_type=CORRELATED_ALARM,
            severity=Severity.ALARM,
            value=len(shards),
            message=(
                f"alarms on {len(shards)} shards within {self.window:g}s: "
                + ", ".join(contributors)
            ),
            timestamp=now,
        )
        self.correlated.append(correlated)
        if self.sink is not None:
            self.sink(correlated)
        return correlated
