"""Live shard split: migrate an item range between groups under traffic.

The protocol, run as a simulation process by :class:`ShardSplitter`:

1. **Reassign** the items in the shared :class:`~repro.shard.map.ShardMap`
   (one epoch bump). Every proxy's resolve-once router cache invalidates
   on its next lookup, so new ingress routes to the target group while
   the state still lives on the source — the target's Master simply
   mirrors unknown items lazily, exactly as it does at cold start.
2. **Drain**: wait one drain interval so operations that were already
   inside the source group's consensus pipeline commit there.
3. **Export**: submit an ordered :class:`~repro.shard.messages.ShardExport`
   to the source group. Every source replica detaches the identical
   bundle (values, write ownership, event history) at the identical
   point of its total order, and the f+1-voted reply *is* the bundle.
4. **Import**: submit the bundle as an ordered
   :class:`~repro.shard.messages.ShardImport` to the target group. Items
   that already received fresher post-reassignment updates keep their
   live value; everything else (writable flags, ownership, history)
   installs from the bundle.
5. Optionally **grow** the target group — provision a spare replica and
   join it through the signed reconfiguration protocol
   (:meth:`~repro.bftsmart.reconfiguration.Administrator.reconfigure_checked`),
   then wait for its partial state transfer to catch up. Splits shift
   load; the paper's 3f+1 floor forbids shrinking the source instead.

Each split returns a :class:`SplitReport` audit record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.reconfiguration import Administrator
from repro.bftsmart.view import View
from repro.core.proxy_master import ProxyMaster
from repro.shard.config import shard_replica_address
from repro.shard.messages import ShardExport, ShardImport
from repro.wire import decode, encode


@dataclass
class SplitReport:
    """Audit record of one shard split."""

    items: tuple
    target: int
    #: Source shards the items were exported from (usually one).
    sources: tuple = ()
    epoch: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Item values / history events that travelled in export bundles.
    moved_items: int = 0
    moved_events: int = 0
    #: Target-group growth (optional phase 5).
    grew_target: bool = False
    join_view_id: int | None = None
    status: str = "completed"
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "items": list(self.items),
            "target": self.target,
            "sources": list(self.sources),
            "epoch": self.epoch,
            "started_at": round(self.started_at, 6),
            "finished_at": round(self.finished_at, 6),
            "moved_items": self.moved_items,
            "moved_events": self.moved_events,
            "grew_target": self.grew_target,
            "join_view_id": self.join_view_id,
            "status": self.status,
            "detail": self.detail,
        }


class ShardSplitter:
    """Coordinates live item migrations on a sharded deployment.

    Parameters
    ----------
    system:
        A running :class:`~repro.shard.deployment.ShardedScadaSystem`.
    drain:
        Seconds to wait between the map switch and the export, covering
        operations already inside the source pipeline.
    grid:
        Poll interval while awaiting invocations and state transfer.
    """

    def __init__(
        self,
        system,
        drain: float = 0.05,
        grid: float = 0.01,
        reconfig_timeout: float = 2.0,
        transfer_deadline: float = 8.0,
    ) -> None:
        self.sim = system.sim
        self.net = system.net
        self.system = system
        self.drain = drain
        self.grid = grid
        self.reconfig_timeout = reconfig_timeout
        self.transfer_deadline = transfer_deadline
        #: shard -> admin ServiceProxy into that group.
        self._clients: dict[int, ServiceProxy] = {}
        self._admins: dict[int, Administrator] = {}
        self._spares = 0
        #: Every completed/failed :class:`SplitReport`, in order.
        self.reports: list = []

    # -- the protocol ----------------------------------------------------

    def split(self, item_ids, target: int, grow_target: bool = False):
        """Generator process migrating ``item_ids`` to group ``target``.

        Run it with ``sim.run_process(splitter.split(...))``; returns the
        :class:`SplitReport`.
        """
        system = self.system
        if not 0 <= target < system.shards:
            raise ValueError(f"no such shard: {target}")
        report = SplitReport(
            items=tuple(sorted(item_ids)),
            target=target,
            started_at=self.sim.now,
        )
        self.reports.append(report)
        tracer = self.sim.tracer
        trace_id = f"split:{len(self.reports)}"
        root = None
        if tracer is not None and tracer.enabled:
            root = tracer.begin(
                "shard.split",
                trace_id,
                process="shard-splitter",
                target=target,
                items=len(report.items),
            )

        def finish_trace() -> None:
            if root is not None:
                tracer.end(
                    root,
                    status=report.status,
                    moved_items=report.moved_items,
                    moved_events=report.moved_events,
                )

        # Phase 1 — group the items by current owner, then flip the map.
        by_source: dict[int, list] = {}
        for item_id in report.items:
            source = system.shard_map.shard_of(item_id)
            if source != target:
                by_source.setdefault(source, []).append(item_id)
        report.sources = tuple(sorted(by_source))
        system.shard_map.assign(report.items, target)
        report.epoch = system.shard_map.epoch
        if not by_source:
            report.finished_at = self.sim.now
            report.detail = "all items already on the target shard"
            finish_trace()
            return report

        # Phase 2 — drain the source pipelines.
        yield self.sim.timeout(self.drain)

        # Phases 3+4 — export from each source, import into the target.
        for source in sorted(by_source):
            moved = tuple(by_source[source])
            export_span = None
            if root is not None:
                export_span = tracer.begin(
                    "shard.split.export",
                    trace_id,
                    parent=root,
                    process="shard-splitter",
                    source=source,
                    items=len(moved),
                )
            export = yield from self._await(
                self._client(source).invoke_ordered(
                    encode(ShardExport(item_ids=moved, detach=True)),
                    parent=export_span,
                )
            )
            if export_span is not None:
                tracer.end(export_span, ok=export is not None)
            if export is None:
                report.status = "export-failed"
                report.detail = f"shard {source} did not answer the export"
                report.finished_at = self.sim.now
                finish_trace()
                return report
            items, _ownership, events = decode(export)
            report.moved_items += len(items)
            report.moved_events += len(events)
            import_span = None
            if root is not None:
                import_span = tracer.begin(
                    "shard.split.import",
                    trace_id,
                    parent=root,
                    process="shard-splitter",
                    source=source,
                    target=target,
                    items=len(items),
                    events=len(events),
                )
            imported = yield from self._await(
                self._client(target).invoke_ordered(
                    encode(ShardImport(payload=export)),
                    parent=import_span,
                )
            )
            if import_span is not None:
                tracer.end(import_span, ok=imported is not None)
            if imported is None:
                report.status = "import-failed"
                report.detail = f"target shard {target} did not apply the import"
                report.finished_at = self.sim.now
                finish_trace()
                return report

        # Phase 5 — optionally grow the target group under the new load.
        if grow_target:
            yield from self._grow(report, target)

        report.finished_at = self.sim.now
        finish_trace()
        return report

    def _grow(self, report: SplitReport, target: int):
        system = self.system
        admin = self._admin(target)
        spare = self._provision_spare(target)
        result = yield from self._await(
            admin.reconfigure_checked(
                join=(spare.address,), timeout=self.reconfig_timeout
            )
        )
        if result is None or not result.applied:
            report.status = (
                "join-failed" if result is None else f"join-{result.status}"
            )
            report.detail = getattr(result, "detail", "no reconfiguration reply")
            return
        system.update_views(result.view, shard=target)
        self._client(target).update_view(result.view)
        report.grew_target = True
        report.join_view_id = result.view_id
        spare.replica.state_transfer.bootstrap()
        caught_up = yield from self._wait_caught_up(spare, target)
        if not caught_up:
            report.status = "transfer-timed-out"
            report.detail = f"{spare.address} joined but did not catch up"

    # -- plumbing --------------------------------------------------------

    def _client(self, shard: int) -> ServiceProxy:
        client = self._clients.get(shard)
        if client is None:
            group = self.system.config.group_config(shard)
            client = ServiceProxy(
                sim=self.sim,
                net=self.net,
                client_id=f"shard-admin-s{shard}",
                keystore=self.system.keystore,
                view=View(0, group.addresses, group.f),
                invoke_timeout=self.system.config.base.invoke_timeout,
            )
            self._clients[shard] = client
        return client

    def _admin(self, shard: int) -> Administrator:
        admin = self._admins.get(shard)
        if admin is None:
            admin = Administrator(self._client(shard), self.system.keystore)
            self._admins[shard] = admin
        return admin

    def _provision_spare(self, shard: int) -> ProxyMaster:
        """Boot a fresh replica for group ``shard``, anticipating the join."""
        system = self.system
        members = system.group(shard)
        local = len(members)
        address = shard_replica_address(shard, local, system.shards)
        view = self._client(shard).view
        anticipated = View(view.view_id + 1, view.addresses + (address,), view.f)
        global_index = len(system.proxy_masters)
        storage = None
        if system.durable_storage is not None:
            from repro.storage import ReplicaStorage

            storage = ReplicaStorage(
                address,
                fsync_policy=system.config.base.fsync_policy,
                fsync_interval=system.config.base.fsync_interval,
                checkpoint_retention=system.config.base.checkpoint_retention,
            )
            system.durable_storage[global_index] = storage
        pm = ProxyMaster(
            self.sim,
            self.net,
            global_index,
            system.config.base,
            system.keystore,
            group=system.config.group_config(shard),
            view=anticipated,
            storage=storage,
            address=address,
            shard=shard,
        )
        # Handler chains are configuration, not replicated state: the
        # spare must be configured like its peers or its state digest
        # will never converge with the group's.
        for item_id, chain_factory in system.handler_factories.items():
            pm.attach_handlers(item_id, chain_factory())
        self._spares += 1
        system.proxy_masters.append(pm)
        return pm

    def _await(self, event):
        """Wait for ``event`` inside a flow generator; ``None`` on failure."""
        box: list = []
        event.add_callback(lambda ev: box.append(ev))
        while not box:
            yield self.sim.timeout(self.grid)
        ev = box[0]
        if not ev.ok:
            ev.defused = True
            return None
        return ev.value

    def _wait_caught_up(self, pm: ProxyMaster, shard: int):
        """Poll until ``pm`` caught up with its group's decision frontier."""
        limit = self.sim.now + self.transfer_deadline
        while self.sim.now < limit:
            peers = [
                other.replica.last_decided
                for other in self.system.group(shard)
                if other is not pm and other.replica.active
            ]
            if (
                peers
                and not pm.replica.state_transfer.in_progress
                and pm.replica.last_decided >= max(peers) - 1
            ):
                return True
            yield self.sim.timeout(self.grid)
        return False
