"""Wire messages of the shard-split protocol.

Both travel the *ordered* path of their group, so every replica of the
source group exports the identical frozen snapshot and every replica of
the target group installs it at the same point of its own total order —
the migration is just two state-machine commands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire import wire_type


@wire_type(82)
@dataclass(frozen=True)
class ShardExport:
    """Ordered command: export (and optionally drop) an item set.

    The reply is the encoded export bundle — items, ownership entries
    and the migrating slice of the event log. ``detach=True`` removes
    the exported state from this group, making the export a *move*
    rather than a copy (history queries for the moved items must not
    double-count across groups).
    """

    item_ids: tuple = ()
    detach: bool = True


@wire_type(83)
@dataclass(frozen=True)
class ShardImport:
    """Ordered command: install an export bundle into this group.

    ``payload`` is the bytes a :class:`ShardExport` reply carried.
    Items the target already re-created from post-switch traffic keep
    their (fresher) live value; the import fills in the writable flag,
    the owning-frontend entry and the migrated event history.
    """

    payload: bytes = b""
