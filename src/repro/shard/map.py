"""The item→shard partition and its resolve-once router cache.

A :class:`ShardMap` is *configuration*, not code ("Automatic Integration
of BFT State-Machine Replication into IoT Systems" treats group topology
exactly this way): it assigns every item id to one of ``shards`` groups,
either by a deterministic hash of the id or by explicit range prefixes,
plus an overlay of per-item pins that live shard splits install.

The map carries an ``epoch`` that bumps on every reassignment. Routers
(:class:`ShardRouter`) memoise item→shard lookups and validate only the
epoch on the hot path, so steady-state routing is one dict hit — no
hashing, no prefix scan — and a split invalidates every cache in the
deployment at once by bumping the epoch.
"""

from __future__ import annotations

import zlib


def hash_shard(item_id: str, shards: int) -> int:
    """Deterministic item→shard hash (stable across processes and runs).

    ``zlib.crc32`` rather than ``hash()``: Python string hashing is
    randomized per process, and the partition must be identical on every
    replica, every proxy and every rerun of a seeded simulation.
    """
    return zlib.crc32(item_id.encode()) % shards


class ShardMap:
    """Assigns item ids to shard indices ``0..shards-1``.

    Parameters
    ----------
    shards:
        Number of groups in the deployment.
    kind:
        ``"hash"`` (default) or ``"range"``.
    ranges:
        For ``kind="range"``: a tuple of ``(prefix, shard)`` pairs,
        longest-prefix matched. Items matching no prefix fall back to
        the hash partition, so range maps are always total.
    """

    def __init__(
        self,
        shards: int,
        kind: str = "hash",
        ranges: tuple = (),
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if kind not in ("hash", "range"):
            raise ValueError(f"unknown shard map kind {kind!r}")
        if kind == "hash" and ranges:
            raise ValueError("ranges are only meaningful for kind='range'")
        for prefix, shard in ranges:
            if not 0 <= shard < shards:
                raise ValueError(
                    f"range {prefix!r} targets shard {shard}, "
                    f"deployment has {shards}"
                )
        self.shards = shards
        self.kind = kind
        #: Longest prefix first so the scan is first-match-wins.
        self.ranges = tuple(sorted(ranges, key=lambda r: -len(r[0])))
        #: Per-item overrides installed by live splits (beats ranges).
        self.pins: dict[str, int] = {}
        #: Bumped on every reassignment; routers key their caches on it.
        self.epoch = 0

    def shard_of(self, item_id: str) -> int:
        """The shard that currently owns ``item_id`` (uncached)."""
        pinned = self.pins.get(item_id)
        if pinned is not None:
            return pinned
        if self.kind == "range":
            for prefix, shard in self.ranges:
                if item_id.startswith(prefix):
                    return shard
        return hash_shard(item_id, self.shards)

    def assign(self, item_ids, shard: int) -> None:
        """Pin ``item_ids`` to ``shard`` and invalidate every router.

        This is the commit point of a shard split: after the epoch bump,
        every cached route for the moved items (and only a map lookup
        for everything else) resolves against the new ownership.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"no shard {shard} in a {self.shards}-shard map")
        for item_id in item_ids:
            self.pins[item_id] = shard
        self.epoch += 1

    def owned_by(self, shard: int, item_ids) -> list:
        """The subset of ``item_ids`` this map routes to ``shard``."""
        return [i for i in item_ids if self.shard_of(i) == shard]

    def describe(self) -> dict:
        return {
            "shards": self.shards,
            "kind": self.kind,
            "ranges": list(self.ranges),
            "pins": dict(self.pins),
            "epoch": self.epoch,
        }


class ShardRouter:
    """A resolve-once cache in front of one :class:`ShardMap`.

    Every proxy holds its own router. ``route()`` costs one dict lookup
    when the cache is warm; a map epoch bump (a split committed) drops
    the whole cache, so the next lookup per item re-resolves against the
    new ownership. ``stats`` counts hits/misses/invalidations so tests
    can assert the hot path really is cached.
    """

    __slots__ = ("map", "_cache", "_epoch", "stats")

    def __init__(self, shard_map: ShardMap) -> None:
        self.map = shard_map
        self._cache: dict[str, int] = {}
        self._epoch = shard_map.epoch
        self.stats = {"hits": 0, "misses": 0, "invalidations": 0}

    def route(self, item_id: str) -> int:
        """The shard owning ``item_id`` (cached)."""
        if self._epoch != self.map.epoch:
            self._cache.clear()
            self._epoch = self.map.epoch
            self.stats["invalidations"] += 1
        shard = self._cache.get(item_id)
        if shard is None:
            shard = self.map.shard_of(item_id)
            self._cache[item_id] = shard
            self.stats["misses"] += 1
        else:
            self.stats["hits"] += 1
        return shard
