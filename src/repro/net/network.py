"""The simulated message network.

One :class:`Network` instance connects every component of a deployment
(HMI, proxies, replicas, frontends, RTUs). Sending a message:

1. sizes it (canonical wire encoding, unless the caller knows the size),
2. runs it through the fault-injection pipeline,
3. samples the link latency model,
4. schedules delivery on the simulator heap and records the hop in the
   trace.

Messages between co-located components (a component and its own proxy, as
in the paper's deployment where each machine hosts both) can use a
zero-latency *local* link, configured with :meth:`set_link`.
"""

from __future__ import annotations

from repro.net.endpoint import Endpoint
from repro.net.faults import Envelope, FaultInjector
from repro.net.latency import ConstantLatency, LanLatency, LatencyModel
from repro.net.trace import NetworkTrace
from repro.perf import PERF
from repro.sim.kernel import Simulator
from repro.wire import encode


class UnknownEndpoint(Exception):
    """Raised when sending to an address that was never created."""


class Network:
    """Simulated network connecting named endpoints."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        trace: NetworkTrace | None = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else LanLatency(
            rng=sim.rng.stream("net.jitter")
        )
        self.trace = trace if trace is not None else NetworkTrace(enabled=False)
        self.trace.bind_counter(sim.metrics.counter("net.trace.hops"))
        self.faults = FaultInjector(sim.rng.stream("net.faults"))
        # Campaigns read fault-firing counts through the kernel's stats
        # (one deployment has one network; re-registration is harmless).
        sim.register_stats_source("net.faults", self.faults.stats)
        sim.register_stats_source(
            "net",
            lambda: {
                "sent": self.sent,
                "delivered": self.delivered,
                "trace_hops": self.trace.recorded,
                "trace_dropped": self.trace.dropped,
            },
        )
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], LatencyModel] = {}
        #: Per-directed-link delivery horizon enforcing FIFO (TCP-like)
        #: ordering: jitter may not reorder messages on one connection.
        self._link_clock: dict[tuple[str, str], float] = {}
        #: Total messages handed to the network (pre-fault-pipeline).
        self.sent = 0
        #: Total deliveries performed.
        self.delivered = 0

    # -- topology -----------------------------------------------------------

    def endpoint(self, address: str) -> Endpoint:
        """Create (or fetch) the endpoint for ``address``."""
        existing = self._endpoints.get(address)
        if existing is not None:
            return existing
        endpoint = Endpoint(self, address)
        self._endpoints[address] = endpoint
        return endpoint

    def has_endpoint(self, address: str) -> bool:
        return address in self._endpoints

    def addresses(self) -> list:
        """All registered endpoint addresses, sorted for determinism."""
        return sorted(self._endpoints)

    def set_link(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the latency model for the directed link src → dst."""
        self._links[(src, dst)] = model

    def set_local_pair(self, a: str, b: str, delay: float = 0.00002) -> None:
        """Mark two addresses as co-located (loopback-speed both ways)."""
        model = ConstantLatency(delay)
        self.set_link(a, b, model)
        self.set_link(b, a, model)

    def crash(self, address: str) -> None:
        """Take an endpoint down: it silently loses all traffic."""
        self.endpoint(address).down = True

    def recover(self, address: str) -> None:
        self.endpoint(address).down = False

    # -- transmission --------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        payload,
        kind: str | None = None,
        size_hint: int | None = None,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst`` through the pipeline.

        ``size_hint`` lets a caller that already knows the exact canonical
        wire size (e.g. the secure channel, which just sealed the payload)
        skip the sizing encode. Hints must be exact — latency models are a
        function of size, so an inaccurate hint would change the schedule.
        """
        target = self._endpoints.get(dst)
        if target is None:
            raise UnknownEndpoint(f"no endpoint registered at {dst!r}")
        self.sent += 1
        if size_hint is not None and PERF.size_hints:
            size = size_hint
        else:
            size = len(encode(payload))
        if PERF.fast_delivery and not self.faults.rules and not self.trace.enabled:
            # No fault pipeline and no trace: skip the Envelope/kind
            # bookkeeping entirely. Latency sampling and FIFO link clock
            # are identical to the general path, so the schedule is too.
            sim = self.sim
            now = sim.now
            link = (src, dst)
            model = self._links.get(link, self.latency)
            deliver_at = now + model.delay(size)
            previous = self._link_clock.get(link, 0.0)
            if deliver_at < previous:
                deliver_at = previous
            self._link_clock[link] = deliver_at
            sim.defer(deliver_at - now, self._deliver_fast, target, payload, src)
            return
        if kind is None:
            kind = type(payload).__name__
        envelope = Envelope(
            src=src,
            dst=dst,
            kind=kind,
            size=size,
            payload=payload,
            sent_at=self.sim.now,
        )
        model = self._links.get((src, dst), self.latency)
        link = (src, dst)
        for delivery in self.faults.process(envelope):
            deliver_at = self.sim.now + model.delay(size)
            # FIFO per link: a message never overtakes an earlier one on
            # the same connection. Fault-injected extra delay is applied
            # afterwards (adversarial reordering stays possible).
            deliver_at = max(deliver_at, self._link_clock.get(link, 0.0))
            self._link_clock[link] = deliver_at
            deliver_at += delivery.extra_delay
            self.sim.defer(
                deliver_at - self.sim.now,
                self._deliver,
                target,
                delivery.payload,
                envelope,
                deliver_at - self.sim.now,
            )

    def _deliver_fast(self, target: Endpoint, payload, src: str) -> None:
        if target.down:
            return
        self.delivered += 1
        target._deliver(payload, src)

    def _deliver(self, target: Endpoint, payload, envelope: Envelope, delay: float) -> None:
        if target.down:
            return
        self.delivered += 1
        self.trace.record(
            src=envelope.src,
            dst=envelope.dst,
            kind=envelope.kind,
            size=envelope.size,
            sent_at=envelope.sent_at,
            delivered_at=self.sim.now,
        )
        target._deliver(payload, envelope.src)
