"""Network fault injection.

Rules are evaluated in registration order against each sent message; the
first matching rule decides its fate (drop, extra delay, duplication or
payload tampering). This is how tests and benchmarks exercise the paper's
attack scenarios — most importantly the dropped ``WriteValue`` /
``WriteResult`` messages that the logical-timeout protocol of §IV-D must
survive — without touching protocol code.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Envelope:
    """A message in flight: what fault rules and traces see."""

    src: str
    dst: str
    kind: str
    size: int
    payload: object
    sent_at: float


@dataclass(frozen=True)
class Delivery:
    """One planned delivery produced by the fault pipeline."""

    payload: object
    extra_delay: float = 0.0


class FaultRule:
    """Base class: filtering by src/dst glob patterns, kind, predicate.

    Parameters
    ----------
    src, dst:
        ``fnmatch``-style glob patterns on endpoint addresses
        (``"replica-*"`` matches every replica). ``None`` matches all.
    kind:
        Exact message-kind match (the payload class name), or ``None``.
    predicate:
        Optional ``fn(envelope) -> bool`` for arbitrary conditions.
    probability:
        Chance the rule fires on a matching message (needs the injector's
        seeded RNG stream; 1.0 = always).
    max_count:
        The rule disarms after firing this many times (``None`` = forever).
    """

    def __init__(
        self,
        src: str | None = None,
        dst: str | None = None,
        kind: str | None = None,
        predicate=None,
        probability: float = 1.0,
        max_count: int | None = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.predicate = predicate
        self.probability = probability
        self.max_count = max_count
        self.fired = 0

    def matches(self, envelope: Envelope, rng: random.Random) -> bool:
        if self.max_count is not None and self.fired >= self.max_count:
            return False
        if self.src is not None and not fnmatch.fnmatchcase(envelope.src, self.src):
            return False
        if self.dst is not None and not fnmatch.fnmatchcase(envelope.dst, self.dst):
            return False
        if self.kind is not None and envelope.kind != self.kind:
            return False
        if self.predicate is not None and not self.predicate(envelope):
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    def apply(self, envelope: Envelope) -> list:
        """Return the deliveries to perform (empty list = dropped)."""
        raise NotImplementedError


class Drop(FaultRule):
    """Silently discard matching messages."""

    def apply(self, envelope: Envelope) -> list:
        return []


class Delay(FaultRule):
    """Add ``extra`` seconds of delay to matching messages."""

    def __init__(self, extra: float, **filters) -> None:
        super().__init__(**filters)
        if extra < 0:
            raise ValueError("extra delay cannot be negative")
        self.extra = extra

    def apply(self, envelope: Envelope) -> list:
        return [Delivery(envelope.payload, extra_delay=self.extra)]


class Duplicate(FaultRule):
    """Deliver matching messages ``copies + 1`` times, ``spacing`` apart."""

    def __init__(self, copies: int = 1, spacing: float = 0.0, **filters) -> None:
        super().__init__(**filters)
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.copies = copies
        self.spacing = spacing

    def apply(self, envelope: Envelope) -> list:
        return [
            Delivery(envelope.payload, extra_delay=i * self.spacing)
            for i in range(self.copies + 1)
        ]


class Tamper(FaultRule):
    """Replace the payload with ``transform(payload)`` (Byzantine link)."""

    def __init__(self, transform, **filters) -> None:
        super().__init__(**filters)
        self.transform = transform

    def apply(self, envelope: Envelope) -> list:
        return [Delivery(self.transform(envelope.payload))]


class Partition(FaultRule):
    """Drop every message crossing between the given address groups.

    ``groups`` is a list of address lists; messages between two different
    groups are dropped, messages inside a group (or involving an address
    in no group) pass. Call :meth:`heal` to lift the partition.
    """

    def __init__(self, groups: list, **filters) -> None:
        super().__init__(**filters)
        self._group_of = {}
        for index, group in enumerate(groups):
            for address in group:
                self._group_of[address] = index
        self.healed = False

    def matches(self, envelope: Envelope, rng: random.Random) -> bool:
        if self.healed:
            return False
        src_group = self._group_of.get(envelope.src)
        dst_group = self._group_of.get(envelope.dst)
        if src_group is None or dst_group is None or src_group == dst_group:
            return False
        return super().matches(envelope, rng)

    def heal(self) -> None:
        self.healed = True

    def apply(self, envelope: Envelope) -> list:
        return []


class FaultInjector:
    """Ordered pipeline of fault rules applied to every sent message."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.rules: list[FaultRule] = []
        #: rule class name -> times a rule of that class fired.
        self.fired: dict[str, int] = {}
        #: Total rule firings since construction (never reset by clear()).
        self.total_fired = 0
        self._partitions: list[Partition] = []

    def add(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def remove(self, rule: FaultRule) -> None:
        self.rules.remove(rule)
        if isinstance(rule, Partition) and rule in self._partitions:
            self._partitions.remove(rule)

    def clear(self) -> None:
        self.rules.clear()
        self._partitions.clear()

    def partition(self, groups: list) -> Partition:
        """Install a symmetric partition between the given address groups.

        Convenience for campaigns and tests: one call installs the
        bidirectional drop rules between every pair of groups (the
        :class:`Partition` rule is direction-agnostic already) and tracks
        the rule so a later :meth:`heal` can lift every active partition
        without the caller holding on to rule handles.
        """
        rule = Partition([list(group) for group in groups])
        self.add(rule)
        self._partitions.append(rule)
        return rule

    def heal(self, rule: Partition | None = None) -> int:
        """Lift one partition (or all of them) installed via :meth:`partition`.

        Returns the number of partitions healed. Healed rules are removed
        from the pipeline entirely, so later rules regain visibility of
        the traffic they were shadowing.
        """
        targets = [rule] if rule is not None else list(self._partitions)
        healed = 0
        for target in targets:
            if target in self._partitions:
                target.heal()
                self.remove(target)
                healed += 1
        return healed

    def process(self, envelope: Envelope) -> list:
        """First matching rule decides; default is normal delivery."""
        for rule in self.rules:
            if rule.matches(envelope, self._rng):
                name = type(rule).__name__
                self.fired[name] = self.fired.get(name, 0) + 1
                self.total_fired += 1
                return rule.apply(envelope)
        return [Delivery(envelope.payload)]

    def stats(self) -> dict:
        """Counters for :meth:`repro.sim.kernel.Simulator.stats`."""
        return {
            "rules_active": len(self.rules),
            "partitions_active": len(self._partitions),
            "total_fired": self.total_fired,
            "fired": dict(self.fired),
        }
