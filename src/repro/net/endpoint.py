"""Network endpoints: the addressable attachment points of components."""

from __future__ import annotations

import typing

from repro.sim.channels import Channel

if typing.TYPE_CHECKING:
    from repro.net.network import Network


class Endpoint:
    """One addressable network attachment.

    Incoming messages go to the registered handler if one is set
    (``handler(payload, src)``), otherwise they are buffered in
    :attr:`inbox` for a process to ``yield endpoint.inbox.get()``.
    """

    def __init__(self, network: "Network", address: str) -> None:
        self.network = network
        self.address = address
        self.inbox = Channel(network.sim, name=f"inbox:{address}")
        self._handler = None
        #: A downed endpoint neither sends nor receives (crashed node).
        self.down = False

    def set_handler(self, handler) -> None:
        """Route deliveries to ``handler(payload, src)`` instead of inbox."""
        self._handler = handler

    def send(
        self,
        dst: str,
        payload,
        kind: str | None = None,
        size_hint: int | None = None,
    ) -> None:
        """Send ``payload`` to the endpoint addressed ``dst``.

        ``size_hint`` is forwarded to :meth:`Network.send`; pass it only
        when it is the exact canonical wire size of ``payload``.
        """
        if self.down:
            return
        self.network.send(self.address, dst, payload, kind=kind, size_hint=size_hint)

    def _deliver(self, payload, src: str) -> None:
        if self.down:
            return
        if self._handler is not None:
            self._handler(payload, src)
        else:
            self.inbox.put(payload)

    def __repr__(self) -> str:
        return f"<Endpoint {self.address}>"
