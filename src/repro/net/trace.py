"""Network tracing: every delivered hop can be recorded and queried.

The paper explains its overheads by counting communication steps
(ItemUpdate: 3 steps in NeoSCADA vs 9 in SMaRt-SCADA; WriteValue gains 10
steps). The trace makes those step counts measurable facts of a run rather
than claims: benchmarks replay a single operation and count hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Hop:
    """One network traversal of one message."""

    seq: int
    src: str
    dst: str
    kind: str
    size: int
    sent_at: float
    delivered_at: float


@dataclass
class NetworkTrace:
    """Accumulates :class:`Hop` records for a run."""

    enabled: bool = True
    hops: list = field(default_factory=list)
    _seq: int = 0

    def record(
        self, src: str, dst: str, kind: str, size: int, sent_at: float, delivered_at: float
    ) -> None:
        if not self.enabled:
            return
        self._seq += 1
        self.hops.append(
            Hop(
                seq=self._seq,
                src=src,
                dst=dst,
                kind=kind,
                size=size,
                sent_at=sent_at,
                delivered_at=delivered_at,
            )
        )

    def clear(self) -> None:
        self.hops.clear()

    def count(self, kind: str | None = None, src: str | None = None, dst: str | None = None) -> int:
        """Number of hops matching the given filters (None = any)."""
        return sum(1 for hop in self.hops if self._matches(hop, kind, src, dst))

    def kinds(self) -> dict:
        """Histogram of hop counts by message kind."""
        histogram: dict[str, int] = {}
        for hop in self.hops:
            histogram[hop.kind] = histogram.get(hop.kind, 0) + 1
        return histogram

    def path(self, kind: str | None = None) -> list:
        """The (src, dst) pairs of matching hops, in delivery order."""
        return [
            (hop.src, hop.dst)
            for hop in self.hops
            if kind is None or hop.kind == kind
        ]

    @staticmethod
    def _matches(hop: Hop, kind, src, dst) -> bool:
        if kind is not None and hop.kind != kind:
            return False
        if src is not None and hop.src != src:
            return False
        if dst is not None and hop.dst != dst:
            return False
        return True
