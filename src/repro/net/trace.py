"""Network tracing: every delivered hop can be recorded and queried.

The paper explains its overheads by counting communication steps
(ItemUpdate: 3 steps in NeoSCADA vs 9 in SMaRt-SCADA; WriteValue gains 10
steps). The trace makes those step counts measurable facts of a run rather
than claims: benchmarks replay a single operation and count hops.

Long campaigns can bound memory with ``max_hops``: the trace becomes a
ring buffer keeping the most recent hops, and ``dropped`` counts what the
ring evicted. ``recorded`` always counts every hop ever recorded — it is
also exported through the metrics registry when the network binds a
counter (:meth:`NetworkTrace.bind_counter`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class Hop:
    """One network traversal of one message."""

    seq: int
    src: str
    dst: str
    kind: str
    size: int
    sent_at: float
    delivered_at: float


class NetworkTrace:
    """Accumulates :class:`Hop` records for a run.

    ``max_hops`` (optional) caps retention: older hops are evicted in
    FIFO order and counted in ``dropped``. Queries only see retained
    hops; ``recorded`` is the lifetime total.
    """

    def __init__(self, enabled: bool = True, max_hops: int | None = None) -> None:
        if max_hops is not None and max_hops < 1:
            raise ValueError("max_hops must be >= 1 (or None for unbounded)")
        self.enabled = enabled
        self.max_hops = max_hops
        self.hops: deque = deque(maxlen=max_hops)
        self._seq = 0
        #: Hops evicted by the ``max_hops`` ring buffer.
        self.dropped = 0
        #: Optional :class:`repro.obs.metrics.Counter` mirror of hop count.
        self._counter = None

    @property
    def recorded(self) -> int:
        """Total hops ever recorded (evicted ones included)."""
        return self._seq

    def bind_counter(self, counter) -> None:
        """Mirror every recorded hop into a metrics-registry counter."""
        self._counter = counter

    def record(
        self, src: str, dst: str, kind: str, size: int, sent_at: float, delivered_at: float
    ) -> None:
        if not self.enabled:
            return
        self._seq += 1
        if self._counter is not None:
            self._counter.inc()
        if self.max_hops is not None and len(self.hops) == self.max_hops:
            self.dropped += 1
        self.hops.append(
            Hop(
                seq=self._seq,
                src=src,
                dst=dst,
                kind=kind,
                size=size,
                sent_at=sent_at,
                delivered_at=delivered_at,
            )
        )

    def clear(self) -> None:
        """Forget every hop and restart ``seq`` numbering from 1."""
        self.hops.clear()
        self._seq = 0
        self.dropped = 0

    def count(self, kind: str | None = None, src: str | None = None, dst: str | None = None) -> int:
        """Number of retained hops matching the given filters (None = any)."""
        return sum(1 for hop in self.hops if self._matches(hop, kind, src, dst))

    def kinds(self) -> dict:
        """Histogram of hop counts by message kind."""
        histogram: dict[str, int] = {}
        for hop in self.hops:
            histogram[hop.kind] = histogram.get(hop.kind, 0) + 1
        return histogram

    def path(self, kind: str | None = None) -> list:
        """The (src, dst) pairs of matching hops, in delivery order."""
        return [
            (hop.src, hop.dst)
            for hop in self.hops
            if kind is None or hop.kind == kind
        ]

    @staticmethod
    def _matches(hop: Hop, kind, src, dst) -> bool:
        if kind is not None and hop.kind != kind:
            return False
        if src is not None and hop.src != src:
            return False
        if dst is not None and hop.dst != dst:
            return False
        return True
