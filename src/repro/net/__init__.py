"""Simulated network: endpoints, latency models, faults, tracing."""

from repro.net.endpoint import Endpoint
from repro.net.faults import (
    Delay,
    Delivery,
    Drop,
    Duplicate,
    Envelope,
    FaultInjector,
    FaultRule,
    Partition,
    Tamper,
)
from repro.net.latency import (
    ConstantLatency,
    LanLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.network import Network, UnknownEndpoint
from repro.net.trace import Hop, NetworkTrace

__all__ = [
    "ConstantLatency",
    "Delay",
    "Delivery",
    "Drop",
    "Duplicate",
    "Endpoint",
    "Envelope",
    "FaultInjector",
    "FaultRule",
    "Hop",
    "LanLatency",
    "LatencyModel",
    "Network",
    "NetworkTrace",
    "Partition",
    "Tamper",
    "UniformLatency",
    "UnknownEndpoint",
]
