"""Link latency models.

The paper's testbed is a Gigabit Ethernet switch between Xeon servers; the
default :class:`LanLatency` models that: a propagation base, seeded jitter,
and a serialization term proportional to message size. Other models exist
for tests (constant) and for WAN-style experiments (uniform band).
"""

from __future__ import annotations

import random


class LatencyModel:
    """Computes the one-way delay for a message of ``size`` bytes."""

    def delay(self, size: int) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed delay regardless of size; the workhorse of deterministic tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("latency cannot be negative")
        self._delay = delay

    def delay(self, size: int) -> float:
        return self._delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` using a seeded stream."""

    def __init__(self, low: float, high: float, rng: random.Random) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency band [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = rng

    def delay(self, size: int) -> float:
        return self._rng.uniform(self._low, self._high)


class LanLatency(LatencyModel):
    """Switched-LAN model: base propagation + jitter + bandwidth term.

    Parameters
    ----------
    base:
        Fixed per-hop latency in seconds (kernel/NIC/switch traversal).
    jitter:
        Maximum additional random delay; drawn uniformly from ``[0, jitter]``.
    bandwidth:
        Link bandwidth in bytes/second used for the serialization delay.
    rng:
        Seeded random stream for the jitter term.
    """

    def __init__(
        self,
        base: float = 0.00015,
        jitter: float = 0.00005,
        bandwidth: float = 125_000_000.0,  # 1 Gbit/s
        rng: random.Random | None = None,
    ) -> None:
        if base < 0 or jitter < 0 or bandwidth <= 0:
            raise ValueError("invalid LAN latency parameters")
        self._base = base
        self._jitter = jitter
        self._bandwidth = bandwidth
        self._rng = rng

    def delay(self, size: int) -> float:
        jitter = 0.0
        if self._jitter and self._rng is not None:
            jitter = self._rng.uniform(0.0, self._jitter)
        return self._base + jitter + size / self._bandwidth
