"""The flat-array event kernel (the ``ring`` kernel).

A drop-in :class:`~repro.sim.kernel.Simulator` whose hot path avoids the
reference kernel's one ``ScheduledCall`` + ``_HeapEntry`` object pair per
occurrence. Three structural changes carry the speedup:

**Slots instead of objects.** Cancellable occurrences live in parallel
preallocated arrays — ``when`` in an ``array('d')``, a packed
``(priority, seq)`` ordering key in an ``array('q')``, the callable and
argument tuple in two plain lists — addressed by an integer slot index
recycled through a free list. A *handle* is one int, ``key << 21 | slot``:
the key doubles as a generation stamp, so a stale handle to a recycled
slot can never cancel (or report on) the slot's next occupant.

**A timer wheel instead of a heap.** Occurrences within the wheel horizon
(``nslots * tick``, ~8 s at the defaults) are appended O(1) to the bucket
``int(when / tick)``; buckets are opened in time order through a small
heap of non-empty absolute bucket indices, so idle stretches cost one
heap pop, not a walk. Each opened bucket is sorted once and dispatched as
a run; entries landing in the current or a past bucket go through a small
``extra`` overflow heap that the drain loop merges by comparison.
Far-future deadlines overflow to a plain heap and migrate into their
bucket when the wheel reaches it. Bucket placement uses the *same*
``int(when / tick)`` everywhere, so float rounding at bucket boundaries
cannot reorder two occurrences: ``int`` of a monotone product is
monotone, and the ``(when, key)`` sort inside a run is exact.

**O(1) cancel with slot recycling instead of tombstone churn.**
Cancelling clears the slot's callable and counts the cancellation; the
entry already threaded through a bucket/heap stays where it is (each
scheduled occurrence has exactly *one* container reference) and the slot
is recycled only when that reference is consumed — which is what makes
bare-int bucket entries safe without per-slot generation arrays.

Fire-and-forget scheduling (``defer`` — network deliveries, periodic
ticks) skips slots entirely: one ``(when, key, fn, args)`` tuple goes
straight into its bucket, and nothing is ever allocated per occurrence
beyond that tuple. Unlike the reference kernel's
``ScheduledCall``/``_HeapEntry`` pair — which form a reference *cycle*
and so feed the cyclic garbage collector — none of the ring kernel's
per-occurrence state is cycle-forming.

The kernel is selected per-simulator (``Simulator(kernel="ring")``),
process-wide (``repro.perf.PERF.kernel``) or from the environment
(``REPRO_KERNEL=ring``). Both kernels consume one ``seq`` per scheduled
occurrence in the same order and dispatch in identical
``(when, priority, seq)`` order, so seeded runs are bit-identical across
kernels — the dual-kernel determinism tests hold that line.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.sim.events import Event
from repro.sim.kernel import NORMAL, SimulationError, Simulator, _reject_delay
from repro.sim.rng import RngRegistry

_INF = math.inf

#: Handle layout: ``key << SLOT_BITS | slot``. 2^21 concurrent slots is
#: far beyond any simulation here; capacity growth raises past it.
_SLOT_BITS = 21
_SLOT_MASK = (1 << _SLOT_BITS) - 1
_MAX_SLOTS = 1 << _SLOT_BITS

#: Ordering key layout: ``(priority + _PRIO_BIAS) << 44 | seq``. One int
#: comparison then orders ``(priority, seq)`` exactly like the reference
#: kernel's two-element comparison. 44 bits of seq and 7 of priority fit
#: a signed 64-bit array slot.
_SEQ_BITS = 44
_SEQ_MASK = (1 << _SEQ_BITS) - 1
_PRIO_BIAS = 64
_KEY_NORMAL = (NORMAL + _PRIO_BIAS) << _SEQ_BITS


class _RingCall:
    """Cancellable wrapper around a ring-kernel handle.

    ``call_later`` compatibility only — callers that keep the reference
    to cancel should use ``sim.timer``/``sim.cancel_timer`` and skip this
    allocation; callers that drop it should use ``sim.defer`` and skip
    the slot too.
    """

    __slots__ = ("sim", "_handle", "_cancelled")

    def __init__(self, sim: "RingSimulator", handle: int) -> None:
        self.sim = sim
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> bool:
        if self.sim._cancel_entry(self._handle):
            self._cancelled = True
            return True
        return False

    @property
    def processed(self) -> bool:
        """True once the call ran (cancelled calls never 'process')."""
        if self._cancelled:
            return False
        return not self.sim._handle_live(self._handle)

    # ScheduledCall state surface: a scheduled call that ran "succeeded
    # with value None" (the callable's return value is ignored).
    triggered = processed
    ok = processed

    @property
    def value(self):
        if not self.processed:
            raise RuntimeError(f"{self!r} has not been triggered")
        return None

    @property
    def exception(self) -> None:
        return None

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("pending" if self.sim._handle_live(self._handle) else "done")
        )
        return f"<_RingCall {state} handle={self._handle:#x}>"


class RingSimulator(Simulator):
    """Flat-array timer-wheel kernel; drop-in for :class:`Simulator`.

    Construct directly, or let ``Simulator(kernel="ring")`` /
    ``REPRO_KERNEL=ring`` pick it. All reference-kernel APIs (``_enqueue``
    / ``_cancel_entry`` / ``call_later`` / ``run`` / ``peek`` / ``stats``)
    keep their exact semantics, including the stats-counter values the
    cancellation tests pin down: ``tombstones_skipped`` counts cancelled
    entries at cancel time (each is lazily discarded exactly once later,
    so the totals match the reference kernel's skip-at-pop accounting),
    ``heap_pending`` counts entries still threaded through a container
    (cancelled ones included, like tombstones on the reference heap) and
    ``heap_peak`` is the maximum of that resident count seen at any
    dispatch.
    """

    # Wheel geometry: 1 ms buckets, 8192 of them (~8.2 s horizon). The
    # protocol workloads here schedule sub-millisecond deliveries and
    # 0.1-5 s timers, so nearly everything lands in the wheel; only
    # multi-second failure detectors started far ahead hit the far heap.
    TICK = 0.001
    NSLOTS = 8192

    def __init__(self, seed: int = 0, kernel: str | None = None) -> None:
        # Deliberately no super().__init__: this kernel owns its state,
        # and the base initializer would install heap attributes (and a
        # plain `dispatched` attribute that collides with the property).
        self._now = 0.0
        self._running = False
        self.rng = RngRegistry(seed)
        self.metrics = MetricsRegistry()
        self.tracer = None
        #: Debug hook shared with the reference kernel: set to a list and
        #: every dispatch appends ``(when, priority, seq)``.
        self._schedule_log = None
        self._build()
        self.metrics.gauge("events_dispatched", self._get_dispatched)
        self.metrics.gauge("timers_cancelled", self._get_cancelled)
        self.metrics.gauge("tombstones_skipped", self._get_cancelled)
        self.metrics.gauge("heap_peak", self._get_peak)
        self.metrics.gauge("heap_pending", self._get_pending)
        self.metrics.gauge("slot_capacity", self._get_capacity)
        self.metrics.gauge("slots_free", self._get_free)
        self.metrics.gauge("slots_freed", self._get_freed)

    # The whole kernel is built as one closure so the hot paths read
    # their state through cell variables (LOAD_DEREF) instead of
    # attribute lookups, and the bound functions are installed as
    # instance attributes, skipping descriptor dispatch per call.
    def _build(self) -> None:
        tick = self.TICK
        nslots = self.NSLOTS
        invtick = 1.0 / tick
        mask = nslots - 1
        int_ = int
        push = heapq.heappush
        pop = heapq.heappop

        cap = 4096
        whens = array("d", bytes(8 * cap))
        keys_a = array("q", bytes(8 * cap))
        fns: list = [None] * cap
        argss: list = [None] * cap
        free = list(range(cap - 1, -1, -1))

        # wheel[i] holds a mix of 4-tuples (when, key, fn, args) from
        # defer and bare int slots from the cancellable paths; the sort
        # at flush never compares position 2 because keys are unique.
        wheel: list[list] = [[] for _ in range(nslots)]
        bucket_heap: list[int] = []  # absolute indices of non-empty buckets
        extra: list = []  # entries for the current/past bucket (heap)
        far: list = []  # entries beyond the wheel horizon (heap)

        run_list: list = []  # current bucket, sorted
        idx = 0  # next entry in run_list

        now = 0.0
        seq = 0  # occurrences scheduled (same meaning across kernels)
        cur = 0  # absolute index of the bucket being drained
        disp = 0  # occurrences dispatched
        canc = 0  # occurrences cancelled (still threaded somewhere)
        freed = 0  # cancelled occurrences physically discarded
        peak = 0  # max entries resident in containers (incl. cancelled)

        def grow() -> None:
            n0 = len(fns)
            if 2 * n0 > _MAX_SLOTS:
                raise SimulationError(
                    f"ring kernel slot capacity exceeded ({_MAX_SLOTS})"
                )
            whens.extend(whens)
            keys_a.extend(keys_a)
            fns.extend([None] * n0)
            argss.extend([None] * n0)
            free.extend(range(2 * n0 - 1, n0 - 1, -1))

        def defer(delay: float, fn: Callable, *args) -> None:
            """Fire-and-forget ``fn(*args)`` after ``delay``; no handle."""
            nonlocal seq
            if not 0.0 <= delay < _INF:
                _reject_delay(delay)
            s = seq = seq + 1
            w = now + delay
            b = int_(w * invtick)
            d = b - cur
            if 0 < d < nslots:
                lst = wheel[b & mask]
                if not lst:
                    push(bucket_heap, b)
                lst.append((w, _KEY_NORMAL + s, fn, args))
            elif d <= 0:
                push(extra, (w, _KEY_NORMAL + s, fn, args))
            else:
                push(far, (w, _KEY_NORMAL + s, fn, args))
        self.defer = defer

        def _put_slot(delay: float, fn, args, priority: int) -> int:
            """Common slot path for timer() and _enqueue(). Returns handle."""
            nonlocal seq
            if not 0.0 <= delay < _INF:
                _reject_delay(delay)
            s = seq = seq + 1
            if priority == NORMAL:
                key = _KEY_NORMAL + s
            else:
                if not -_PRIO_BIAS <= priority < _PRIO_BIAS:
                    raise SimulationError(
                        f"priority {priority} out of ring-kernel range "
                        f"[{-_PRIO_BIAS}, {_PRIO_BIAS})"
                    )
                key = ((priority + _PRIO_BIAS) << _SEQ_BITS) | s
            if not free:
                grow()
            slot = free.pop()
            w = now + delay
            whens[slot] = w
            keys_a[slot] = key
            fns[slot] = fn
            argss[slot] = args
            b = int_(w * invtick)
            d = b - cur
            if 0 < d < nslots:
                lst = wheel[b & mask]
                if not lst:
                    push(bucket_heap, b)
                lst.append(slot)
            elif d <= 0:
                push(extra, (w, key, False, slot))
            else:
                push(far, (w, key, False, slot))
            return (key << _SLOT_BITS) | slot

        def timer(delay: float, fn: Callable, *args) -> int:
            """Schedule cancellable ``fn(*args)``; returns an int handle."""
            return _put_slot(delay, fn, args, NORMAL)
        self.timer = timer

        def call_later(delay: float, fn: Callable, *args) -> _RingCall:
            return _RingCall(self, _put_slot(delay, fn, args, NORMAL))
        self.call_later = call_later

        def _enqueue(delay: float, event: Event, priority: int = NORMAL) -> int:
            # args=None is the kernel-internal "this is an Event" code:
            # dispatch calls event._dispatch() instead of fn(*args).
            # (defer/timer always store a real tuple, never None.)
            handle = _put_slot(delay, event, None, priority)
            event._entry = handle
            return handle
        self._enqueue = _enqueue

        def cancel_timer(handle) -> bool:
            """Cancel a handle. O(1); idempotent; False when already dead."""
            nonlocal canc
            if handle is None:
                return False
            if handle.__class__ is not int:
                # A _RingCall from call_later (or any .cancel()-bearing
                # handle): same contract as the heap kernel's cancel_timer.
                return handle.cancel()
            slot = handle & _SLOT_MASK
            if keys_a[slot] != handle >> _SLOT_BITS or fns[slot] is None:
                return False
            fns[slot] = None
            argss[slot] = None
            canc += 1
            return True
        self.cancel_timer = cancel_timer
        self._cancel_entry = cancel_timer

        def _handle_live(handle: int) -> bool:
            slot = handle & _SLOT_MASK
            return keys_a[slot] == handle >> _SLOT_BITS and fns[slot] is not None
        self._handle_live = _handle_live

        def _advance(until_f: float):
            """Open the next bucket; returns its sorted entries, or None.

            ``None`` means the run must stop: either nothing is pending
            anywhere, or the next non-empty bucket provably lies beyond
            ``until_f``. An empty tuple means "bucket consumed, keep
            going" (everything in it had been cancelled).
            """
            nonlocal cur, freed
            tb = bucket_heap[0] if bucket_heap else -1
            if far:
                fb = int_(far[0][0] * invtick)
                nb = fb if (tb < 0 or fb < tb) else tb
            elif tb < 0:
                return None
            else:
                nb = tb
            # One-bucket slack: entries of bucket nb may sit one float
            # ulp below nb*tick, so only stop when even that is > until.
            if (nb - 1) * tick > until_f:
                return None
            cur = nb
            merged = None
            if tb == nb:
                pop(bucket_heap)
                i = nb & mask
                bucket = wheel[i]
                wheel[i] = []
                merged = []
                ap = merged.append
                fr = free.append
                for e in bucket:
                    if e.__class__ is int:
                        if fns[e] is None:
                            fr(e)
                            freed += 1
                        else:
                            ap((whens[e], keys_a[e], False, e))
                    else:
                        ap(e)
            # Migrate far entries whose *bucket* has been reached; using
            # the same int(when/tick) everywhere keeps ordering exact.
            if far and int_(far[0][0] * invtick) <= nb:
                if merged is None:
                    merged = []
                ap = merged.append
                while far and int_(far[0][0] * invtick) <= nb:
                    ap(pop(far))
            if merged:
                merged.sort()
                return merged
            return ()

        def run(until: float | None = None, stop_on: Event | None = None) -> float:
            nonlocal now, disp, freed, peak, idx, run_list
            if self._running:
                raise SimulationError(
                    "simulator is already running (reentrant run)"
                )
            if until is not None and until < now:
                return now
            until_f = _INF if until is None else until
            sched_log = self._schedule_log
            self._running = True
            try:
                while True:
                    if stop_on is not None and stop_on.callbacks is None:
                        return now
                    n_run = len(run_list)
                    while True:
                        if idx < n_run:
                            e = run_list[idx]
                            if extra and extra[0] < e:
                                e = pop(extra)
                                from_run = False
                            else:
                                idx += 1
                                from_run = True
                        elif extra:
                            e = pop(extra)
                            from_run = False
                        else:
                            break
                        w = e[0]
                        if w > until_f:
                            # Un-consume: time stops here for this run.
                            if from_run:
                                idx -= 1
                            else:
                                push(extra, e)
                            now = self._now = until_f
                            return until_f
                        fn = e[2]
                        if fn is False:
                            slot = e[3]
                            fn = fns[slot]
                            if fn is None:
                                # Cancelled: consume the one reference,
                                # recycle the slot, never call anything.
                                free.append(slot)
                                freed += 1
                                continue
                            args = argss[slot]
                            fns[slot] = None
                            argss[slot] = None
                            free.append(slot)
                        else:
                            args = e[3]
                        pending = seq - disp - freed
                        if pending > peak:
                            peak = pending
                        now = self._now = w
                        disp += 1
                        if sched_log is not None:
                            key = e[1]
                            sched_log.append(
                                (w, (key >> _SEQ_BITS) - _PRIO_BIAS, key & _SEQ_MASK)
                            )
                        if args is None:
                            fn._dispatch()
                        else:
                            fn(*args)
                        if stop_on is not None and stop_on.callbacks is None:
                            return now
                    nxt = _advance(until_f)
                    idx = 0
                    if nxt is None:
                        run_list = []
                        if until is not None and until > now:
                            now = self._now = until
                        return now
                    run_list = nxt
            finally:
                self._running = False
        self.run = run

        def peek() -> float | None:
            nonlocal idx, freed
            best = None
            while idx < len(run_list):
                e = run_list[idx]
                if e[2] is False and fns[e[3]] is None:
                    free.append(e[3])
                    freed += 1
                    idx += 1
                    continue
                best = e[0]
                break
            while extra:
                e = extra[0]
                if e[2] is False and fns[e[3]] is None:
                    pop(extra)
                    free.append(e[3])
                    freed += 1
                    continue
                if best is None or e[0] < best:
                    best = e[0]
                break
            # Earliest live entry threaded through the wheel: bucket
            # index order is time order, so the first bucket with any
            # live entry decides. Dead slots are skipped but NOT freed
            # here — their one reference stays in the bucket for flush.
            for b in sorted(bucket_heap):
                found = None
                for e in wheel[b & mask]:
                    if e.__class__ is int:
                        if fns[e] is None:
                            continue
                        w = whens[e]
                    else:
                        w = e[0]
                    if found is None or w < found:
                        found = w
                if found is not None:
                    if best is None or found < best:
                        best = found
                    break
            while far:
                e = far[0]
                if e[2] is False and fns[e[3]] is None:
                    pop(far)
                    free.append(e[3])
                    freed += 1
                    continue
                if best is None or e[0] < best:
                    best = e[0]
                break
            return best
        self.peek = peek

        self._get_dispatched = lambda: disp
        self._get_cancelled = lambda: canc
        self._get_peak = lambda: peak
        self._get_pending = lambda: seq - disp - freed
        self._get_seq = lambda: seq
        self._get_freed = lambda: freed
        self._get_capacity = lambda: len(fns)
        self._get_free = lambda: len(free)
        self._get_now = lambda: now

    # -- attribute compatibility ------------------------------------------
    # `now` is inherited from Simulator (run() maintains self._now).

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far."""
        return self._get_dispatched()

    @property
    def _timers_cancelled(self) -> int:
        return self._get_cancelled()

    @property
    def _tombstones_skipped(self) -> int:
        return self._get_cancelled()

    @property
    def _peak_heap(self) -> int:
        return self._get_peak()

    def __repr__(self) -> str:
        return (
            f"<RingSimulator t={self._now:.6f} "
            f"pending={self._get_pending()}>"
        )
