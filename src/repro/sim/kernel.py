"""The discrete-event simulation kernel.

The :class:`Simulator` owns a binary heap of slotted :class:`_HeapEntry`
records ordered by ``(time, priority, seq)``. Popping entries in heap
order and running each event's callbacks is the *only* execution mechanism
in the simulation, which makes runs fully deterministic: two runs with the
same seeds produce identical event orders.

Timer cancellation uses lazy deletion: cancelling marks the entry as a
tombstone (and drops its event reference); the run loop skips tombstones
when they surface at the heap top instead of paying O(n) removal or — the
pre-optimisation behaviour — dispatching stale callbacks that every caller
had to guard against. :meth:`Simulator.stats` surfaces the counters
(dispatches, cancellations, tombstones skipped, peak heap size) that the
wall-clock profiler reports.

Time is a float in **seconds** of simulated time.
"""

from __future__ import annotations

import heapq
import math
from heapq import heappush
from typing import Callable, Generator, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.sim.events import AllOf, AnyOf, Event, ScheduledCall, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

#: Default heap priority. Lower runs first among same-time entries.
NORMAL = 0

_INF = math.inf


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


def _reject_delay(delay) -> None:
    """Raise the canonical error for a delay that failed the range check.

    Both kernels guard their scheduling paths with the same one chained
    comparison (``not 0.0 <= delay < _INF`` rejects negatives, +inf and
    nan alike — nan compares false against everything, which would
    silently corrupt event ordering if it ever got in) and call this
    shared classifier, so the two error messages cannot drift apart.
    """
    if isinstance(delay, (int, float)) and delay < 0:
        raise SimulationError(f"cannot schedule {delay}s into the past")
    raise SimulationError(f"cannot schedule a non-finite delay: {delay}")


class _HeapEntry:
    """One scheduled occurrence on the simulator heap.

    The heap itself stores ``(when, priority, seq, entry)`` tuples so heap
    sifting compares floats/ints at C speed and never calls back into
    Python (``seq`` is unique, so the entry object is never compared).
    The entry carries the mutable state: ``cancelled`` is the
    lazy-deletion tombstone flag — a cancelled entry stays in the heap but
    is skipped (and its event reference dropped), so cancellation is O(1)
    and the callbacks never run.
    """

    __slots__ = ("when", "priority", "seq", "event", "cancelled")

    def __init__(self, when: float, priority: int, seq: int, event) -> None:
        self.when = when
        self.priority = priority
        self.seq = seq
        self.event = event
        self.cancelled = False

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"<_HeapEntry t={self.when:.6f} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams (see :class:`RngRegistry`).
    kernel:
        Which kernel implementation backs this simulator: ``"heap"``
        (this class — the reference implementation) or ``"ring"``
        (:class:`repro.sim.fastkernel.RingSimulator`, the flat-array
        timer-wheel kernel). ``None`` defers to ``repro.perf.PERF.kernel``,
        which itself defaults to the ``REPRO_KERNEL`` environment
        variable, so a whole test run can be switched without touching
        any construction site.
    """

    def __new__(cls, seed: int = 0, kernel: str | None = None):
        if cls is Simulator:
            if kernel is None:
                from repro.perf import PERF

                kernel = PERF.kernel
            if kernel == "ring":
                # Imported lazily: fastkernel imports this module.
                from repro.sim.fastkernel import RingSimulator

                return object.__new__(RingSimulator)
            if kernel != "heap":
                raise ValueError(f"unknown kernel {kernel!r} (use 'heap' or 'ring')")
        return object.__new__(cls)

    def __init__(self, seed: int = 0, kernel: str | None = None) -> None:
        self._now = 0.0
        self._heap: list[_HeapEntry] = []
        self._seq = 0
        self._running = False
        self.rng = RngRegistry(seed)
        #: Number of events dispatched so far (for diagnostics/metrics).
        self.dispatched = 0
        self._timers_cancelled = 0
        self._tombstones_skipped = 0
        self._peak_heap = 0
        #: The unified metrics registry (:mod:`repro.obs.metrics`) every
        #: subsystem of this simulation registers into. The kernel's own
        #: counters stay plain attributes on the hot path; the registry
        #: reads them through gauges, so there is no duplicated state.
        self.metrics = MetricsRegistry()
        self.metrics.gauge("events_dispatched", lambda: self.dispatched)
        self.metrics.gauge("timers_cancelled", lambda: self._timers_cancelled)
        self.metrics.gauge("tombstones_skipped", lambda: self._tombstones_skipped)
        self.metrics.gauge("heap_peak", lambda: self._peak_heap)
        self.metrics.gauge("heap_pending", lambda: len(self._heap))
        #: The installed :class:`repro.obs.trace.SpanTracer`, or ``None``
        #: (the default — every tracing hook is then a no-op guard check).
        self.tracer = None
        #: Debug hook: set to a list *before* calling :meth:`run` and the
        #: kernel appends one ``(when, priority, seq)`` triple per
        #: dispatch. Both kernels implement it, which is how the
        #: dual-kernel determinism test asserts schedule equality.
        self._schedule_log = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def _enqueue(
        self, delay: float, event: Event, priority: int = NORMAL
    ) -> _HeapEntry:
        if not 0.0 <= delay < _INF:
            _reject_delay(delay)
        seq = self._seq = self._seq + 1
        when = self._now + delay
        entry = _HeapEntry(when, priority, seq, event)
        event._entry = entry
        heapq.heappush(self._heap, (when, priority, seq, entry))
        if len(self._heap) > self._peak_heap:
            self._peak_heap = len(self._heap)
        return entry

    def _cancel_entry(self, entry: _HeapEntry | None) -> bool:
        """Tombstone a scheduled entry (lazy deletion). Idempotent."""
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        entry.event = None  # free the event even before the pop skips it
        self._timers_cancelled += 1
        return True

    def event(self, name: str | None = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def call_soon(self, fn: Callable, *args) -> ScheduledCall:
        """Run ``fn(*args)`` at the current time, after pending events."""
        return self.call_later(0.0, fn, *args)

    def call_later(self, delay: float, fn: Callable, *args) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Returns the underlying event; its value is ``None``. The returned
        :class:`ScheduledCall` supports ``cancel()`` — a cancelled call
        never runs and its heap entry is tombstoned in place.
        """
        # Body of _enqueue inlined: this is called once per network
        # delivery and per timer, the hottest scheduling path there is.
        if not 0.0 <= delay < _INF:
            _reject_delay(delay)
        event = ScheduledCall(self, fn, args)
        seq = self._seq = self._seq + 1
        when = self._now + delay
        entry = _HeapEntry(when, NORMAL, seq, event)
        event._entry = entry
        heap = self._heap
        heappush(heap, (when, NORMAL, seq, entry))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return event

    def defer(self, delay: float, fn: Callable, *args) -> None:
        """Fire-and-forget ``call_later``: no handle, nothing returned.

        This is the portable spelling of the hottest scheduling pattern
        (network deliveries, periodic ticks) — callers that never cancel
        should use it so the ring kernel can skip slot/handle bookkeeping
        entirely. On this kernel it is ``call_later`` minus the returned
        reference; the event order and seq consumption are identical.
        """
        self.call_later(delay, fn, *args)

    def timer(self, delay: float, fn: Callable, *args):
        """Schedule a cancellable ``fn(*args)`` and return an opaque handle.

        The handle is only meaningful to :meth:`cancel_timer` of the same
        simulator. On this kernel it is the :class:`ScheduledCall` itself;
        the ring kernel returns a packed integer instead — callers must
        treat it as opaque (truthy, not-None) either way.
        """
        return self.call_later(delay, fn, *args)

    def cancel_timer(self, handle) -> bool:
        """Cancel a :meth:`timer` handle. Idempotent; False when dead."""
        if handle is None:
            return False
        return handle.cancel()

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new process driving ``generator``.

        The generator yields :class:`Event` objects and is resumed with each
        event's value once it triggers. The returned :class:`Process` is
        itself an event that triggers when the generator returns.
        """
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race: triggers with ``(index, value)`` of the first event."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier: triggers with the list of all event values."""
        return AllOf(self, list(events))

    # -- running -----------------------------------------------------------

    def run(self, until: float | None = None, stop_on: Event | None = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        With ``stop_on``, the run also stops right after that event has
        been processed — the natural way to wait for one outcome in a
        world where background processes keep the heap non-empty forever.
        Returns the simulated time at which the run stopped. ``until``
        values in the past are a no-op (time never moves backward).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        if until is not None and until < self._now:
            return self._now
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        sched_log = self._schedule_log
        try:
            while heap:
                if stop_on is not None and stop_on.processed:
                    break
                when = heap[0][0]
                entry = heap[0][3]
                if entry.cancelled:
                    heappop(heap)
                    self._tombstones_skipped += 1
                    continue
                if until is not None and when > until:
                    self._now = until
                    break
                heappop(heap)
                self._now = when
                self.dispatched += 1
                if sched_log is not None:
                    sched_log.append((when, entry.priority, entry.seq))
                entry.event._dispatch()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, generator: Generator, until: float | None = None):
        """Start ``generator`` as a process, run, and return its result.

        The run stops as soon as the process finishes (even if other work
        remains scheduled). ``until`` bounds the *absolute* simulated time;
        raises if the process did not finish by then.
        """
        proc = self.process(generator)
        self.run(until=until, stop_on=proc)
        if not proc.triggered:
            raise SimulationError("process did not finish before the run ended")
        return proc.value

    def peek(self) -> float | None:
        """Time of the next live scheduled event, or None if none remain.

        Tombstoned entries surfacing at the heap top are discarded here,
        so ``peek`` doubles as incremental garbage collection.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._tombstones_skipped += 1
        return heap[0][0] if heap else None

    def register_stats_source(self, name: str, provider: Callable[[], dict]) -> None:
        """Attach a named counter provider to :meth:`stats`.

        Subsystems built on the kernel (the network's fault injector, a
        chaos campaign) register a zero-arg callable returning a dict;
        ``stats()`` evaluates it lazily so providers stay cheap to attach.
        Re-registering a name replaces the previous provider. Providers
        live in :attr:`metrics` as ``group`` entries — this method is the
        compatibility spelling of ``sim.metrics.group(name, provider)``.
        """
        self.metrics.group(name, provider)

    def stats(self) -> dict:
        """Kernel counters for diagnostics and the wall-clock profiler.

        A snapshot of :attr:`metrics`: the kernel gauges come first (same
        keys as always), followed by every registered counter, histogram
        and group provider in registration order.
        """
        return self.metrics.snapshot()

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
