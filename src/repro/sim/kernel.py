"""The discrete-event simulation kernel.

The :class:`Simulator` owns a binary heap of ``(time, priority, seq, event)``
entries. Popping entries in heap order and running each event's callbacks is
the *only* execution mechanism in the simulation, which makes runs fully
deterministic: two runs with the same seeds produce identical event orders.

Time is a float in **seconds** of simulated time.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterable

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

#: Default heap priority. Lower runs first among same-time entries.
NORMAL = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams (see :class:`RngRegistry`).
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._heap: list = []
        self._seq = 0
        self._running = False
        self.rng = RngRegistry(seed)
        #: Number of events dispatched so far (for diagnostics/metrics).
        self.dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def event(self, name: str | None = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def call_soon(self, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` at the current time, after pending events."""
        return self.call_later(0.0, fn, *args)

    def call_later(self, delay: float, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Returns the underlying event; its value is ``fn``'s return value.
        """
        event = Event(self, name=f"call:{getattr(fn, '__name__', fn)}")

        def runner(ev: Event) -> None:
            fn(*args)

        event.callbacks.append(runner)
        event._value = None
        self._enqueue(delay, event)
        return event

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new process driving ``generator``.

        The generator yields :class:`Event` objects and is resumed with each
        event's value once it triggers. The returned :class:`Process` is
        itself an event that triggers when the generator returns.
        """
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race: triggers with ``(index, value)`` of the first event."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier: triggers with the list of all event values."""
        return AllOf(self, list(events))

    # -- running -----------------------------------------------------------

    def run(self, until: float | None = None, stop_on: Event | None = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        With ``stop_on``, the run also stops right after that event has
        been processed — the natural way to wait for one outcome in a
        world where background processes keep the heap non-empty forever.
        Returns the simulated time at which the run stopped. ``until``
        values in the past are a no-op (time never moves backward).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        if until is not None and until < self._now:
            return self._now
        self._running = True
        try:
            while self._heap:
                if stop_on is not None and stop_on.processed:
                    break
                when, _priority, _seq, event = self._heap[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = when
                self.dispatched += 1
                event._dispatch()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, generator: Generator, until: float | None = None):
        """Start ``generator`` as a process, run, and return its result.

        The run stops as soon as the process finishes (even if other work
        remains scheduled). ``until`` bounds the *absolute* simulated time;
        raises if the process did not finish by then.
        """
        proc = self.process(generator)
        self.run(until=until, stop_on=proc)
        if not proc.triggered:
            raise SimulationError("process did not finish before the run ended")
        return proc.value

    def peek(self) -> float | None:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
