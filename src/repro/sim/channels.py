"""FIFO channels (mailboxes) for inter-process communication.

A :class:`Channel` is an ordered queue of items. ``put`` returns an event
that triggers once the item has been accepted (immediately for unbounded
channels, possibly later for bounded ones); ``get`` returns an event that
triggers with the next item. Both sides preserve FIFO ordering of waiters,
keeping delivery deterministic.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.sim.events import Event

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class ChannelClosed(Exception):
    """Raised to getters/putters when the channel is closed."""


class _GetEvent(Event):
    __slots__ = ("channel", "_cancelled")

    def __init__(self, channel: "Channel") -> None:
        super().__init__(channel.sim, name=f"get:{channel.name}")
        self.channel = channel
        self._cancelled = False

    def cancel(self) -> None:
        """Withdraw this get if it has not been served yet."""
        if not self.triggered:
            self._cancelled = True


class _PutEvent(Event):
    __slots__ = ("channel", "item", "_cancelled")

    def __init__(self, channel: "Channel", item) -> None:
        super().__init__(channel.sim, name=f"put:{channel.name}")
        self.channel = channel
        self.item = item
        self._cancelled = False

    def cancel(self) -> None:
        if not self.triggered:
            self._cancelled = True


class Channel:
    """A FIFO channel with optional capacity bound.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum number of buffered items; ``None`` means unbounded, in
        which case ``put`` always succeeds immediately.
    name:
        Label for debugging.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: int | None = None,
        name: str = "channel",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._getters: deque[_GetEvent] = deque()
        self._putters: deque[_PutEvent] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- operations --------------------------------------------------------

    def put(self, item) -> _PutEvent:
        """Offer ``item``; the returned event triggers once it is accepted."""
        event = _PutEvent(self, item)
        if self._closed:
            event.fail(ChannelClosed(self.name))
            return event
        self._putters.append(event)
        self._balance()
        return event

    def try_put(self, item) -> bool:
        """Non-blocking put. Returns False if the channel is full or closed."""
        if self._closed:
            return False
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        event = self.put(item)
        # put() above either buffered it or handed it to a getter.
        assert event.triggered
        return True

    def get(self) -> _GetEvent:
        """The returned event triggers with the next item."""
        event = _GetEvent(self)
        if self._closed and not self._items and not self._putters:
            event.fail(ChannelClosed(self.name))
            return event
        self._getters.append(event)
        self._balance()
        return event

    def close(self) -> None:
        """Close the channel: pending waiters fail with ChannelClosed.

        Items already buffered are still delivered to future ``get`` calls.
        """
        if self._closed:
            return
        self._closed = True
        for putter in self._putters:
            if not putter.triggered and not putter._cancelled:
                putter.fail(ChannelClosed(self.name))
        self._putters.clear()
        if not self._items:
            for getter in self._getters:
                if not getter.triggered and not getter._cancelled:
                    getter.fail(ChannelClosed(self.name))
            self._getters.clear()

    # -- matching ----------------------------------------------------------

    def _balance(self) -> None:
        """Move items from putters to the buffer and buffer to getters."""
        progressed = True
        while progressed:
            progressed = False
            # Accept putters while there is room.
            while self._putters:
                putter = self._putters[0]
                if putter._cancelled or putter.triggered:
                    self._putters.popleft()
                    continue
                if self.capacity is not None and len(self._items) >= self.capacity:
                    break
                self._putters.popleft()
                self._items.append(putter.item)
                putter.succeed(None)
                progressed = True
            # Serve getters while items exist.
            while self._getters and self._items:
                getter = self._getters.popleft()
                if getter._cancelled or getter.triggered:
                    continue
                getter.succeed(self._items.popleft())
                progressed = True
