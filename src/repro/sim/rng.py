"""Named, reproducible random-number streams.

Every source of randomness in the simulation draws from a named stream so
that (a) runs are reproducible given the root seed and (b) adding a new
consumer of randomness does not perturb the draws seen by existing ones.
Stream seeds are derived as ``sha256(root_seed || name)``.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reset(self) -> None:
        """Drop all streams; subsequent draws restart from stream seeds."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams
