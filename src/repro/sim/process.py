"""Generator-based processes for the simulation kernel.

A process wraps a generator that yields :class:`~repro.sim.events.Event`
objects. Each time a yielded event triggers, the process resumes with the
event's value; if the event failed, the exception is thrown into the
generator (so processes can ``try/except`` around ``yield``).
"""

from __future__ import annotations

import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause=None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """An event that triggers when its generator returns.

    The process starts on the next kernel step (never synchronously inside
    the constructor), so creation order never perturbs execution order.
    """

    __slots__ = ("generator", "_waiting_on", "_started")

    def __init__(self, sim: "Simulator", generator, name: str | None = None) -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process target must be a generator, got {generator!r}")
        self.generator = generator
        self._waiting_on: Event | None = None
        self._started = False
        # Kick off via an initial event so startup goes through the heap.
        start = Event(sim, name=f"start:{self.name}")
        start._value = None
        start.callbacks.append(self._on_start)
        sim._enqueue(0.0, start)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        Interrupting an already-finished process is a no-op.
        """
        if self.triggered:
            return
        wake = Event(self.sim, name=f"interrupt:{self.name}")
        wake._value = None
        wake.callbacks.append(lambda ev: self._on_interrupt(cause))
        self.sim._enqueue(0.0, wake)

    # -- driving the generator --------------------------------------------

    def _on_start(self, event: Event) -> None:
        if self.triggered or self._started:
            return
        self._started = True
        self._step(None, is_error=False)

    def _on_interrupt(self, cause) -> None:
        if self.triggered:
            return
        if not self._started:
            # Interrupted before the first step: fail the whole process.
            self._started = True
            self.generator.close()
            self.fail(Interrupted(cause))
            return
        # Detach from whatever we were waiting on; that event may still
        # trigger later, in which case _resume ignores the stale wakeup.
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None:
            waiting.defused = True
            cancel = getattr(waiting, "cancel", None)
            if cancel is not None:
                cancel()
        self._step(Interrupted(cause), is_error=True)

    def _resume(self, event: Event) -> None:
        if self.triggered or event is not self._waiting_on:
            # Stale wakeup from an event we stopped waiting on.
            if event.exception is not None:
                event.defused = True
            return
        if event.exception is not None:
            event.defused = True
            self._step(event.exception, is_error=True)
        else:
            self._step(event._value, is_error=False)

    def _step(self, value, is_error: bool) -> None:
        self._waiting_on = None
        try:
            if is_error:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
