"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for the whole reproduction: the
network, the BFT replicas, the SCADA components and the workload
generators are all processes and callbacks scheduled on one
:class:`Simulator` heap, which makes every run reproducible given a seed.
"""

from repro.sim.channels import Channel, ChannelClosed
from repro.sim.events import AllOf, AnyOf, Event, ScheduledCall, Timeout
from repro.sim.fastkernel import RingSimulator
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Interrupted, Process
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "Event",
    "Interrupted",
    "Process",
    "RingSimulator",
    "RngRegistry",
    "ScheduledCall",
    "SimulationError",
    "Simulator",
    "Timeout",
]
