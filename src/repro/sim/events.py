"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.
Events are *triggered* (successfully, with a value) or *failed* (with an
exception). Triggering does not run callbacks immediately: the event is
enqueued on the simulator heap at the current time, and its callbacks run
when the kernel pops it. This gives a single, deterministic execution
model for everything that happens in the simulation.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator

# Sentinel for "not yet triggered".
_PENDING = object()


class Event:
    """A one-shot occurrence that can carry a value or an exception.

    Parameters
    ----------
    sim:
        The simulator that will dispatch this event's callbacks.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    __slots__ = (
        "sim",
        "name",
        "callbacks",
        "_value",
        "_exception",
        "defused",
        "_entry",
    )

    def __init__(self, sim: "Simulator", name: str | None = None) -> None:
        self.sim = sim
        self.name = name
        #: Callables ``fn(event)`` invoked when the event is processed.
        self.callbacks: list | None = []
        self._value = _PENDING
        self._exception: BaseException | None = None
        #: When True, a failure is considered handled even with no callbacks.
        self.defused = False
        #: Heap entry set by the kernel when the event is scheduled; lets
        #: cancellable subclasses tombstone their occurrence in O(1).
        self._entry = None

    # -- state -----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed`` or ``fail`` was called."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self):
        """The event's value (raises if the event failed or is pending)."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- triggering ------------------------------------------------------

    def succeed(self, value=None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        With ``delay`` > 0 the callbacks run that much simulated time later.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = value
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.sim._enqueue(delay, self)
        return self

    def add_callback(self, fn) -> None:
        """Run ``fn(event)`` once the event is processed.

        If the event was already processed the callback is scheduled to run
        at the current simulated time (never synchronously), keeping
        callback ordering deterministic. Attaching late to a *failed*
        event follows the same contract as :meth:`_dispatch`: after the
        callback observes the failure, the exception surfaces unless the
        event has been defused (the callback may defuse it).
        """
        if self.callbacks is None:
            if self._exception is not None:
                self.sim.call_soon(self._deliver_late, fn)
            else:
                self.sim.call_soon(fn, self)
        else:
            self.callbacks.append(fn)

    def _deliver_late(self, fn) -> None:
        """Deliver a late-attached callback to this failed event.

        Mirrors the unobserved-failure rule in :meth:`_dispatch`: a
        failure handed to a late callback must be handled (the callback
        — like ``Process._resume`` or the combinators — defuses what it
        handles) or it propagates instead of vanishing silently.
        """
        fn(self)
        if self._exception is not None and not self.defused:
            raise self._exception

    # -- kernel interface --------------------------------------------------

    def _dispatch(self) -> None:
        """Run callbacks; called by the kernel when the event is popped."""
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks:
            fn(self)
        if self._exception is not None and not callbacks and not self.defused:
            # Nobody is waiting on this failure: surface it instead of
            # letting the error pass silently.
            raise self._exception

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = "ok" if self.ok else ("failed" if self.triggered else "pending")
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed amount of simulated time.

    A timeout may be :meth:`cancel`-led before it fires: its heap entry is
    tombstoned in place (lazy deletion), the callbacks never run, and the
    kernel discards the entry when it reaches the heap top. Cancelling an
    already-processed timeout is a no-op.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value=None) -> None:
        # Delay validation (negative/non-finite) lives in the kernel's
        # _enqueue — one shared check, one exception type.
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        self._value = value
        sim._enqueue(delay, self)

    def cancel(self) -> bool:
        """Prevent this timeout from firing. Returns True if it was live."""
        if self.callbacks is None:
            return False
        return self.sim._cancel_entry(self._entry)


class ScheduledCall(Event):
    """The cancellable event behind ``Simulator.call_later``.

    Holds the target callable and arguments directly (no closure, no
    per-call name formatting — ``call_later`` is the single hottest event
    constructor in the simulation) and invokes it from ``_dispatch``
    before any explicitly added callbacks.

    Retransmission and failure-detector timers are created in bulk and
    almost always cancelled before they fire; ``cancel()`` tombstones the
    heap entry so the stale callback neither runs nor needs a guard at the
    call site.
    """

    __slots__ = ("fn", "args")

    def __init__(self, sim: "Simulator", fn, args: tuple) -> None:
        # Inlined Event.__init__ (this is the most-allocated object in a
        # simulation — one per network delivery and per timer).
        self.sim = sim
        self.name = None
        self.callbacks = []
        self._value = None
        self._exception = None
        self.defused = False
        self._entry = None
        self.fn = fn
        self.args = args

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.fn(*self.args)
        for cb in callbacks:
            cb(self)

    def cancel(self) -> bool:
        """Prevent the scheduled call from running. Idempotent."""
        if self.callbacks is None:
            return False
        return self.sim._cancel_entry(self._entry)

    def __repr__(self) -> str:
        label = getattr(self.fn, "__name__", repr(self.fn))
        state = "done" if self.processed else "pending"
        return f"<ScheduledCall {label} {state} at {id(self):#x}>"


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is ``(index, value)`` of the winning event. Losing events
    that support ``cancel()`` (queue gets, for example) are cancelled so
    they do not consume resources after the race is decided. A losing
    event that fails after the race is decided is defused.
    """

    __slots__ = ("events", "_decided")

    def __init__(self, sim: "Simulator", events: list) -> None:
        super().__init__(sim, name="AnyOf")
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.events = list(events)
        self._decided = False
        for index, event in enumerate(self.events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int):
        def on_done(event: Event) -> None:
            if self._decided:
                event.defused = True
                return
            self._decided = True
            for loser in self.events:
                if loser is not event:
                    loser.defused = True
                    cancel = getattr(loser, "cancel", None)
                    if cancel is not None:
                        cancel()
            if event.ok:
                self.succeed((index, event.value))
            else:
                # The race observes (and therefore handles) the winner's
                # failure; the AnyOf event now carries it onward.
                event.defused = True
                self.fail(event.exception)

        return on_done


class AllOf(Event):
    """Triggers when every one of ``events`` has triggered successfully.

    The value is the list of event values, in the order given. Fails with
    the first failure observed.
    """

    __slots__ = ("events", "_remaining", "_failed")

    def __init__(self, sim: "Simulator", events: list) -> None:
        super().__init__(sim, name="AllOf")
        self.events = list(events)
        self._remaining = len(self.events)
        self._failed = False
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_done)

    def _on_done(self, event: Event) -> None:
        if self._failed:
            event.defused = True
            return
        if not event.ok:
            self._failed = True
            event.defused = True
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])
