"""Score a detection stream against campaign ground truth.

Chaos actions that plant an intrusion (``SwapByzantine``,
``InjectWrites``, ``SpoofFrontend``) record :class:`GroundTruthEpisode`
records on the campaign context; :func:`score_detections` joins the
detector's output against those episodes and reports, per behaviour:

- **recall** — fraction of planted episodes flagged with the exact kind;
- **precision** — fraction of that kind's detections that land inside a
  matching episode (a ``byzantine-*`` detection inside *any* Byzantine
  episode on the same replica counts as attributed — flagging a silent
  replica as stuttering is a mislabel, not a false alarm);
- **mean detection latency** — first exact-kind alert minus episode
  start;
- global **false positives** — detections matching no episode at all,
  which the benign false-positive suite requires to be empty.

An episode's match window extends ``grace`` seconds past its end: the
detector's rolling window legitimately reports a burst that just
stopped.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GroundTruthEpisode:
    """One planted intrusion: what, who, and when."""

    #: ``byzantine`` / ``write-burst`` / ``spoof``.
    kind: str
    #: Replica address, HMI client, or ``*`` for any entity.
    entity: str
    start: float
    end: float
    #: For ``byzantine`` episodes: the planted behaviour name.
    behaviour: str = ""

    @property
    def label(self) -> str:
        """Reporting bucket: behaviour name for Byzantine, kind otherwise."""
        if self.kind == "byzantine":
            return self.behaviour or "byzantine"
        return self.kind

    def expected_detection(self) -> str:
        """The exact detection kind a correct detector should emit."""
        if self.kind == "byzantine":
            return f"byzantine-{self.behaviour}"
        if self.kind == "spoof":
            return "spoofed-frontend"
        return self.kind

    def admits(self, detection, grace: float) -> bool:
        """Whether ``detection`` is attributable to this episode at all."""
        if not (self.start <= detection.time <= self.end + grace):
            return False
        if self.entity not in ("*", detection.entity):
            return False
        if self.kind == "byzantine":
            return detection.kind.startswith("byzantine")
        return detection.kind == self.expected_detection()

    def matches_exactly(self, detection, grace: float) -> bool:
        """Attributable *and* labelled with the exact expected kind."""
        return (
            self.admits(detection, grace)
            and detection.kind == self.expected_detection()
        )


def _detection_dict(detection) -> dict:
    return {
        "time": detection.time,
        "kind": detection.kind,
        "entity": detection.entity,
        "score": detection.score,
        "detector": detection.detector,
        "evidence": detection.evidence,
    }


def score_detections(detections, episodes, grace: float = 1.0) -> dict:
    """Join detections against ground truth; see the module docstring.

    Returns a plain-dict report (JSON-ready)::

        {
          "behaviours": {label: {episodes, detected, recall, detections,
                                 attributed, precision, f1,
                                 mean_latency}},
          "false_positives": [...], "false_positive_count": int,
          "misattributed": int, "episodes": int, "detections": int,
        }
    """
    detections = list(detections)
    episodes = list(episodes)
    labels = sorted({ep.label for ep in episodes})
    behaviours: dict[str, dict] = {}

    attributed_ids: set[int] = set()
    exact_ids: set[int] = set()
    for ep in episodes:
        for detection in detections:
            if ep.admits(detection, grace):
                attributed_ids.add(id(detection))
                if detection.kind == ep.expected_detection():
                    exact_ids.add(id(detection))

    for label in labels:
        members = [ep for ep in episodes if ep.label == label]
        expected_kinds = {ep.expected_detection() for ep in members}
        of_kind = [d for d in detections if d.kind in expected_kinds]
        detected = 0
        latencies = []
        for ep in members:
            hits = sorted(
                (d for d in of_kind if ep.matches_exactly(d, grace)),
                key=lambda d: d.time,
            )
            if hits:
                detected += 1
                latencies.append(hits[0].time - ep.start)
        attributed = [d for d in of_kind if id(d) in attributed_ids]
        recall = detected / len(members) if members else 1.0
        precision = len(attributed) / len(of_kind) if of_kind else 1.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        behaviours[label] = {
            "episodes": len(members),
            "detected": detected,
            "recall": round(recall, 4),
            "detections": len(of_kind),
            "attributed": len(attributed),
            "precision": round(precision, 4),
            "f1": round(f1, 4),
            "mean_latency": (
                round(sum(latencies) / len(latencies), 4) if latencies else None
            ),
        }

    false_positives = [
        d for d in detections if id(d) not in attributed_ids
    ]
    return {
        "behaviours": behaviours,
        "false_positives": [_detection_dict(d) for d in false_positives],
        "false_positive_count": len(false_positives),
        "misattributed": len(attributed_ids) - len(exact_ids),
        "episodes": len(episodes),
        "detections": len(detections),
    }
