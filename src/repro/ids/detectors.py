"""Threshold detectors over the windowed trace features.

The :class:`IntrusionDetector` is polled on the campaign's existing
monitor grid (no events of its own), reads the
:class:`~repro.ids.features.FeatureExtractor` windows plus the metrics
registry, and emits typed :class:`Detection` events when a normalized
risk score crosses the alert threshold. Each detector keys on the
signature its Byzantine behaviour cannot avoid leaving in the trace:

``byzantine-silent``
    The replica machine answers the host-liveness probe (its network
    endpoint is up) yet produced **no** protocol spans for a full
    silence window while its peers kept deciding. A *crashed* machine
    fails the probe, which is how benign crashes and leader kills stay
    out of the alert stream — the bump-in-the-wire distinction.
``byzantine-stuttering``
    Consensus spans keep flowing from the replica but no client
    accepted a reply from it for a full window while other replicas'
    replies flowed normally (ordering yes, service no).
``byzantine-lying``
    Divergent *ordered* replies (``reply.mismatch``): honest replicas
    answer one ``(client, sequence)`` identically, so repeated
    divergence is deliberate.
``byzantine-falsifying``
    Divergent pushes (``push.mismatch``): ItemUpdate copies whose
    payload disagrees with the f+1-voted delivery.
``byzantine-equivocating``
    A suspicion burst — at least ``f+1`` distinct replicas STOP-voting
    against a leader that is *up* and actively producing consensus
    spans. When the leader is down the burst is the normal crash
    recovery and is ignored.
``write-burst``
    An HMI client's write rate exceeds its learned (warm-up) duty cycle
    by the configured multiplier — the command-injection profile.
``spoofed-frontend``
    The per-replica rejected-envelope counters (metrics registry) climb
    in lockstep on ``f+1`` or more replicas: forged traffic is being
    dropped at the secure channels.

All thresholds live in the frozen :class:`IdsConfig`, whose repr is a
valid constructor call (campaign replay snippets embed it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.ids.features import FeatureExtractor

_NEVER = -1.0e9


@dataclass(frozen=True)
class IdsConfig:
    """Thresholds and windows for the intrusion detector."""

    #: Learning period: no detections are emitted before this instant,
    #: and write-rate baselines are frozen when it ends.
    warmup: float = 1.0
    #: Rolling feature window (seconds).
    window: float = 1.0
    #: Protocol silence needed to call an *up* replica silent.
    silence_window: float = 1.5
    #: Reply silence needed to call a consensus-active replica stuttering.
    reply_silence_window: float = 1.5
    #: Grace after a machine comes back up before silence counts again.
    recovery_grace: float = 0.75
    #: Divergent ordered replies per window to call a replica lying.
    mismatch_threshold: int = 2
    #: Divergent pushes per window to call a replica falsifying.
    push_mismatch_threshold: int = 2
    #: Peers that must be making consensus progress for silence verdicts.
    peer_activity_min: int = 2
    #: A suspicion only counts toward equivocation if the suspected
    #: leader closed a consensus within this many seconds *before the
    #: suspicion itself* — a killed or partitioned leader goes quiet long
    #: before its replicas time out on it, an equivocator is suspected
    #: while still actively ordering.
    suspect_activity_gap: float = 0.75
    #: Write-rate multiple over the learned baseline that flags a burst.
    write_rate_multiplier: float = 4.0
    #: Absolute floor (writes/second) under which bursts are never flagged.
    write_burst_floor: float = 6.0
    #: Rejected envelopes per window (summed over replicas) for spoofing.
    spoof_threshold: int = 5
    #: Normalized risk score at/above which a Detection is emitted.
    alert_threshold: float = 1.0


@dataclass(frozen=True)
class Detection:
    """One intrusion alert: an entity crossed a detector's threshold."""

    time: float
    #: ``byzantine-<behaviour>`` / ``write-burst`` / ``spoofed-frontend``.
    kind: str
    #: The flagged entity (replica address, HMI client, or ``ingress``).
    entity: str
    #: Normalized risk score (1.0 = exactly at threshold).
    score: float
    #: Which detector fired.
    detector: str
    evidence: str = ""
    #: Stable per-run identity (``"d1"``, ``"d2"``, ...) so downstream
    #: consumers — the recovery orchestrator's action log above all —
    #: can cite the exact detection that triggered an action.
    uid: str = ""


@dataclass(frozen=True)
class Verdict:
    """An *actionable* detector state: a detection plus its persistence.

    A raw :class:`Detection` is a threshold crossing — one noisy window
    can produce it. A verdict is what response policy should consume:
    the condition is still asserted now, has held for ``streak``
    consecutive polls, and ``peak_score`` is the worst score seen while
    asserted. The orchestrator's corroboration threshold is a minimum
    streak, so an adversary cannot weaponize one low-confidence blip
    into a self-inflicted recovery action.
    """

    detection: Detection
    streak: int
    peak_score: float

    @property
    def kind(self) -> str:
        return self.detection.kind

    @property
    def entity(self) -> str:
        return self.detection.entity


@dataclass
class _HostState:
    """Per-replica liveness bookkeeping from the endpoint probe."""

    last_down: float = _NEVER
    down_now: bool = False


class IntrusionDetector:
    """Online detector polled on the campaign's monitor grid.

    Entirely passive: reads features, probes endpoint liveness and the
    metrics registry, appends to :attr:`detections`. The same seed and
    schedule always produce the identical detection stream.
    """

    def __init__(
        self,
        sim,
        net,
        features: FeatureExtractor,
        config: IdsConfig | None = None,
        *,
        n: int = 4,
        f: int = 1,
        replica_addresses: list | None = None,
        rejected_reader=None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.features = features
        self.config = config if config is not None else IdsConfig()
        self.n = n
        self.f = f
        from repro.bftsmart.config import replica_address

        self.replicas = (
            list(replica_addresses)
            if replica_addresses is not None
            else [replica_address(i) for i in range(n)]
        )
        #: Zero-arg callable -> {replica address: rejected-envelope total}.
        self._rejected_reader = rejected_reader
        self.detections: list = []
        #: entity -> {kind: latest normalized score} (below-threshold too).
        self.risk: dict[str, dict] = {}
        #: (kind, entity) pairs currently asserted (hysteresis).
        self._asserted: set = set()
        #: (kind, entity) -> consecutive polls at/above threshold.
        self._streak: dict[tuple, int] = {}
        #: (kind, entity) -> worst score seen during the current assertion.
        self._peak: dict[tuple, float] = {}
        #: (kind, entity) -> the Detection that opened the assertion.
        self._latest: dict[tuple, Detection] = {}
        self._hosts = {addr: _HostState() for addr in self.replicas}
        #: Learned per-client write rates (frozen at warm-up end).
        self._write_baseline: dict[str, float] = {}
        self._baseline_frozen = False
        #: deque[(time, {replica: rejected total})] for windowed deltas.
        self._rejected_samples: deque = deque()
        #: deque[(time, {replica: last consensus close})] — a sampled
        #: history of the monotone per-replica consensus clock, so a
        #: suspicion at time ``t`` can be judged against what the leader
        #: was doing *at* ``t`` rather than at poll time.
        self._consensus_history: deque = deque()
        self.polls = 0

    # -- helpers ---------------------------------------------------------

    def _score(self, entity: str, kind: str, score: float) -> None:
        self.risk.setdefault(entity, {})[kind] = score

    def _verdict(
        self, kind: str, entity: str, score: float, detector: str, evidence: str
    ) -> None:
        """Assert or clear one (kind, entity) condition with hysteresis."""
        self._score(entity, kind, score)
        key = (kind, entity)
        if score >= self.config.alert_threshold:
            self._streak[key] = self._streak.get(key, 0) + 1
            self._peak[key] = max(self._peak.get(key, 0.0), round(score, 4))
            if key not in self._asserted:
                self._asserted.add(key)
                detection = Detection(
                    time=self.sim.now,
                    kind=kind,
                    entity=entity,
                    score=round(score, 4),
                    detector=detector,
                    evidence=evidence,
                    uid=f"d{len(self.detections) + 1}",
                )
                self.detections.append(detection)
                self._latest[key] = detection
        else:
            self._asserted.discard(key)
            self._streak.pop(key, None)
            self._peak.pop(key, None)

    def _probe_hosts(self, now: float) -> None:
        for addr, host in self._hosts.items():
            down = self.net.endpoint(addr).down
            host.down_now = down
            if down:
                host.last_down = now

    def _reference(self, host: _HostState, *marks: float) -> float:
        """Latest instant the entity was provably fine."""
        ref = self.config.warmup
        if host.last_down > _NEVER:
            ref = max(ref, host.last_down + self.config.recovery_grace)
        for mark in marks:
            ref = max(ref, mark)
        return ref

    # -- the poll --------------------------------------------------------

    def poll(self) -> None:
        now = self.sim.now
        self.polls += 1
        features = self.features
        features.prune(now)
        self._probe_hosts(now)
        self._consensus_history.append((now, dict(features.last_consensus)))
        while self._consensus_history[0][0] < now - 3.0 * self.config.window:
            self._consensus_history.popleft()
        self._learn_write_baseline(now)
        if now < self.config.warmup:
            return
        self._detect_silent(now)
        self._detect_stuttering(now)
        self._detect_lying(now)
        self._detect_falsifying(now)
        self._detect_equivocation(now)
        self._detect_write_bursts(now)
        self._detect_spoofing(now)

    # -- replica detectors ----------------------------------------------

    def _detect_silent(self, now: float) -> None:
        cfg = self.config
        features = self.features
        active_peers = {
            addr for addr in self.replicas if features.consensus_count(addr) > 0
        }
        for addr in self.replicas:
            host = self._hosts[addr]
            if host.down_now:
                self._verdict("byzantine-silent", addr, 0.0, "silence", "")
                continue
            peers = len(active_peers - {addr})
            if peers < cfg.peer_activity_min:
                self._verdict("byzantine-silent", addr, 0.0, "silence", "")
                continue
            ref = self._reference(host, features.last_activity.get(addr, 0.0))
            score = (now - ref) / cfg.silence_window
            self._verdict(
                "byzantine-silent",
                addr,
                score,
                "silence",
                f"no protocol spans for {now - ref:.2f}s while up and "
                f"{peers} peers decided",
            )

    def _detect_stuttering(self, now: float) -> None:
        cfg = self.config
        features = self.features
        recent = 2.0 * cfg.window
        replying_peers = {
            addr
            for addr in self.replicas
            if now - features.last_reply.get(addr, _NEVER) <= recent
        }
        for addr in self.replicas:
            host = self._hosts[addr]
            ordering = (
                features.consensus_count(addr) > 0
                or now - features.last_activity.get(addr, _NEVER) <= recent
            )
            peers = len(replying_peers - {addr})
            if host.down_now or not ordering or peers < cfg.peer_activity_min:
                self._verdict("byzantine-stuttering", addr, 0.0, "reply-silence", "")
                continue
            ref = self._reference(host, features.last_reply.get(addr, 0.0))
            score = (now - ref) / cfg.reply_silence_window
            self._verdict(
                "byzantine-stuttering",
                addr,
                score,
                "reply-silence",
                f"orders consensus but no client accepted a reply from it "
                f"for {now - ref:.2f}s",
            )

    def _detect_lying(self, now: float) -> None:
        for addr in self.replicas:
            count = self.features.mismatch_count(addr)
            self._verdict(
                "byzantine-lying",
                addr,
                count / self.config.mismatch_threshold,
                "reply-divergence",
                f"{count} divergent ordered replies in the window",
            )

    def _detect_falsifying(self, now: float) -> None:
        for addr in self.replicas:
            count = self.features.push_mismatch_count(addr)
            self._verdict(
                "byzantine-falsifying",
                addr,
                count / self.config.push_mismatch_threshold,
                "push-divergence",
                f"{count} divergent pushed updates in the window",
            )

    def _last_consensus_at(self, addr: str, t: float) -> float:
        """The replica's last consensus close as of instant ``t``."""
        best = _NEVER
        for sample_time, clocks in self._consensus_history:
            if sample_time > t:
                break
            best = clocks.get(addr, _NEVER)
        return best

    def _detect_equivocation(self, now: float) -> None:
        cfg = self.config
        quorum = self.f + 1
        suspecters: dict[str, set] = {}
        for t, who, leader in self.features.suspects:
            if not leader or who == leader:
                continue
            if t - self._last_consensus_at(leader, t) <= cfg.suspect_activity_gap:
                suspecters.setdefault(leader, set()).add(who)
        for addr in self.replicas:
            burst = suspecters.get(addr, set())
            self._verdict(
                "byzantine-equivocating",
                addr,
                len(burst) / quorum,
                "suspicion-burst",
                f"{len(burst)} replicas suspect a leader that was still "
                f"actively ordering",
            )

    # -- frontend / client detectors ------------------------------------

    def _learn_write_baseline(self, now: float) -> None:
        if self._baseline_frozen:
            return
        for client in self.features.writes:
            rate = self.features.write_rate(client)
            if rate > self._write_baseline.get(client, 0.0):
                self._write_baseline[client] = rate
        if now >= self.config.warmup:
            self._baseline_frozen = True

    def _detect_write_bursts(self, now: float) -> None:
        cfg = self.config
        for client in self.features.writes:
            rate = self.features.write_rate(client)
            baseline = max(
                self._write_baseline.get(client, 0.0),
                cfg.write_burst_floor / cfg.write_rate_multiplier,
            )
            score = rate / (baseline * cfg.write_rate_multiplier)
            spread = self.features.write_tag_spread(client)
            self._verdict(
                "write-burst",
                client,
                score,
                "write-profile",
                f"{rate:.1f} writes/s vs learned {baseline:.1f}/s "
                f"across {spread} tags",
            )

    def _detect_spoofing(self, now: float) -> None:
        cfg = self.config
        totals = self._read_rejected()
        samples = self._rejected_samples
        samples.append((now, totals))
        while samples and samples[0][0] < now - cfg.window:
            samples.popleft()
        oldest = samples[0][1]
        deltas = {
            addr: max(0, totals.get(addr, 0) - oldest.get(addr, 0))
            for addr in self.replicas
        }
        climbing = sum(1 for delta in deltas.values() if delta > 0)
        total = sum(deltas.values())
        score = (
            total / cfg.spoof_threshold if climbing >= self.f + 1 else 0.0
        )
        self._verdict(
            "spoofed-frontend",
            "ingress",
            score,
            "rejected-envelopes",
            f"{total} rejected envelopes across {climbing} replicas "
            f"in the window",
        )

    def _read_rejected(self) -> dict:
        if self._rejected_reader is not None:
            return dict(self._rejected_reader())
        totals = {}
        read = getattr(self.sim.metrics, "read", None)
        if read is None:
            return totals
        for addr in self.replicas:
            group = read(f"replica.{addr}")
            if isinstance(group, dict):
                totals[addr] = group.get("rejected_envelopes", 0) + group.get(
                    "rejected_requests", 0
                )
        return totals

    # -- reads -----------------------------------------------------------

    def risk_scores(self) -> dict:
        """Latest normalized risk per entity: ``{entity: max score}``."""
        return {
            entity: max(kinds.values()) if kinds else 0.0
            for entity, kinds in self.risk.items()
        }

    def alerts_above(self, threshold: float) -> list:
        return [d for d in self.detections if d.score >= threshold]

    def verdicts(self, min_streak: int = 1, kinds: tuple | None = None) -> list:
        """Currently-asserted conditions corroborated for ``min_streak`` polls.

        The actionable read for response automation: each
        :class:`Verdict` carries the opening :class:`Detection` (with
        its ``uid``), the consecutive-poll streak and the peak score.
        Returned in detection order, so consumers iterate
        deterministically.
        """
        out = []
        for key in sorted(
            self._asserted, key=lambda k: self._latest[k].uid if k in self._latest else ""
        ):
            if key not in self._latest:
                continue
            streak = self._streak.get(key, 0)
            if streak < min_streak:
                continue
            if kinds is not None and key[0] not in kinds:
                continue
            out.append(
                Verdict(
                    detection=self._latest[key],
                    streak=streak,
                    peak_score=self._peak.get(key, 0.0),
                )
            )
        out.sort(key=lambda v: int(v.detection.uid[1:]))
        return out
