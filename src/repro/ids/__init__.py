"""Trace-driven intrusion detection for the replicated SCADA.

``repro.ids`` is an *online* anomaly detector that rides the
observability substrate: it subscribes to the live span stream
(:meth:`repro.obs.trace.SpanTracer.subscribe`) and polls the metrics
registry, and from those passive taps maintains per-replica and
per-frontend risk scores. It never adds wire messages, never schedules
simulation events, and never touches the ordered path — a campaign's
fingerprint is bit-identical with the IDS on or off.

- :mod:`repro.ids.features` — windowed trace-derived features:
  consensus-message rate per replica, reply divergence, leader-change /
  suspicion activity, per-client write profiles (rate, tag spread,
  value deltas), RTU poll cadence;
- :mod:`repro.ids.detectors` — threshold detectors over those features
  flagging Byzantine replicas (silent / lying / falsifying /
  equivocating / stuttering), spoofed frontends and command-injection
  write bursts, emitting typed :class:`~repro.ids.detectors.Detection`
  events;
- :mod:`repro.ids.scoring` — scores a detection stream against the
  chaos campaign's ground-truth episodes: detection latency, precision,
  recall and F1 per Byzantine behaviour.

The design follows the probability-risk-identification IDS line (risk
scores per protocol signal) and the bump-in-the-wire detectors for
legacy SCADA (host-liveness probes distinguish a crashed machine from a
live-but-protocol-silent compromise).
"""

from repro.ids.detectors import Detection, IdsConfig, IntrusionDetector, Verdict
from repro.ids.features import FeatureExtractor
from repro.ids.scoring import GroundTruthEpisode, score_detections

__all__ = [
    "Detection",
    "FeatureExtractor",
    "GroundTruthEpisode",
    "IdsConfig",
    "IntrusionDetector",
    "Verdict",
    "score_detections",
]
