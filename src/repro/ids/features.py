"""Windowed trace-derived features, fed by the span subscription hook.

The :class:`FeatureExtractor` is a pure consumer: it registers with
:meth:`repro.obs.trace.SpanTracer.subscribe` and folds every closing
span into rolling per-entity windows. Nothing here schedules events or
reads protocol state — the features are exactly what a bump-in-the-wire
observer could compute from the traffic it already sees.

Feature catalogue (``docs/IDS.md`` has the full table):

=====================  =============================================
feature                source spans
=====================  =============================================
consensus rate         ``consensus`` per replica process
protocol activity      any ``consensus.*`` / ``request.*`` /
                       ``wal.append`` span per replica process
reply rate             ``reply.recv`` points (per voting client)
reply divergence       ``reply.mismatch`` points
push divergence        ``push.mismatch`` points
suspicion              ``sync.suspect`` points (suspecter, leader)
leader changes         ``sync.leader_change`` spans
write profile          ``hmi.write`` spans (rate, tag spread, deltas)
RTU poll cadence       ``rtu.poll`` points per frontend
=====================  =============================================
"""

from __future__ import annotations

from collections import deque


def _prune(dq: deque, cutoff: float) -> None:
    while dq and dq[0][0] < cutoff:
        dq.popleft()


class FeatureExtractor:
    """Folds the live span stream into rolling per-entity windows."""

    def __init__(self, window: float = 1.0) -> None:
        self.window = window
        #: replica process -> deque[(end_time,)] of ``consensus`` roots.
        self.consensus: dict[str, deque] = {}
        #: replica process -> last time *any* protocol span closed there.
        self.last_activity: dict[str, float] = {}
        #: replica process -> last ``consensus`` root close time (monotone,
        #: never pruned — the detector keeps a sampled history of it to
        #: ask "was this replica ordering *at* instant t").
        self.last_consensus: dict[str, float] = {}
        #: replying replica -> deque[(time,)] of accepted replies.
        self.replies: dict[str, deque] = {}
        #: replying replica -> last accepted reply time.
        self.last_reply: dict[str, float] = {}
        #: deviant replica -> deque[(time,)] of divergent ordered replies.
        self.reply_mismatch: dict[str, deque] = {}
        #: deviant replica -> deque[(time,)] of divergent pushes.
        self.push_mismatch: dict[str, deque] = {}
        #: deque[(time, suspecting replica, suspected leader)].
        self.suspects: deque = deque()
        #: deque[(time, regency)] of completed leader changes.
        self.leader_changes: deque = deque()
        #: HMI client process -> deque[(time, item, value)].
        self.writes: dict[str, deque] = {}
        #: frontend process -> deque[(time,)] of RTU poll rounds.
        self.rtu_polls: dict[str, deque] = {}
        #: Spans consumed (diagnostics).
        self.spans_seen = 0

    # -- ingestion (the SpanTracer.subscribe callback) ------------------

    def on_span(self, span) -> None:
        self.spans_seen += 1
        name = span.name
        t = span.end
        if name.startswith("consensus"):
            if name == "consensus":
                self.consensus.setdefault(span.process, deque()).append((t,))
                self.last_consensus[span.process] = t
            self.last_activity[span.process] = t
        elif name in ("request.execute", "request.pending", "wal.append"):
            self.last_activity[span.process] = t
        elif name == "reply.recv":
            replica = span.attrs.get("replica", "")
            self.replies.setdefault(replica, deque()).append((t,))
            self.last_reply[replica] = t
        elif name == "reply.mismatch":
            replica = span.attrs.get("replica", "")
            self.reply_mismatch.setdefault(replica, deque()).append((t,))
        elif name == "push.mismatch":
            replica = span.attrs.get("replica", "")
            self.push_mismatch.setdefault(replica, deque()).append((t,))
        elif name == "sync.suspect":
            self.suspects.append((t, span.process, span.attrs.get("leader", "")))
        elif name == "sync.leader_change":
            self.leader_changes.append((t, span.attrs.get("regency", -1)))
        elif name == "hmi.write":
            self.writes.setdefault(span.process, deque()).append(
                (t, span.attrs.get("item", ""), span.attrs.get("value"))
            )
        elif name == "rtu.poll":
            self.rtu_polls.setdefault(span.process, deque()).append((t,))

    # -- windowed reads -------------------------------------------------

    def prune(self, now: float) -> None:
        cutoff = now - self.window
        for table in (
            self.consensus,
            self.replies,
            self.reply_mismatch,
            self.push_mismatch,
            self.rtu_polls,
            self.writes,
        ):
            for dq in table.values():
                _prune(dq, cutoff)
        _prune(self.suspects, cutoff)
        _prune(self.leader_changes, cutoff)

    def consensus_count(self, process: str) -> int:
        return len(self.consensus.get(process, ()))

    def reply_count(self, replica: str) -> int:
        return len(self.replies.get(replica, ()))

    def mismatch_count(self, replica: str) -> int:
        return len(self.reply_mismatch.get(replica, ()))

    def push_mismatch_count(self, replica: str) -> int:
        return len(self.push_mismatch.get(replica, ()))

    def suspecters_of(self, leader: str) -> set:
        """Distinct replicas currently suspecting ``leader``."""
        return {who for _t, who, whom in self.suspects if whom == leader}

    def write_rate(self, client: str) -> float:
        """Writes per second from ``client`` over the window."""
        return len(self.writes.get(client, ())) / self.window

    def write_tag_spread(self, client: str) -> int:
        return len({item for _t, item, _v in self.writes.get(client, ())})

    def write_value_deltas(self, client: str) -> list:
        values = [
            v
            for _t, _item, v in self.writes.get(client, ())
            if isinstance(v, (int, float))
        ]
        return [abs(b - a) for a, b in zip(values, values[1:])]

    def poll_cadence(self, frontend: str) -> float:
        """Observed RTU polls per second for one frontend."""
        return len(self.rtu_polls.get(frontend, ())) / self.window
