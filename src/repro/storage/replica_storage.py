"""``ReplicaStorage``: one replica's durable state, bundled.

This is the object the rest of the system talks to. It owns a
:class:`~repro.storage.disk.SimDisk` and layers the
:class:`~repro.storage.wal.WriteAheadLog` and
:class:`~repro.storage.checkpoint.CheckpointStore` on it, exposing
exactly the hooks ``ServiceReplica`` needs:

- :meth:`on_decided` — WAL-append each decision as it commits;
- :meth:`on_checkpoint` — persist the snapshot atomically, then
  truncate the WAL through the checkpointed cid;
- :meth:`reinstall` — re-seed the disk after a *full* state-transfer
  install (the durable state must track what the replica now holds,
  or the next restart would resurrect pre-install history);
- :meth:`recover` — the restart-from-disk read path, returning a
  :class:`RecoveredState` that says how far the disk gets us and
  whether anything was damaged along the way.

Storage objects deliberately outlive replica incarnations: a
``CrashRestart`` kills the process but the disk keeps its contents
(mutated by the crash fault model), and the next incarnation boots
from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.checkpoint import CheckpointStore
from repro.storage.disk import SimDisk
from repro.storage.wal import WriteAheadLog


@dataclass
class RecoveredState:
    """What :meth:`ReplicaStorage.recover` found on disk.

    ``checkpoint_cid`` is -1 and ``snapshot`` ``None`` when no valid
    checkpoint survived. ``entries`` is the verified, contiguous WAL
    tail strictly after the checkpoint — ``(cid, value, timestamp)``
    tuples ready for the execution path. ``damaged`` is True when any
    digest check failed (torn tail, bit flip), ``notes`` says what
    happened in human terms.
    """

    checkpoint_cid: int = -1
    snapshot: bytes | None = None
    entries: list = field(default_factory=list)
    damaged: bool = False
    notes: str = ""

    @property
    def last_cid(self) -> int:
        """Highest cid the disk can restore (checkpoint or WAL tail)."""
        if self.entries:
            return self.entries[-1][0]
        return self.checkpoint_cid


class ReplicaStorage:
    """Durable-state bundle for one replica address."""

    def __init__(
        self,
        address: str,
        fsync_policy: str = "every-decision",
        fsync_interval: int = 8,
        checkpoint_retention: int = 2,
    ) -> None:
        self.address = address
        self.disk = SimDisk(name=address)
        self.wal = WriteAheadLog(
            self.disk, policy=fsync_policy, interval=fsync_interval
        )
        self.checkpoints = CheckpointStore(
            self.disk, retention=checkpoint_retention
        )
        #: Replays served back to the replica at boot (metrics).
        self.bytes_replayed = 0
        self.recoveries = 0

    # -- replica-facing write path -----------------------------------------

    def on_decided(self, cid: int, value: bytes, timestamp: float) -> bool:
        """WAL-append one decision; returns True when the append fsynced."""
        return self.wal.append(cid, value, timestamp)

    def on_checkpoint(self, cid: int, snapshot_blob: bytes) -> None:
        self.checkpoints.install(cid, snapshot_blob)
        self.wal.truncate_through(cid)

    def reinstall(self, checkpoint_cid: int, snapshot_blob: bytes, log) -> None:
        """Re-seed the disk after a full state-transfer install.

        The installed snapshot becomes the durable checkpoint and the
        transferred log becomes the WAL tail (fsynced once as a unit —
        installs are rare, the barrier is cheap relative to the
        transfer itself).
        """
        self.checkpoints.install(checkpoint_cid, snapshot_blob)
        self.wal.truncate_through(float("inf"))
        for cid, value, timestamp in sorted(log, key=lambda e: e[0]):
            self.wal.append(cid, value, timestamp)
        if self.disk.dirty:
            self.disk.fsync()

    # -- restart read path --------------------------------------------------

    def recover(self) -> RecoveredState:
        """Read back the durable state after a restart."""
        self.recoveries += 1
        notes = []
        damaged = False

        newest = self.checkpoints.load_newest()
        if newest is None:
            checkpoint_cid, snapshot = -1, None
            if any(
                name.startswith("checkpoint-") for name in self.disk.blob_names()
            ):
                damaged = True
                notes.append("all checkpoints failed verification")
            else:
                notes.append("no checkpoint on disk")
        else:
            checkpoint_cid, snapshot = newest
            notes.append(f"checkpoint cid={checkpoint_cid}")
            self.bytes_replayed += len(snapshot)

        entries, wal_damaged = self.wal.replay()
        if wal_damaged:
            damaged = True
            notes.append("WAL tail failed digest verification, truncated")

        # Keep only the contiguous run strictly after the checkpoint: a
        # gap means the entries past it belong to a history the surviving
        # checkpoint cannot anchor (e.g. the newest checkpoint was
        # corrupt and we fell back a generation).
        tail = []
        expected = checkpoint_cid + 1
        for entry in entries:
            cid = entry[0]
            if cid < expected:
                continue  # already covered by the checkpoint
            if cid > expected:
                damaged = True
                notes.append(f"WAL gap at cid={expected}, tail dropped")
                break
            tail.append(entry)
            expected += 1
        if tail:
            self.bytes_replayed += sum(len(value) for _, value, _ in tail)
            notes.append(f"WAL tail through cid={tail[-1][0]}")

        return RecoveredState(
            checkpoint_cid=checkpoint_cid,
            snapshot=snapshot,
            entries=tail,
            damaged=damaged,
            notes="; ".join(notes),
        )

    # -- crash / metrics -----------------------------------------------------

    def crash(self, mode: str = "intact") -> None:
        self.disk.crash(mode)

    def counters(self) -> dict:
        stats = self.disk.counters()
        stats["bytes_replayed"] = self.bytes_replayed
        stats["recoveries"] = self.recoveries
        stats["checkpoint_installs"] = self.checkpoints.installs
        return stats
