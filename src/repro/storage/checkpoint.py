"""Durable checkpoint store with atomic-rename install.

A checkpoint is the replica's ``_snapshot_blob()`` (service snapshot +
dedup table) framed with its digest. Installation follows the classic
crash-safe sequence:

1. write ``checkpoint-<cid>.tmp``
2. **fsync** — the bytes are durable under the temp name
3. rename to ``checkpoint-<cid>`` — atomic visibility flip
4. **fsync** — the rename (metadata) is durable
5. prune checkpoints beyond the retention bound

A crash between any two steps leaves either the old checkpoint set or
the old set plus a complete new checkpoint — never a half-written one
under a live name. ``load_newest`` verifies the digest frame and walks
backwards through retained generations, so one silently-corrupted
checkpoint degrades to the previous one rather than to garbage.
"""

from __future__ import annotations

from repro.crypto import digest
from repro.wire import decode, encode

_PREFIX = "checkpoint-"


def _blob_name(cid: int) -> str:
    # Zero-pad so lexicographic blob ordering matches numeric cid order.
    return f"{_PREFIX}{cid:012d}"


class CheckpointStore:
    """Persists checkpoint snapshots; survives crashes whole or not at all."""

    def __init__(self, disk, retention: int = 2):
        if retention < 1:
            raise ValueError("checkpoint retention must be >= 1")
        self.disk = disk
        self.retention = retention
        self.installs = 0

    def install(self, cid: int, snapshot_blob: bytes) -> None:
        framed = encode((cid, snapshot_blob, digest(snapshot_blob)))
        tmp = _blob_name(cid) + ".tmp"
        self.disk.put_blob(tmp, framed)
        self.disk.fsync()
        self.disk.rename_blob(tmp, _blob_name(cid))
        self.disk.fsync()
        self.installs += 1
        self._prune()

    def load_newest(self):
        """Newest checkpoint that passes verification.

        Returns ``(cid, snapshot_blob)`` or ``None``. Corrupt or
        incomplete candidates (including orphaned ``.tmp`` files from a
        mid-install crash) are skipped, falling back generation by
        generation.
        """
        names = [
            name
            for name in self.disk.blob_names()
            if name.startswith(_PREFIX) and not name.endswith(".tmp")
        ]
        for name in sorted(names, reverse=True):
            raw = self.disk.read_blob(name)
            if raw is None:
                continue
            try:
                cid, snapshot_blob, frame_digest = decode(raw)
                if digest(snapshot_blob) != frame_digest:
                    raise ValueError("digest mismatch")
            except Exception:
                continue
            return cid, snapshot_blob
        return None

    def _prune(self) -> None:
        names = sorted(
            name
            for name in self.disk.blob_names()
            if name.startswith(_PREFIX) and not name.endswith(".tmp")
        )
        for name in names[: -self.retention]:
            self.disk.delete_blob(name)
        # Orphaned temp files are garbage from an interrupted install.
        for name in self.disk.blob_names():
            if name.endswith(".tmp"):
                self.disk.delete_blob(name)
