"""Simulated durable storage with honest crash semantics.

The paper's replicas are memory-only: every recovery pays for a full
state transfer (Figure 8c). This package gives each replica a durable
tier — :class:`SimDisk` (fsync barriers + crash fault models),
:class:`WriteAheadLog` (digest-framed decisions), and
:class:`CheckpointStore` (atomic-rename snapshot installs) — bundled
behind :class:`ReplicaStorage`, so a restarted replica recovers from
its own disk and only fetches the log suffix it missed from peers.

See ``docs/DURABILITY.md`` for the crash model and recovery decision
tree.
"""

from repro.storage.checkpoint import CheckpointStore
from repro.storage.disk import CRASH_MODES, SimDisk
from repro.storage.replica_storage import RecoveredState, ReplicaStorage
from repro.storage.wal import FSYNC_POLICIES, WriteAheadLog

__all__ = [
    "CRASH_MODES",
    "FSYNC_POLICIES",
    "CheckpointStore",
    "RecoveredState",
    "ReplicaStorage",
    "SimDisk",
    "WriteAheadLog",
]
