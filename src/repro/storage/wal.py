"""Write-ahead log of decided batches, digest-framed per record.

Every decision the replica executes is first appended here as
``encode((payload, digest(payload)))`` with
``payload = encode((cid, value, timestamp))`` — the same triple the
in-memory ``decision_log`` holds. The digest frame is what recovery
trusts: a torn or silently-corrupted record fails verification and the
damaged suffix is discarded (state past it is re-fetched from peers,
f+1-verified, so a lying disk can lose data but never forge it).

Three fsync policies trade durability lag for barrier count:

``every-decision``
    fsync after each append. Nothing decided is ever lost; one barrier
    per consensus instance.
``every-N``
    fsync after every ``interval`` appends. Bounded loss window of
    ``interval - 1`` decisions.
``checkpoint-only``
    never fsync on append; the log only becomes durable when the
    checkpoint install barriers. Cheapest, loses the whole tail.
"""

from __future__ import annotations

from repro.crypto import digest
from repro.wire import decode, encode

FSYNC_POLICIES = ("every-decision", "every-n", "checkpoint-only")


class WriteAheadLog:
    """Digest-framed append log of ``(cid, value, timestamp)`` records."""

    def __init__(self, disk, policy: str = "every-decision", interval: int = 8):
        if policy not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {policy!r}; pick from {FSYNC_POLICIES}"
            )
        if interval < 1:
            raise ValueError("fsync interval must be >= 1")
        self.disk = disk
        self.policy = policy
        self.interval = interval
        #: cids of records currently in the on-disk log, append order —
        #: an in-memory mirror so truncation never has to re-read disk.
        self._cids: list[int] = []
        self._since_fsync = 0

    def append(self, cid: int, value: bytes, timestamp: float) -> bool:
        """Append one decision record; returns True when it fsynced."""
        payload = encode((cid, value, timestamp))
        self.disk.log_append(encode((payload, digest(payload))))
        self._cids.append(cid)
        if self.policy == "every-decision":
            self.disk.fsync()
            self._since_fsync = 0
            return True
        if self.policy == "every-n":
            self._since_fsync += 1
            if self._since_fsync >= self.interval:
                self.disk.fsync()
                self._since_fsync = 0
                return True
        # checkpoint-only: the checkpoint install's barrier covers us.
        return False

    def truncate_through(self, cid: int) -> None:
        """Drop every record with cid ≤ ``cid`` (post-checkpoint prune)."""
        keep_from = 0
        while keep_from < len(self._cids) and self._cids[keep_from] <= cid:
            keep_from += 1
        if keep_from:
            self.disk.log_truncate(keep_from)
            del self._cids[:keep_from]

    def replay(self):
        """Read the log back after a restart.

        Returns ``(entries, damaged)`` where ``entries`` is the verified
        ``[(cid, value, timestamp), ...]`` prefix and ``damaged`` is True
        when a record failed its digest check (torn tail, bit flip). The
        damaged suffix is cut from the disk so future appends extend a
        clean log, and the cid mirror is rebuilt either way.
        """
        entries = []
        damaged = False
        records = self.disk.log_records()
        for raw in records:
            try:
                payload, frame_digest = decode(raw)
                if digest(payload) != frame_digest:
                    raise ValueError("digest mismatch")
                cid, value, timestamp = decode(payload)
            except Exception:
                damaged = True
                break
            entries.append((cid, value, timestamp))
        if damaged:
            self.disk.log_drop_tail(len(entries))
        self._cids = [cid for cid, _, _ in entries]
        self._since_fsync = 0
        return entries, damaged

    @property
    def tail_cids(self) -> list:
        return list(self._cids)
