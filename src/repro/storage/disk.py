"""``SimDisk``: a per-replica durable device with honest crash semantics.

The disk distinguishes **written** from **durable** state the way a real
OS does: appends and blob writes land in a volatile cache and only
become crash-proof at an :meth:`SimDisk.fsync` barrier. At crash time
(:meth:`SimDisk.crash`) the volatile cache is always lost, and one of
four fault models is applied to what the device claims it persisted:

``intact``
    Everything fsynced survives; everything volatile is gone. The
    ordinary power-cut.
``torn``
    A tail write was in flight: the record being appended is persisted
    *partially* (its first half), modelling a torn sector write that the
    drive acknowledged anyway. With no in-flight write the newest
    durable record is torn instead (a lying write cache).
``corrupt``
    Silent media corruption: one bit of the newest durable record (or,
    with an empty log, of the newest blob) flips. The disk reports
    success on read — only content digests can catch this.
``wiped``
    Total loss (reprovisioned machine, destroyed volume). Recovery must
    behave exactly like a from-scratch rejuvenation.

Timing is *accounted*, not injected: the device keeps its own busy-time
ledger (``write_latency`` per KiB plus ``fsync_latency`` per barrier)
instead of scheduling events on the simulation heap, so enabling
durability — under any fsync policy — never perturbs the protocol event
order. That is what keeps chaos campaigns bit-deterministic with the
storage tier on.

All mutations are deterministic: the fault models use fixed structural
rules (tear the tail in half, flip the middle bit), never randomness.
"""

from __future__ import annotations

#: Recognised crash-time fault models.
CRASH_MODES = ("intact", "torn", "corrupt", "wiped")


class SimDisk:
    """One simulated durable device (an append log plus a blob store)."""

    def __init__(
        self,
        name: str,
        write_latency_per_kb: float = 0.00005,
        fsync_latency: float = 0.0005,
    ) -> None:
        self.name = name
        self.write_latency_per_kb = write_latency_per_kb
        self.fsync_latency = fsync_latency

        #: Durable (fsynced) append-log records, in append order.
        self._log: list[bytes] = []
        #: Appended but not yet fsynced records.
        self._log_volatile: list[bytes] = []
        #: Durable named blobs.
        self._blobs: dict[str, bytes] = {}
        #: Written but not yet fsynced blobs.
        self._blobs_volatile: dict[str, bytes] = {}
        #: Renames performed but not yet fsynced: (src, dst) in order.
        self._renames_volatile: list[tuple] = []

        # -- counters (surfaced through Simulator.stats) --
        self.fsyncs = 0
        self.appends = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.busy_time = 0.0
        self.crashes = 0

    # ------------------------------------------------------------------
    # append log
    # ------------------------------------------------------------------

    def log_append(self, record: bytes) -> None:
        """Append one record; volatile until the next fsync barrier."""
        self._log_volatile.append(bytes(record))
        self.appends += 1

    def log_records(self) -> list:
        """All records a reader would see right now (durable + cached)."""
        return list(self._log) + list(self._log_volatile)

    def log_truncate(self, count: int) -> None:
        """Drop the first ``count`` records (checkpoint truncation).

        Modelled as segment deletion: metadata-only, no write charge.
        Truncation may reach into the volatile tail (a truncated record
        that was never fsynced simply never existed).
        """
        if count <= 0:
            return
        durable = min(count, len(self._log))
        del self._log[:durable]
        remaining = count - durable
        if remaining:
            del self._log_volatile[:remaining]

    def log_drop_tail(self, keep: int) -> None:
        """Discard every record past the first ``keep`` (WAL repair).

        Used by recovery after a torn/corrupt tail was detected: the
        damaged suffix is cut so later appends extend a clean prefix.
        """
        total = len(self._log) + len(self._log_volatile)
        if keep >= total:
            return
        if keep <= len(self._log):
            del self._log[keep:]
            self._log_volatile.clear()
        else:
            del self._log_volatile[keep - len(self._log):]

    # ------------------------------------------------------------------
    # blob store
    # ------------------------------------------------------------------

    def put_blob(self, name: str, data: bytes) -> None:
        """Write (or overwrite) a named blob; volatile until fsync."""
        self._blobs_volatile[name] = bytes(data)

    def rename_blob(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst`` (the install primitive).

        The rename is atomic but — like POSIX ``rename()`` — only
        crash-proof after the next fsync barrier. The source must be
        durable: renaming un-fsynced data is the classic
        torn-install bug this store exists to avoid.
        """
        if src not in self._blobs:
            raise ValueError(
                f"rename of non-durable blob {src!r}: fsync before installing"
            )
        self._renames_volatile.append((src, dst))

    def read_blob(self, name: str):
        """The blob's current durable-or-cached content, or ``None``."""
        data = self._blobs_volatile.get(name)
        if data is None:
            data = self._effective_blobs().get(name)
        if data is not None:
            self.bytes_read += len(data)
        return data

    def blob_names(self) -> list:
        """All visible blob names, sorted (durable view plus cache)."""
        names = set(self._effective_blobs()) | set(self._blobs_volatile)
        return sorted(names)

    def delete_blob(self, name: str) -> None:
        """Remove a blob (retention pruning); metadata-only."""
        self._blobs_volatile.pop(name, None)
        self._blobs.pop(name, None)
        self._renames_volatile = [
            (src, dst) for src, dst in self._renames_volatile if dst != name
        ]

    def _effective_blobs(self) -> dict:
        """Durable blobs with pending renames applied (the live view)."""
        view = dict(self._blobs)
        for src, dst in self._renames_volatile:
            if src in view:
                view[dst] = view.pop(src)
        return view

    # ------------------------------------------------------------------
    # the barrier
    # ------------------------------------------------------------------

    def fsync(self) -> None:
        """Commit every cached write and rename; charge the barrier cost."""
        volume = sum(len(r) for r in self._log_volatile)
        volume += sum(len(b) for b in self._blobs_volatile.values())
        self._log.extend(self._log_volatile)
        self._log_volatile.clear()
        self._blobs.update(self._blobs_volatile)
        self._blobs_volatile.clear()
        for src, dst in self._renames_volatile:
            if src in self._blobs:
                self._blobs[dst] = self._blobs.pop(src)
        self._renames_volatile.clear()
        self.fsyncs += 1
        self.bytes_written += volume
        self.busy_time += self.fsync_latency + (
            volume / 1024.0
        ) * self.write_latency_per_kb

    @property
    def dirty(self) -> bool:
        """True when un-fsynced state would be lost by a crash."""
        return bool(
            self._log_volatile or self._blobs_volatile or self._renames_volatile
        )

    # ------------------------------------------------------------------
    # crash-time fault models
    # ------------------------------------------------------------------

    def crash(self, mode: str = "intact") -> None:
        """Power-cut the device, applying one of :data:`CRASH_MODES`."""
        if mode not in CRASH_MODES:
            raise ValueError(
                f"unknown crash mode {mode!r}; pick from {CRASH_MODES}"
            )
        self.crashes += 1
        if mode == "wiped":
            self._log.clear()
            self._log_volatile.clear()
            self._blobs.clear()
            self._blobs_volatile.clear()
            self._renames_volatile.clear()
            return
        in_flight = self._log_volatile[0] if self._log_volatile else None
        # The volatile cache never survives.
        self._log_volatile.clear()
        self._blobs_volatile.clear()
        self._renames_volatile.clear()
        if mode == "torn":
            if in_flight is not None and len(in_flight) > 1:
                # The in-flight append made it halfway to the platter.
                self._log.append(in_flight[: len(in_flight) // 2])
            elif self._log:
                last = self._log[-1]
                self._log[-1] = last[: max(1, len(last) // 2)]
        elif mode == "corrupt":
            if self._log:
                self._log[-1] = _flip_middle_bit(self._log[-1])
            elif self._blobs:
                newest = sorted(self._blobs)[-1]
                self._blobs[newest] = _flip_middle_bit(self._blobs[newest])

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def counters(self) -> dict:
        return {
            "fsyncs": self.fsyncs,
            "appends": self.appends,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "busy_time": self.busy_time,
            "crashes": self.crashes,
        }

    def __repr__(self) -> str:
        return (
            f"<SimDisk {self.name} log={len(self._log)}+{len(self._log_volatile)}v "
            f"blobs={len(self._blobs)} fsyncs={self.fsyncs}>"
        )


def _flip_middle_bit(data: bytes) -> bytes:
    """Flip one bit in the middle byte of ``data`` (deterministic)."""
    if not data:
        return data
    index = len(data) // 2
    mutated = bytearray(data)
    mutated[index] ^= 0x10
    return bytes(mutated)
