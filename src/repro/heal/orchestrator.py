"""The recovery orchestrator: detections in, safe recovery actions out.

:class:`RecoveryOrchestrator` closes the loop the IDS opened. It is
polled on the campaign's monitor grid (no events of its own while idle),
reads the detector's corroborated :class:`~repro.ids.detectors.Verdict`
stream plus a liveness probe over the replica group, consults the
response policy (:mod:`repro.heal.policy`) and the quorum guard, and
drives at most one recovery action at a time:

``restart``
    A replica whose process is dead while its machine answers the
    liveness probe is rebooted — from its durable disk when the
    deployment has one, as a pristine state-transferring instance
    otherwise. (A *crashed machine* fails the probe and is left alone:
    rebooting hardware is the infrastructure's job, not ours.)
``rejuvenate``
    Proactive recovery of the suspect in place (see
    :func:`repro.core.recovery.rejuvenate_replica`).
``evict``
    Join a fresh spare replica through a signed consensus
    reconfiguration, wait for its state transfer to complete, then leave
    the suspect — and force-halt it, since a Byzantine instance cannot
    be trusted to honour its own removal.
``alarm``
    Raise an operator alarm and stop acting on that entity.

Every decision is recorded as a :class:`HealAction` (including refused
ones, with ``outcome="blocked"``), so a campaign's action log is a
complete audit trail. The orchestrator adds no randomness: the same
seed and schedule produce the identical log on both simulation kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.config import replica_address
from repro.bftsmart.reconfiguration import Administrator
from repro.bftsmart.view import View
from repro.core.proxy_master import ProxyMaster
from repro.core.recovery import rejuvenate_replica, restart_replica
from repro.heal.policy import HealConfig, quorum_blockers, transfer_blockers

_NEVER = -1.0e9


@dataclass
class HealAction:
    """One orchestrator decision, attempted or refused."""

    time: float
    #: ``restart`` / ``rejuvenate`` / ``evict`` / ``alarm``.
    kind: str
    #: The entity acted on (replica address, client id, or ``ingress``).
    target: str
    #: ``uid`` of the triggering detection (``"probe"`` for restarts).
    trigger: str
    #: Detection kind (``"crash"`` for restarts).
    trigger_kind: str
    #: ``started`` -> ``completed`` / ``blocked`` / ``raised`` /
    #: ``join-rejected`` / ``join-timed-out`` / ``leave-rejected`` /
    #: ``leave-timed-out`` / ``transfer-timed-out`` / ``failed``.
    outcome: str = "started"
    detail: str = ""
    completed_at: float | None = None

    def as_dict(self) -> dict:
        return {
            "time": round(self.time, 6),
            "kind": self.kind,
            "target": self.target,
            "trigger": self.trigger,
            "trigger_kind": self.trigger_kind,
            "outcome": self.outcome,
            "detail": self.detail,
            "completed_at": (
                round(self.completed_at, 6)
                if self.completed_at is not None
                else None
            ),
        }


class RecoveryOrchestrator:
    """Drives automated recovery from IDS verdicts and liveness probes.

    Parameters
    ----------
    sim, net, system:
        The running deployment (a :class:`repro.core.system.SmartScadaSystem`).
    detector:
        The :class:`repro.ids.IntrusionDetector` whose ``verdicts()``
        feed the policy engine, or ``None`` for a probe-only
        orchestrator (restarts still work; nothing else triggers).
    config:
        A :class:`repro.heal.policy.HealConfig`.
    handler_config:
        ``fn(proxy_master)`` re-applying deployment configuration to
        replicas the orchestrator boots (spares, restarts).
    on_evict:
        ``fn(index, address)`` called after a successful eviction — the
        chaos campaign uses it to mark the index retired so fault
        reverts stop resurrecting it.
    """

    def __init__(
        self,
        sim,
        net,
        system,
        detector=None,
        config: HealConfig | None = None,
        handler_config=None,
        on_evict=None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.system = system
        self.detector = detector
        self.config = config if config is not None else HealConfig()
        self.handler_config = handler_config
        self.on_evict = on_evict
        group = system.config.group_config()
        proxy = ServiceProxy(
            sim=sim,
            net=net,
            client_id="heal-admin",
            keystore=system.keystore,
            view=View(0, group.addresses, group.f),
            invoke_timeout=system.config.invoke_timeout,
        )
        proxy.max_attempts = self.config.admin_max_attempts
        self.admin = Administrator(proxy, system.keystore)
        #: Complete audit trail of decisions (:class:`HealAction`).
        self.actions: list = []
        #: Addresses removed from the membership by this orchestrator.
        self.evicted: set = set()
        self.evictions = 0
        self.rejuvenations = 0
        self.restarts = 0
        self.alarms = 0
        self.blocked = 0
        self.polls = 0
        #: One action in flight at a time: recovery actions perturb the
        #: very signals that trigger them, so they are strictly serial.
        self.busy = False
        #: entity -> {"rung", "cooldown_until", "blocked_streak", "done"}.
        self._targets: dict[str, dict] = {}
        #: Consecutive guard-refused attempts across *all* targets since
        #: the last completed action. When a systemic condition (total
        #: consensus stall) spreads verdicts over every replica, each
        #: per-entity streak stays at 1 — this counter still sees that
        #: automation is out of moves.
        self._blocked_run = 0
        self._group_alarmed = False
        #: replica address -> instant its process was first seen dead
        #: while the machine stayed reachable.
        self._down_since: dict[str, float] = {}
        self._spare_base = max(pm.index for pm in system.proxy_masters) + 1
        self._spares_used = 0
        sim.register_stats_source("heal", self._stats)

    # -- reads -----------------------------------------------------------

    def _stats(self) -> dict:
        return {
            "polls": self.polls,
            "actions": len(self.actions),
            "evictions": self.evictions,
            "rejuvenations": self.rejuvenations,
            "restarts": self.restarts,
            "alarms": self.alarms,
            "blocked": self.blocked,
        }

    def action_log(self) -> list:
        """The decisions as plain dicts (report/CLI serialization)."""
        return [action.as_dict() for action in self.actions]

    # -- the poll --------------------------------------------------------

    def poll(self) -> None:
        """One decision step; called on the campaign's monitor grid."""
        self.polls += 1
        self._probe_crashed()
        if self.busy:
            return
        if self._maybe_restart():
            return
        if self.detector is None:
            return
        cfg = self.config
        for verdict in self.detector.verdicts(
            min_streak=cfg.corroboration_polls
        ):
            if verdict.peak_score < cfg.min_score:
                continue
            if self._consider(verdict):
                return

    def _consider(self, verdict) -> bool:
        """Try to act on one corroborated verdict; True when something ran."""
        cfg = self.config
        now = self.sim.now
        ladder = cfg.rungs_for(verdict.kind)
        if not ladder:
            return False
        entity = verdict.entity
        if entity in self.evicted:
            return False
        st = self._state(entity)
        if st["done"] or now < st["cooldown_until"]:
            return False
        rung = ladder[min(st["rung"], len(ladder) - 1)]
        target_pm = self._member(entity)
        if rung in ("rejuvenate", "evict") and target_pm is None:
            # The suspect is not a current group member (already removed,
            # or a client-side entity): nothing left to act on but alert.
            rung = "alarm"
        if rung == "alarm":
            self._raise_alarm(
                entity,
                verdict.detection.uid,
                verdict.kind,
                detail=verdict.detection.evidence,
            )
            st["done"] = True
            return True
        blockers = quorum_blockers(
            self.system, self.admin.proxy.view, taking_down=entity
        )
        if blockers:
            self._record_blocked(st, rung, verdict, blockers)
            return True
        action = HealAction(
            time=now,
            kind=rung,
            target=entity,
            trigger=verdict.detection.uid,
            trigger_kind=verdict.kind,
        )
        self.actions.append(action)
        flow = (
            self._evict_flow(action, target_pm)
            if rung == "evict"
            else self._rejuvenate_flow(action, target_pm)
        )
        self._launch(flow, action, st)
        return True

    def _record_blocked(self, st, rung, verdict, blockers) -> None:
        cfg = self.config
        now = self.sim.now
        self.blocked += 1
        st["blocked_streak"] += 1
        st["cooldown_until"] = now + cfg.blocked_retry
        self.actions.append(
            HealAction(
                time=now,
                kind=rung,
                target=verdict.entity,
                trigger=verdict.detection.uid,
                trigger_kind=verdict.kind,
                outcome="blocked",
                detail="; ".join(blockers),
            )
        )
        self._point("heal.blocked", verdict.entity, rung=rung)
        self._blocked_run += 1
        if st["blocked_streak"] >= cfg.blocked_alarm_after:
            # The condition persists but every safe action is refused:
            # automation is out of moves, tell the operators.
            self._raise_alarm(
                verdict.entity,
                verdict.detection.uid,
                verdict.kind,
                detail=f"quorum guard refused {st['blocked_streak']} "
                f"consecutive {rung} attempts: {'; '.join(blockers)}",
            )
            st["done"] = True
        elif (
            self._blocked_run >= cfg.blocked_alarm_after
            and not self._group_alarmed
        ):
            # A systemic condition (e.g. a total consensus stall) spreads
            # verdicts across targets, so no single entity's streak grows
            # — but the guard keeps refusing everything. Raise one
            # group-level alarm; it rearms after the next completed action.
            self._group_alarmed = True
            self._raise_alarm(
                "group",
                verdict.detection.uid,
                verdict.kind,
                detail=f"quorum guard refused {self._blocked_run} "
                f"consecutive recovery attempts across the group; "
                f"latest: {'; '.join(blockers)}",
            )

    def _raise_alarm(self, entity, trigger, trigger_kind, detail="") -> None:
        action = HealAction(
            time=self.sim.now,
            kind="alarm",
            target=entity,
            trigger=trigger,
            trigger_kind=trigger_kind,
            outcome="raised",
            detail=detail,
            completed_at=self.sim.now,
        )
        self.actions.append(action)
        self.alarms += 1
        self._point("heal.alarm", entity, trigger_kind=trigger_kind)

    # -- crash healing (liveness probe) ----------------------------------

    def _probe_crashed(self) -> None:
        now = self.sim.now
        for pm in self.system.proxy_masters:
            if pm.address in self.evicted:
                continue
            if not pm.replica.active and not self.net.endpoint(pm.address).down:
                self._down_since.setdefault(pm.address, now)
            else:
                self._down_since.pop(pm.address, None)

    def _maybe_restart(self) -> bool:
        cfg = self.config
        now = self.sim.now
        for address in sorted(self._down_since):
            if now - self._down_since[address] < cfg.restart_down_after:
                continue
            pm = self._member(address)
            if pm is None:
                continue
            blockers = transfer_blockers(self.system, self.admin.proxy.view)
            if blockers:
                # Restarting helps the quorum, so only transfer overlap
                # blocks it — and silently: the probe retries next poll.
                return False
            action = HealAction(
                time=now,
                kind="restart",
                target=address,
                trigger="probe",
                trigger_kind="crash",
            )
            self.actions.append(action)
            self._launch(self._restart_flow(action, pm), action, None)
            return True
        return False

    # -- action flows (simulation processes) -----------------------------

    def _launch(self, flow, action: HealAction, st: dict | None) -> None:
        cfg = self.config
        sim = self.sim
        self.busy = True
        span = self._begin_span(f"heal.{action.kind}", action)

        def run():
            yield from flow
            if action.completed_at is None:
                action.completed_at = sim.now
            self._end_span(span, outcome=action.outcome)
            self.busy = False
            if action.outcome == "completed":
                self._blocked_run = 0
                self._group_alarmed = False
            if st is not None:
                st["cooldown_until"] = sim.now + cfg.cooldown
                if action.outcome == "completed":
                    st["rung"] += 1
                    st["blocked_streak"] = 0

        sim.process(run(), name=f"heal-{action.kind}-{action.target}")

    def _rejuvenate_flow(self, action: HealAction, pm):
        cfg = self.config
        replacement = rejuvenate_replica(
            self.system, pm.index, handler_config=self.handler_config
        )
        self.rejuvenations += 1
        caught_up = yield from self._wait_caught_up(
            replacement, cfg.transfer_deadline
        )
        if caught_up:
            action.outcome = "completed"
            action.detail = "suspect reimaged and caught up"
        else:
            action.outcome = "transfer-timed-out"
            action.detail = "reimaged replica did not catch up in time"

    def _restart_flow(self, action: HealAction, pm):
        cfg = self.config
        storage = (
            self.system.durable_storage.get(pm.index)
            if self.system.durable_storage is not None
            else None
        )
        if storage is not None:
            replacement = restart_replica(
                self.system,
                pm.index,
                disk_fault=None,
                handler_config=self.handler_config,
            )
            action.detail = "rebooted from durable disk"
        else:
            replacement = rejuvenate_replica(
                self.system, pm.index, handler_config=self.handler_config
            )
            action.detail = "no durable disk; booted a pristine instance"
        self.restarts += 1
        caught_up = yield from self._wait_caught_up(
            replacement, cfg.transfer_deadline
        )
        action.outcome = "completed" if caught_up else "transfer-timed-out"

    def _evict_flow(self, action: HealAction, suspect_pm):
        cfg = self.config
        sim = self.sim
        suspect = suspect_pm.address
        if self._spares_used >= cfg.max_spares:
            action.outcome = "failed"
            action.detail = f"spare budget ({cfg.max_spares}) exhausted"
            return
        spare_pm = self._provision_spare(self._spare_base + self._spares_used)
        self._spares_used += 1
        # Phase 1 — join the spare, so the membership never shrinks first.
        result = yield from self._await(
            self.admin.reconfigure_checked(
                join=(spare_pm.address,),
                timeout=cfg.action_timeout,
                attempts=cfg.reconfig_attempts,
                backoff=cfg.reconfig_backoff,
            )
        )
        if not result.applied:
            action.outcome = f"join-{result.status}"
            action.detail = result.detail
            return
        self.system.update_views(result.view)
        # Phase 2 — wait for the joiner to state-transfer the full state.
        spare_pm.replica.state_transfer.bootstrap()
        caught_up = yield from self._wait_caught_up(
            spare_pm, cfg.transfer_deadline
        )
        if not caught_up:
            action.outcome = "transfer-timed-out"
            action.detail = (
                f"joined {spare_pm.address} but it did not catch up in time; "
                f"suspect left in place"
            )
            return
        # Phase 3 — re-check the guard (the world moved during the
        # transfer), then leave the suspect.
        blockers = quorum_blockers(
            self.system, self.admin.proxy.view, taking_down=suspect
        )
        if blockers:
            action.outcome = "blocked"
            action.detail = "; ".join(blockers)
            self.blocked += 1
            return
        result = yield from self._await(
            self.admin.reconfigure_checked(
                leave=(suspect,),
                timeout=cfg.action_timeout,
                attempts=cfg.reconfig_attempts,
                backoff=cfg.reconfig_backoff,
            )
        )
        if not result.applied:
            action.outcome = f"leave-{result.status}"
            action.detail = result.detail
            return
        self.system.update_views(result.view)
        # A Byzantine instance cannot be trusted to honour its removal —
        # honest replicas already ignore it, but halting it stops the
        # noise and releases its machine.
        suspect_pm.replica.halt()
        self.evicted.add(suspect)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(suspect_pm.index, suspect)
        action.outcome = "completed"
        action.detail = (
            f"replaced by {spare_pm.address} "
            f"(view {result.view_id}, t={sim.now:.3f})"
        )

    def _provision_spare(self, index: int) -> ProxyMaster:
        """Boot a fresh replica at the next spare address.

        The spare anticipates the post-join view (the admin is the only
        view-changing principal here, so the id is exact) and starts
        listening before the reconfiguration decides — the moment the
        members install the new view, the joiner is already there.
        """
        system = self.system
        view = self.admin.proxy.view
        address = replica_address(index)
        anticipated = View(
            view.view_id + 1, view.addresses + (address,), view.f
        )
        storage = None
        if system.durable_storage is not None:
            from repro.storage import ReplicaStorage

            storage = ReplicaStorage(
                address,
                fsync_policy=system.config.fsync_policy,
                fsync_interval=system.config.fsync_interval,
                checkpoint_retention=system.config.checkpoint_retention,
            )
            system.durable_storage[index] = storage
        pm = ProxyMaster(
            self.sim,
            self.net,
            index,
            system.config,
            system.keystore,
            view=anticipated,
            storage=storage,
        )
        if self.handler_config is not None:
            self.handler_config(pm)
        system.proxy_masters.append(pm)
        return pm

    # -- helpers ---------------------------------------------------------

    def _state(self, entity: str) -> dict:
        return self._targets.setdefault(
            entity,
            {
                "rung": 0,
                "cooldown_until": _NEVER,
                "blocked_streak": 0,
                "done": False,
            },
        )

    def _member(self, address: str):
        for pm in self.system.proxy_masters:
            if pm.address == address and pm.address not in self.evicted:
                return pm
        return None

    def _await(self, event):
        """Wait for ``event`` from inside a flow generator; returns its value."""
        box: list = []
        event.add_callback(lambda ev: box.append(ev))
        while not box:
            yield self.sim.timeout(self.config.grid)
        return box[0].value

    def _wait_caught_up(self, pm, deadline: float):
        """Poll until ``pm`` finished its transfer and reached the frontier."""
        sim = self.sim
        limit = sim.now + deadline
        while sim.now < limit:
            peers = [
                other.replica.last_decided
                for other in self.system.proxy_masters
                if other is not pm
                and other.replica.active
                and other.address not in self.evicted
            ]
            if (
                peers
                and not pm.replica.state_transfer.in_progress
                and pm.replica.last_decided >= max(peers) - 1
            ):
                return True
            yield sim.timeout(self.config.grid)
        return False

    def _begin_span(self, name: str, action: HealAction):
        tracer = self.sim.tracer
        if tracer is None:
            return None
        return tracer.begin(
            name,
            f"heal-{len(self.actions)}",
            process="heal",
            target=action.target,
            trigger=action.trigger,
            trigger_kind=action.trigger_kind,
        )

    def _end_span(self, span, **attrs) -> None:
        if span is not None:
            self.sim.tracer.end(span, **attrs)

    def _point(self, name: str, target: str, **attrs) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.point(
                name,
                f"heal-{len(self.actions)}",
                process="heal",
                target=target,
                **attrs,
            )
