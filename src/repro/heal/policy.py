"""Response policy for the closed-loop self-healing layer.

The policy engine decides *what* the orchestrator may do about a
corroborated IDS verdict, and the quorum guard decides *whether it is
safe to do it now*. Both are deliberately small and pure — every
decision is a function of the verdict stream and the group's observable
state, so the same seed always produces the identical action log.

Escalation ladders
------------------

Each detection kind maps to a ladder of rungs tried in order, one rung
per corroborated recurrence of the symptom (with a per-target cooldown
between actions):

``rejuvenate``
    Wipe the suspect to a pristine image in place (proactive recovery).
    Proportionate for symptoms a wedged-but-honest process could also
    produce (protocol silence, reply starvation); genuinely cures them.
``evict``
    Join a spare replica, wait for its state transfer to complete, then
    leave the suspect through a signed consensus reconfiguration — the
    definitive response to a compromised machine.
``alarm``
    Raise an operator alarm and stop acting. Terminal rung for symptoms
    automation cannot fix (client-side command injection, ingress
    spoofing) and the final escalation when safe actions ran out.

The default profile enters at ``rejuvenate`` for the crash-ambiguous
behaviours and at ``evict`` for actively-lying ones (divergent replies,
forged pushes, equivocation are cryptographically corroborated malice —
there is no trust to rebuild by reimaging). :meth:`HealConfig.zero_trust`
is the hardened operational profile used by the recovery-under-attack
drills: every confirmed Byzantine behaviour goes straight to eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The five replica behaviours the IDS attributes to a specific machine.
BYZANTINE_KINDS = (
    "byzantine-silent",
    "byzantine-stuttering",
    "byzantine-lying",
    "byzantine-falsifying",
    "byzantine-equivocating",
)

#: Default kind -> escalation ladder table (see module docstring).
DEFAULT_POLICY = (
    ("byzantine-silent", ("rejuvenate", "evict", "alarm")),
    ("byzantine-stuttering", ("rejuvenate", "evict", "alarm")),
    ("byzantine-lying", ("evict", "alarm")),
    ("byzantine-falsifying", ("evict", "alarm")),
    ("byzantine-equivocating", ("evict", "alarm")),
    ("write-burst", ("alarm",)),
    ("spoofed-frontend", ("alarm",)),
)

#: The hardened table: confirmed Byzantine replicas are evicted directly.
ZERO_TRUST_POLICY = tuple(
    (kind, ("evict", "alarm") if kind in BYZANTINE_KINDS else ladder)
    for kind, ladder in DEFAULT_POLICY
)


@dataclass(frozen=True)
class HealConfig:
    """Tunables for the recovery orchestrator (times in simulated seconds)."""

    #: Consecutive detector polls a verdict must stay asserted before the
    #: orchestrator acts — a single low-confidence detection never
    #: triggers anything, so IDS false positives cannot be weaponized
    #: into self-inflicted denial of service.
    corroboration_polls: int = 3
    #: Minimum peak risk score a verdict must have reached while asserted.
    min_score: float = 1.0
    #: Per-target hysteresis: minimum gap between two actions on the same
    #: entity (lets the previous action take effect before escalating).
    cooldown: float = 1.5
    #: Retry gap after the quorum guard blocks an action.
    blocked_retry: float = 0.5
    #: Guard-blocked attempts on one target before escalating to an alarm.
    blocked_alarm_after: int = 5
    #: Deadline for one reconfiguration attempt (Administrator checked path).
    action_timeout: float = 2.0
    #: Reconfiguration attempts and backoff multiplier.
    reconfig_attempts: int = 3
    reconfig_backoff: float = 2.0
    #: How long to wait for a joiner / restarted replica to catch up.
    transfer_deadline: float = 4.0
    #: Orchestrator action processes poll on this grid.
    grid: float = 0.1
    #: Fresh replica addresses available for evict-and-replace.
    max_spares: int = 2
    #: A replica whose process is dead while its machine answers the
    #: liveness probe is restarted from disk after staying down this long.
    restart_down_after: float = 1.0
    #: Retransmission budget for the orchestrator's admin client.
    admin_max_attempts: int = 200
    #: kind -> escalation ladder, as a tuple of pairs (constructor-valid
    #: repr: campaign replay snippets embed this config).
    policy: tuple = field(default=DEFAULT_POLICY)

    def rungs_for(self, kind: str) -> tuple:
        for entry_kind, ladder in self.policy:
            if entry_kind == kind:
                return ladder
        return ()

    @classmethod
    def zero_trust(cls, **overrides) -> "HealConfig":
        """The hardened profile: confirmed Byzantine replicas are evicted."""
        overrides.setdefault("policy", ZERO_TRUST_POLICY)
        return cls(**overrides)


def transfer_blockers(system, view, taking_down: str | None = None) -> list:
    """In-flight state transfers that forbid starting any action now.

    Two concurrent catch-ups can starve each other's senders, and a
    replica mid-transfer counts as neither up nor down — every
    orchestrator action (including a plain restart) waits for the group
    to be transfer-idle first. A transfer on ``taking_down`` itself is
    exempt: wiping or evicting that replica *resolves* its transfer (a
    Byzantine instance may well sit in a transfer it never finishes —
    that must not grant it immunity).
    """
    return [
        f"state transfer in flight on {pm.address}"
        for pm in system.proxy_masters
        if pm.address in view.addresses
        and pm.address != taking_down
        and pm.replica.active
        and pm.replica.state_transfer.in_progress
    ]


def quorum_blockers(system, view, taking_down: str | None = None) -> list:
    """Why acting now is unsafe; an empty list means the action may proceed.

    The hard guard the orchestrator consults before any action that
    takes a replica out — rejuvenation wipes it in place, eviction
    removes it from the membership:

    - no action may overlap an in-flight state transfer anywhere in the
      group (:func:`transfer_blockers`);
    - removing ``taking_down`` must leave at least ``2f+1`` live
      replicas, the quorum every consensus and reconfiguration decision
      needs.
    """
    reasons = transfer_blockers(system, view, taking_down=taking_down)
    live = [
        pm.address
        for pm in system.proxy_masters
        if pm.address in view.addresses
        and pm.replica.active
        and not system.net.endpoint(pm.address).down
    ]
    need = 2 * view.f + 1
    remaining = [a for a in live if a != taking_down]
    if len(remaining) < need:
        reasons.append(
            f"only {len(remaining)} live replicas would remain "
            f"(quorum needs {need} = 2f+1)"
        )
    return reasons
