"""Closed-loop self-healing: IDS detections drive safe recovery actions.

``repro.heal`` sits between the passive intrusion detector
(:mod:`repro.ids`) and the active recovery machinery
(:mod:`repro.core.recovery`, :mod:`repro.bftsmart.reconfiguration`):

- :mod:`repro.heal.policy` — the response policy: per-detection-kind
  escalation ladders (rejuvenate -> evict -> alarm), corroboration
  thresholds, and the hard quorum guard that refuses any action that
  would drop the live replica count below ``2f+1`` or overlap an
  in-flight state transfer;
- :mod:`repro.heal.orchestrator` — the
  :class:`~repro.heal.orchestrator.RecoveryOrchestrator` that polls the
  detector's corroborated verdicts plus a liveness probe and executes
  one action at a time: restart crashed-but-reachable replicas from
  disk, rejuvenate suspects in place, evict-and-replace confirmed
  Byzantine replicas via consensus reconfiguration, or raise an
  operator alarm when automation is out of safe moves.

The loop realizes the intrusion-tolerance operations story the paper's
architecture implies: detection without response leaves ``f`` eroding
over time; response without corroboration and a quorum guard lets the
detector be weaponized into self-inflicted denial of service.
"""

from repro.heal.orchestrator import HealAction, RecoveryOrchestrator
from repro.heal.policy import (
    BYZANTINE_KINDS,
    DEFAULT_POLICY,
    ZERO_TRUST_POLICY,
    HealConfig,
    quorum_blockers,
    transfer_blockers,
)

__all__ = [
    "BYZANTINE_KINDS",
    "DEFAULT_POLICY",
    "HealAction",
    "HealConfig",
    "RecoveryOrchestrator",
    "ZERO_TRUST_POLICY",
    "quorum_blockers",
    "transfer_blockers",
]
