"""The fleet health scoreboard: one pane over a sharded deployment.

:class:`FleetScoreboard` folds what the stack already measures — the
:class:`~repro.obs.metrics.MetricsRegistry` snapshot, replica liveness
and leader state, the global AE merger's holdback buffer, the shard
router cache, IDS verdicts and heal actions — into per-shard
:class:`ShardHealth` plus a fleet-level status, and feeds each
:class:`FleetSample` to an attached :class:`~repro.obs.slo.SloEngine`.

The scoreboard is strictly **passive**: :meth:`FleetScoreboard.sample`
reads live objects and registry values but never schedules an event,
sends a message, or mutates component state — so campaign fingerprints
and decided streams are bit-identical with the scoreboard on or off
(``tests/test_fleet_determinism.py``). Liveness is judged from both
sides of a replica: ``replica.active`` (process-level crashes,
rejuvenation gaps) *and* the network endpoint's ``down`` flag (chaos
``net.crash`` kills a machine without telling the replica object).

It works over both deployment shapes: a
:class:`~repro.shard.deployment.ShardedScadaSystem` (per-shard rows) or
a classic :class:`~repro.core.system.SmartScadaSystem` (one row,
shard 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field


_STATUS_RANK = {"ok": 0, "degraded": 1, "critical": 2}


def _worse(a: str, b: str) -> str:
    return a if _STATUS_RANK[a] >= _STATUS_RANK[b] else b


@dataclass
class ShardHealth:
    """One BFT group's health at a sampling instant."""

    shard: int
    #: Expected membership / fault budget of the group.
    n: int
    f: int
    #: Replicas the protocol needs answering: 2f+1.
    quorum: int
    #: Members currently active *and* network-reachable.
    live: int
    #: Replica address the group's live members follow ("" = unknown).
    leader: str
    #: Cumulative leader changes observed since sampling began.
    leader_changes: int
    #: Sum of decided / executed consensus instances across the group.
    decided: int
    executed: int
    #: Deepest configured pipeline and mean occupancy across members.
    pipeline_depth: int
    pipeline_occupancy: float
    #: ``ok`` | ``degraded`` | ``critical`` with human-readable reasons.
    status: str = "ok"
    reasons: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "n": self.n,
            "f": self.f,
            "quorum": self.quorum,
            "live": self.live,
            "leader": self.leader,
            "leader_changes": self.leader_changes,
            "decided": self.decided,
            "executed": self.executed,
            "pipeline_depth": self.pipeline_depth,
            "pipeline_occupancy": round(self.pipeline_occupancy, 4),
            "status": self.status,
            "reasons": list(self.reasons),
        }


@dataclass
class FleetSample:
    """One scoreboard reading (everything the SLO engine evaluates)."""

    time: float
    shards: list
    #: Fleet-level verdict: worst shard status, lifted to at least
    #: ``degraded`` while any SLO budget is burning.
    status: str = "ok"
    #: ``hmi.write.latency`` summary (None before the first write).
    write_latency: dict | None = None
    #: Cumulative bucket counts for the latency SLO's delta windows.
    write_latency_buckets: dict = field(default_factory=dict)
    #: Age of the oldest AE event still held back by the merger.
    freshness_age: float = 0.0
    #: Global AE merger counters + current buffer depth.
    holdback: dict = field(default_factory=dict)
    #: Shard router cache counters + hit rate.
    router: dict = field(default_factory=dict)
    #: Cumulative IDS detections and heal actions visible so far.
    detections: int = 0
    heal_actions: int = 0
    #: Current burn rate per SLO key (filled when an engine is attached).
    burn: dict = field(default_factory=dict)
    #: Cumulative SLO violations after evaluating this sample.
    violations: int = 0
    #: Violations that fired *on* this sample.
    new_violations: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "time": round(self.time, 6),
            "status": self.status,
            "shards": [health.as_dict() for health in self.shards],
            "write_latency": self.write_latency,
            "freshness_age": round(self.freshness_age, 6),
            "holdback": dict(self.holdback),
            "router": dict(self.router),
            "detections": self.detections,
            "heal_actions": self.heal_actions,
            "burn": {k: round(v, 4) for k, v in self.burn.items()},
            "violations": self.violations,
            "new_violations": [v.as_dict() for v in self.new_violations],
        }


class FleetScoreboard:
    """Folds a deployment's signals into per-shard + fleet health."""

    def __init__(
        self,
        system,
        slo_engine=None,
        detector=None,
        orchestrator=None,
    ) -> None:
        self.system = system
        self.slo_engine = slo_engine
        self.detector = detector
        self.orchestrator = orchestrator
        #: Every sample taken, in order.
        self.samples: list = []
        #: Status flips: {"time", "scope", "from", "to"} dicts, where
        #: scope is ``"fleet"`` or ``"s<k>"``.
        self.transitions: list = []
        self._last_status: dict = {}
        self._last_leader: dict = {}
        self._leader_changes: dict = {}

    # -- topology helpers ------------------------------------------------

    @property
    def shards(self) -> int:
        return getattr(self.system, "shards", 1)

    def _base_config(self):
        return getattr(self.system.config, "base", self.system.config)

    def _group(self, shard: int) -> list:
        if hasattr(self.system, "group"):
            return self.system.group(shard)
        return [
            pm
            for pm in self.system.proxy_masters
            if getattr(pm, "shard", 0) == shard
        ]

    def _is_live(self, pm) -> bool:
        if not pm.replica.active:
            return False
        net = self.system.net
        # chaos `net.crash` downs the endpoint without touching the
        # replica object — a killed machine must not count as live.
        if net.has_endpoint(pm.address) and net.endpoint(pm.address).down:
            return False
        return True

    # -- sampling --------------------------------------------------------

    def _shard_health(self, shard: int) -> ShardHealth:
        base = self._base_config()
        metrics = self.system.sim.metrics
        members = self._group(shard)
        live_members = [pm for pm in members if self._is_live(pm)]

        leader = ""
        for pm in live_members:
            candidate = getattr(pm.replica, "leader", "")
            if candidate:
                leader = candidate
                break
        last = self._last_leader.get(shard)
        if leader and last is not None and leader != last:
            self._leader_changes[shard] = self._leader_changes.get(shard, 0) + 1
        if leader:
            self._last_leader[shard] = leader

        decided = executed = 0
        depth = 0
        occupancies = []
        for pm in members:
            service = metrics.read(f"replica.{pm.address}") or {}
            decided += service.get("decided", 0)
            executed += service.get("executed", 0)
            pipeline = metrics.read(f"pipeline.{pm.address}") or {}
            depth = max(depth, pipeline.get("depth", 0))
            if "occupancy_mean" in pipeline:
                occupancies.append(pipeline["occupancy_mean"])

        quorum = 2 * base.f + 1
        health = ShardHealth(
            shard=shard,
            n=base.n,
            f=base.f,
            quorum=quorum,
            live=len(live_members),
            leader=leader,
            leader_changes=self._leader_changes.get(shard, 0),
            decided=decided,
            executed=executed,
            pipeline_depth=depth,
            pipeline_occupancy=(
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            ),
        )

        if health.live < quorum:
            health.status = "critical"
            health.reasons.append(
                f"live {health.live} below quorum {quorum}"
            )
        elif health.live < base.n:
            health.status = "degraded"
            health.reasons.append(f"live {health.live} of {base.n} members")
        if leader:
            leader_pm = next(
                (pm for pm in members if pm.address == leader), None
            )
            if leader_pm is not None and not self._is_live(leader_pm):
                health.status = _worse(health.status, "degraded")
                health.reasons.append(f"leader {leader} unreachable")
        elif members:
            health.status = _worse(health.status, "degraded")
            health.reasons.append("no leader visible")
        return health

    def _merger_view(self, now: float) -> tuple:
        merger = getattr(self.system.proxy_hmi, "merger", None)
        if merger is None:
            return 0.0, {}
        stats = dict(merger.stats)
        stats["pending"] = merger.pending
        return merger.oldest_pending_age(now), stats

    def _router_view(self) -> dict:
        router = getattr(self.system.proxy_hmi, "router", None)
        if router is None:
            return {}
        stats = dict(router.stats)
        lookups = stats.get("hits", 0) + stats.get("misses", 0)
        stats["hit_rate"] = (
            round(stats.get("hits", 0) / lookups, 4) if lookups else 1.0
        )
        return stats

    def sample(self) -> FleetSample:
        """Take one passive reading (and run the SLO engine over it)."""
        sim = self.system.sim
        now = sim.now
        shard_healths = [self._shard_health(k) for k in range(self.shards)]

        latency = sim.metrics.read("hmi.write.latency")
        freshness_age, holdback = self._merger_view(now)
        sample = FleetSample(
            time=now,
            shards=shard_healths,
            write_latency=latency,
            write_latency_buckets=(latency or {}).get("buckets", {}),
            freshness_age=freshness_age,
            holdback=holdback,
            router=self._router_view(),
            detections=(
                len(self.detector.detections) if self.detector else 0
            ),
            heal_actions=(
                len(self.orchestrator.actions) if self.orchestrator else 0
            ),
        )

        status = "ok"
        for health in shard_healths:
            status = _worse(status, health.status)
        if self.slo_engine is not None:
            sample.new_violations = self.slo_engine.evaluate(sample)
            sample.violations = len(self.slo_engine.violations)
            sample.burn = dict(self.slo_engine.summary()["burn"])
            if self.slo_engine.burning():
                status = _worse(status, "degraded")
        sample.status = status

        self._record_transition("fleet", status, now)
        for health in shard_healths:
            self._record_transition(f"s{health.shard}", health.status, now)
        self.samples.append(sample)
        return sample

    def _record_transition(self, scope: str, status: str, now: float) -> None:
        last = self._last_status.get(scope)
        if last is not None and last != status:
            self.transitions.append(
                {"time": round(now, 6), "scope": scope,
                 "from": last, "to": status}
            )
        self._last_status[scope] = status

    # -- reading ---------------------------------------------------------

    @property
    def latest(self) -> FleetSample | None:
        return self.samples[-1] if self.samples else None

    def statuses(self) -> list:
        """The fleet-status series: (time, status) per sample."""
        return [(s.time, s.status) for s in self.samples]

    def to_dict(self) -> dict:
        """JSON-safe dump: latest sample, transitions, SLO summary."""
        latest = self.latest
        return {
            "shards": self.shards,
            "samples": len(self.samples),
            "status": latest.status if latest else "unknown",
            "latest": latest.as_dict() if latest else None,
            "transitions": list(self.transitions),
            "slo": (
                self.slo_engine.summary()
                if self.slo_engine is not None
                else None
            ),
        }
