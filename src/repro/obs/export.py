"""Trace exporters: Chrome trace-event JSON, JSONL spans, request autopsy.

``chrome_trace`` produces the Trace Event Format dict that Perfetto /
``chrome://tracing`` load directly — one track per process (replica,
proxy, client, HMI), spans as complete ("X") events in microseconds.
``autopsy`` turns one request's span tree into the phase-by-phase latency
breakdown the paper argues with step diagrams (Figures 6/7): consecutive
phase boundaries partition the end-to-end interval, so the phase
durations sum to the request latency *exactly*.
"""

from __future__ import annotations

import json

from repro.obs.trace import Span, SpanTracer

#: Simulated seconds -> trace-event microseconds.
_US = 1_000_000.0


def chrome_trace(spans, clock: float | None = None) -> dict:
    """Spans as a Chrome trace-event JSON object.

    ``clock`` closes still-open spans for display (defaults to the latest
    timestamp seen). Pass ``tracer.spans`` or any span list.
    """
    spans = list(spans)
    latest = 0.0
    for span in spans:
        latest = max(latest, span.start, span.end or 0.0)
    if clock is None:
        clock = latest
    processes = sorted({span.process for span in spans})
    pids = {process: index + 1 for index, process in enumerate(processes)}
    events = []
    for process, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process or "unknown"},
            }
        )
    for span in spans:
        end = span.end if span.end is not None else clock
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent": span.parent_id,
        }
        args.update(span.attrs)
        if span.end is None:
            args["open"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.trace_id,
                "ph": "X",
                "ts": span.start * _US,
                "dur": max(end - span.start, 0.0) * _US,
                "pid": pids[span.process],
                "tid": 0,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data) -> list:
    """Shape-check a Chrome trace-event object; returns a list of errors."""
    errors = []
    if not isinstance(data, dict):
        return ["top level is not an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    try:
        json.dumps(data)
    except (TypeError, ValueError) as exc:
        errors.append(f"not JSON-serializable: {exc}")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "C"):
            errors.append(f"event {index}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("pid"), int):
            errors.append(f"event {index}: pid missing or not an int")
        if phase == "X":
            for key in ("name", "ts", "dur"):
                if key not in event:
                    errors.append(f"event {index}: X event missing {key!r}")
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"event {index}: ts is not a number")
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"event {index}: dur is not a number")
            elif event["dur"] < 0:
                errors.append(f"event {index}: negative dur")
        elif phase == "M" and event.get("name") != "process_name":
            errors.append(f"event {index}: unexpected metadata {event.get('name')!r}")
    return errors


def write_chrome_trace(path: str, spans, clock: float | None = None) -> dict:
    """Write the Chrome trace-event JSON for ``spans`` to ``path``."""
    data = chrome_trace(spans, clock=clock)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1)
        fh.write("\n")
    return data


def write_spans_jsonl(path: str, spans) -> int:
    """One span dict per line; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


# -- request autopsy ---------------------------------------------------------


def _first(spans, name: str, process: str | None = None) -> Span | None:
    for span in spans:
        if span.name == name and (process is None or span.process == process):
            return span
    return None


def autopsy(tracer: SpanTracer, trace_id: str) -> dict | None:
    """Phase-by-phase latency breakdown of one finished request trace.

    Returns ``None`` when the trace has no finished root. Phases are the
    intervals between consecutive boundaries of the request's journey
    (client/HMI send → leader arrival → batching wait → consensus →
    pipeline release → execution → reply quorum → result delivery), so
    ``sum(phase durations) == end_to_end`` to float addition exactness.
    """
    root = tracer.root_of(trace_id)
    if root is None or root.end is None:
        return None
    spans = tracer.spans_for(trace_id)
    request = _first(spans, "request")
    proxy = _first(spans, "proxy.forward")
    pending = _first(spans, "request.pending")
    leader = pending.process if pending is not None else None
    consensus = _first(spans, "consensus", leader)
    wait = _first(spans, "consensus.pipeline_wait", leader)
    execute = _first(spans, "request.execute", leader)
    quorum = _first(spans, "request.reply_quorum")

    boundaries: list[tuple[str, float | None]] = []
    if proxy is not None and proxy is not root:
        boundaries.append(("origin → proxy", proxy.start))
    if request is not None and request is not root:
        boundaries.append(("proxy handoff", request.start))
    if pending is not None:
        boundaries.append(("client → leader", pending.start))
        boundaries.append(("leader batching wait", pending.end))
    if consensus is not None:
        boundaries.append(("consensus PROPOSE→WRITE→ACCEPT", consensus.end))
    if wait is not None:
        boundaries.append(("pipeline in-order wait", wait.end))
    if execute is not None:
        boundaries.append(("execution queue", execute.start))
        boundaries.append(("execute", execute.end))
    if request is not None:
        boundaries.append(("reply + f+1 quorum", request.end))
    if not boundaries or boundaries[-1][1] != root.end:
        boundaries.append(("result delivery", root.end))

    phases = []
    cursor = root.start
    for label, time in boundaries:
        if time is None:
            continue
        clamped = min(max(time, cursor), root.end)
        phases.append(
            {
                "phase": label,
                "start": cursor,
                "end": clamped,
                "duration": clamped - cursor,
            }
        )
        cursor = clamped
    wal_points = [s for s in spans if s.name == "wal.append"]
    return {
        "trace_id": tracer.resolve(trace_id),
        "root": root.name,
        "start": root.start,
        "end": root.end,
        "end_to_end": root.end - root.start,
        "leader": leader,
        "phases": phases,
        "spans": len(spans),
        "processes": sorted({s.process for s in spans}),
        "wal_appends": len(wal_points),
        "wal_fsyncs": sum(1 for s in wal_points if s.attrs.get("fsynced")),
    }


def pick_trace(tracer: SpanTracer, which: str = "slowest") -> str | None:
    """Trace id of the slowest / median finished request-bearing trace."""
    candidates = []
    for trace_id, root in list(tracer._roots.items()):
        if root.end is None or root.trace_id != trace_id:
            continue  # open, or an alias entry pointing at a shared span
        if _first(tracer.spans_for(trace_id), "request") is None:
            continue
        candidates.append((root.end - root.start, trace_id))
    if not candidates:
        return None
    candidates.sort()
    if which == "slowest":
        return candidates[-1][1]
    if which == "median":
        return candidates[len(candidates) // 2][1]
    if which == "fastest":
        return candidates[0][1]
    raise ValueError(f"unknown pick {which!r}; use slowest/median/fastest")


def format_autopsy(report: dict) -> str:
    """Render an :func:`autopsy` report as the text table the CLI prints."""
    total = report["end_to_end"]
    lines = [
        f"request autopsy: {report['trace_id']}  "
        f"(root {report['root']}, leader {report['leader'] or '?'})",
        f"  end-to-end {total * 1000:.3f} ms over {report['spans']} spans "
        f"on {len(report['processes'])} processes; "
        f"{report['wal_appends']} WAL appends "
        f"({report['wal_fsyncs']} fsynced)",
    ]
    for phase in report["phases"]:
        share = phase["duration"] / total if total > 0 else 0.0
        bar = "#" * int(round(share * 30))
        lines.append(
            f"  {phase['phase']:<32} {phase['duration'] * 1000:9.3f} ms "
            f"{share:6.1%}  {bar}"
        )
    lines.append(f"  {'total':<32} {total * 1000:9.3f} ms 100.0%")
    return "\n".join(lines)
