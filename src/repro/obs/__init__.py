"""Observability: simulated-time tracing and a unified metrics layer.

``repro.obs`` is the subsystem every other layer reports into:

:mod:`repro.obs.metrics`
    Named counters, gauges, fixed-bucket histograms and group providers
    behind one :class:`~repro.obs.metrics.MetricsRegistry`. The kernel's
    ``Simulator.stats()`` is assembled from this registry — subsystems
    register once, benchmarks and chaos monitors read uniformly.
:mod:`repro.obs.trace`
    A :class:`~repro.obs.trace.SpanTracer` recording causally-linked
    spans in **simulated** time across every process of a deployment:
    HMI write → proxy → client request → consensus phases per replica →
    WAL append → execution → reply quorum.
:mod:`repro.obs.export`
    Chrome trace-event JSON (Perfetto-loadable), JSONL spans, and the
    text "request autopsy" — the measured analogue of the paper's
    Figures 6/7 step counts.
:mod:`repro.obs.slo`
    Declarative service-level objectives (latency / availability /
    freshness) evaluated in sim time with burn-rate error budgets,
    emitting typed :class:`~repro.obs.slo.SloViolation` events.
:mod:`repro.obs.fleet`
    The :class:`~repro.obs.fleet.FleetScoreboard` — per-shard and
    fleet-level health folded from metrics, liveness, merger holdback,
    router caches, IDS verdicts and heal actions; strictly passive.
:mod:`repro.obs.report`
    ASCII scoreboard and static HTML renderers over fleet samples
    (``python -m repro fleet``).

Tracing is **off by default and behaviour-invisible**: ``sim.tracer`` is
``None`` until :func:`install_tracer` attaches one, every instrumentation
point is a no-op guard check when it is, and an installed tracer never
schedules events or changes wire bytes — a seeded run executes the
identical request stream with tracing on or off
(``tests/test_trace_determinism.py``).
"""

from repro.obs.fleet import FleetSample, FleetScoreboard, ShardHealth
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_scoreboard, write_html_report
from repro.obs.slo import SloEngine, SloSpec, SloViolation, default_fleet_slos
from repro.obs.trace import Span, SpanTracer, install_tracer, request_trace_id

__all__ = [
    "Counter",
    "FleetSample",
    "FleetScoreboard",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ShardHealth",
    "SloEngine",
    "SloSpec",
    "SloViolation",
    "Span",
    "SpanTracer",
    "default_fleet_slos",
    "install_tracer",
    "render_scoreboard",
    "request_trace_id",
    "write_html_report",
]
