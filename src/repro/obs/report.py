"""Render fleet scoreboard state for operators: ASCII and static HTML.

Both renderers are pure functions over :class:`~repro.obs.fleet`
structures — no simulator access, no side effects beyond the optional
file write — so the CLI can redraw the ASCII board every host-loop
slice without perturbing the run.
"""

from __future__ import annotations

import html
import json

_STATUS_MARK = {"ok": "·", "degraded": "!", "critical": "X", "unknown": "?"}


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "-"
    try:
        value = float(seconds)
    except (TypeError, ValueError):
        return "-"
    if value != value:  # nan
        return "-"
    return f"{value * 1000:.1f}ms"


def render_scoreboard(scoreboard, width: int = 72) -> str:
    """The live ASCII board: one row per shard plus a fleet footer."""
    sample = scoreboard.latest
    if sample is None:
        return "fleet scoreboard: no samples yet"
    lines = []
    bar = "-" * width
    lines.append(bar)
    lines.append(
        f" FLEET t={sample.time:8.3f}s  status={sample.status.upper():9s}"
        f" shards={len(sample.shards)}  violations={sample.violations}"
    )
    lines.append(bar)
    header = (
        f" {'shard':5s} {'st':2s} {'live':>6s} {'leader':16s}"
        f" {'chg':>3s} {'decided':>8s} {'occ':>5s}"
    )
    lines.append(header)
    for health in sample.shards:
        lines.append(
            f" s{health.shard:<4d} {_STATUS_MARK.get(health.status, '?'):2s}"
            f" {health.live}/{health.n:<4d}"
            f" {health.leader or '-':16s}"
            f" {health.leader_changes:>3d}"
            f" {health.decided:>8d}"
            f" {health.pipeline_occupancy:>5.2f}"
        )
        for reason in health.reasons:
            lines.append(f"        - {reason}")
    lines.append(bar)
    latency = sample.write_latency or {}
    lines.append(
        f" writes={latency.get('count', 0):<6d}"
        f" p50={_fmt_ms(_quantile_of(latency, 0.5)):>8s}"
        f" p99={_fmt_ms(_quantile_of(latency, 0.99)):>8s}"
        f" ae-age={_fmt_ms(sample.freshness_age):>8s}"
        f" holdback={sample.holdback.get('pending', 0)}"
    )
    router = sample.router
    if router:
        lines.append(
            f" router hit-rate={router.get('hit_rate', 1.0):.2%}"
            f" (hits={router.get('hits', 0)} misses={router.get('misses', 0)}"
            f" invalidations={router.get('invalidations', 0)})"
        )
    lines.append(
        f" ids-detections={sample.detections}"
        f" heal-actions={sample.heal_actions}"
    )
    if sample.burn:
        burning = {k: v for k, v in sample.burn.items() if v > 0}
        shown = burning or sample.burn
        lines.append(
            " slo-burn " + "  ".join(
                f"{name}={rate:.2f}" for name, rate in sorted(shown.items())
            )
        )
    for violation in sample.new_violations:
        lines.append(
            f" !! SLO {violation.slo} burn={violation.burn_rate:.2f}"
            + (f" shard=s{violation.shard}" if violation.shard is not None
               else "")
        )
    lines.append(bar)
    return "\n".join(lines)


def _quantile_of(summary: dict, q: float):
    """Approximate a quantile from a histogram *summary* dict.

    The summary carries cumulative bucket counts, not the Histogram
    object, so this reuses the same clamped interpolation on the dict
    shape (good enough for a status line).
    """
    count = summary.get("count", 0)
    if not count:
        return None
    buckets = summary.get("buckets", {})
    lo = summary.get("min", 0.0)
    target = q * count
    seen = 0
    for bound, n in buckets.items():
        if not n:
            continue
        hi = summary.get("max", lo) if bound == "+inf" else float(bound)
        hi = min(hi, summary.get("max", hi))
        if seen + n >= target:
            start = max(lo, summary.get("min", lo))
            if hi < start:
                hi = start
            return start + (hi - start) * (target - seen) / n
        seen += n
        lo = hi
    return summary.get("max")


def render_transitions(scoreboard) -> str:
    """The status-flip log as aligned text lines."""
    if not scoreboard.transitions:
        return " (no status transitions)"
    return "\n".join(
        f" t={t['time']:8.3f}s  {t['scope']:6s} {t['from']} -> {t['to']}"
        for t in scoreboard.transitions
    )


def write_html_report(scoreboard, path: str, title: str = "Fleet report") -> str:
    """Write a dependency-free static HTML report; returns ``path``."""
    data = scoreboard.to_dict()
    latest = data.get("latest") or {}
    shard_rows = "".join(
        "<tr class='{status}'><td>s{shard}</td><td>{status}</td>"
        "<td>{live}/{n}</td><td>{leader}</td><td>{leader_changes}</td>"
        "<td>{decided}</td><td>{occ:.2f}</td><td>{reasons}</td></tr>".format(
            shard=h["shard"],
            status=h["status"],
            live=h["live"],
            n=h["n"],
            leader=html.escape(h["leader"] or "-"),
            leader_changes=h["leader_changes"],
            decided=h["decided"],
            occ=h["pipeline_occupancy"],
            reasons=html.escape("; ".join(h["reasons"]) or "-"),
        )
        for h in latest.get("shards", [])
    )
    transition_rows = "".join(
        "<tr><td>{time:.3f}s</td><td>{scope}</td>"
        "<td>{frm} → {to}</td></tr>".format(
            time=t["time"], scope=t["scope"], frm=t["from"], to=t["to"]
        )
        for t in data.get("transitions", [])
    ) or "<tr><td colspan='3'>none</td></tr>"
    slo = data.get("slo") or {}
    violation_rows = "".join(
        "<tr><td>{time:.3f}s</td><td>{slo}</td><td>{kind}</td>"
        "<td>{shard}</td><td>{burn_rate:.2f}</td></tr>".format(
            time=v["time"],
            slo=html.escape(v["slo"]),
            kind=v["kind"],
            shard=("-" if v["shard"] is None else f"s{v['shard']}"),
            burn_rate=v["burn_rate"],
        )
        for v in slo.get("violations", [])
    ) or "<tr><td colspan='5'>none</td></tr>"
    document = f"""<!doctype html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font-family: monospace; margin: 2em; background: #111; color: #ddd; }}
h1, h2 {{ color: #fff; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
td, th {{ border: 1px solid #444; padding: 4px 10px; text-align: left; }}
tr.ok td:nth-child(2) {{ color: #6c6; }}
tr.degraded td:nth-child(2) {{ color: #fc6; }}
tr.critical td:nth-child(2) {{ color: #f66; }}
pre {{ background: #1a1a1a; padding: 1em; overflow-x: auto; }}
</style></head><body>
<h1>{html.escape(title)}</h1>
<p>status: <strong>{html.escape(data.get("status", "unknown"))}</strong>
 · shards: {data.get("shards", 0)} · samples: {data.get("samples", 0)}</p>
<h2>Shard health (latest sample)</h2>
<table><tr><th>shard</th><th>status</th><th>live</th><th>leader</th>
<th>leader chg</th><th>decided</th><th>occupancy</th><th>reasons</th></tr>
{shard_rows}</table>
<h2>Status transitions</h2>
<table><tr><th>time</th><th>scope</th><th>change</th></tr>
{transition_rows}</table>
<h2>SLO violations</h2>
<table><tr><th>time</th><th>slo</th><th>kind</th><th>shard</th>
<th>burn</th></tr>
{violation_rows}</table>
<h2>Raw snapshot</h2>
<pre>{html.escape(json.dumps(data, indent=2, default=str))}</pre>
</body></html>
"""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return path
