"""Span tracing in simulated time.

A :class:`Span` is one named interval ``[start, end]`` of simulated time
on one process (a replica, a proxy, a client, the HMI), tagged with a
``trace_id`` that ties together every span one request touched across the
whole deployment. The :class:`SpanTracer` hangs off the simulator
(``sim.tracer``); components record spans through it and **never**
schedule events or mutate protocol state, so an installed tracer cannot
change a run's behaviour.

Trace identity
--------------
The wire protocol is not stamped by default (message sizes feed the
latency model, so tracing on vs off must keep every frame byte-identical).
Instead trace ids are *derived*: a BFT request is identified as
``req:<client_id>:<sequence>`` — reconstructable on any replica from the
request it already holds (:func:`request_trace_id`). Higher layers link
their own ids to the derived one with :meth:`SpanTracer.alias`
(``op:<op_id>`` for an HMI write becomes the canonical trace the BFT
spans resolve into). Messages *can* carry an explicit ``trace_id`` wire
field (``ClientRequest.trace_id``); :func:`request_trace_id` prefers it
when present, which the opt-in ``ServiceProxy.trace_wire_ids`` mode and
the codec round-trip tests exercise.

Span naming scheme (``docs/OBSERVABILITY.md`` has the full table):
``hmi.write`` → ``proxy.forward`` → ``request`` →
``request.pending`` / ``consensus`` (+ ``.write`` / ``.accept`` /
``.pipeline_wait``) / ``wal.append`` / ``request.execute`` →
``request.reply_quorum``.
"""

from __future__ import annotations


class Span:
    """One recorded interval of simulated time on one process."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "start",
        "end",
        "process",
        "attrs",
        "trace_ids",
    )

    def __init__(
        self,
        span_id: str,
        trace_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        process: str,
        attrs: dict,
        trace_ids: tuple = (),
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        #: ``None`` while the span is open.
        self.end: float | None = None
        self.process = process
        self.attrs = attrs
        #: Extra trace ids this span also belongs to (a consensus span
        #: covers every request of its batch).
        self.trace_ids = trace_ids

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "process": self.process,
            "attrs": self.attrs,
            "trace_ids": list(self.trace_ids),
        }

    def __repr__(self) -> str:
        end = "open" if self.end is None else f"{self.end:.6f}"
        return (
            f"<Span {self.name} {self.trace_id} [{self.start:.6f}..{end}] "
            f"@{self.process}>"
        )


def request_trace_id(request) -> str:
    """The trace id of a BFT client request.

    Prefers an explicit wire ``trace_id`` (opt-in stamping); otherwise
    derives the deterministic ``req:<client>:<sequence>`` id every
    replica can reconstruct without any wire support.
    """
    wire = getattr(request, "trace_id", "")
    if wire:
        return wire
    return f"req:{request.client_id}:{request.sequence}"


class SpanTracer:
    """Records causally-linked spans for one simulation.

    The tracer is passive: :meth:`begin`/:meth:`end`/:meth:`point` only
    append records stamped with ``sim.now``. ``max_spans`` bounds memory
    in long campaigns — once reached, new spans are counted in
    ``dropped`` but not retained (existing spans keep ending normally).
    """

    def __init__(self, sim, max_spans: int | None = None) -> None:
        self.sim = sim
        self.enabled = True
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 0
        #: alias trace id -> canonical trace id.
        self._aliases: dict[str, str] = {}
        #: canonical trace id -> spans (insertion order).
        self._index: dict[str, list] = {}
        #: canonical trace id -> first span recorded for it (the root).
        self._roots: dict[str, Span] = {}
        #: listeners notified with every span as it *closes*.
        self._subscribers: list = []

    # -- subscription ---------------------------------------------------

    def subscribe(self, fn) -> None:
        """Call ``fn(span)`` whenever a span closes.

        Subscribers see every span — including ones dropped by the
        ``max_spans`` cap — so a streaming consumer (the IDS) is not
        limited by the retention bound. Subscribers must be passive:
        they run inline from :meth:`end`/:meth:`point` and must not
        schedule events or mutate protocol state.
        """
        self._subscribers.append(fn)

    def unsubscribe(self, fn) -> None:
        """Remove a subscriber added with :meth:`subscribe`."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    def _notify(self, span: Span) -> None:
        for fn in self._subscribers:
            fn(span)

    # -- identity -------------------------------------------------------

    def resolve(self, trace_id: str) -> str:
        """Follow alias links to the canonical trace id."""
        seen = 0
        while trace_id in self._aliases and seen < 16:
            trace_id = self._aliases[trace_id]
            seen += 1
        return trace_id

    def alias(self, alias_id: str, canonical_id: str) -> None:
        """Declare ``alias_id`` to name the same trace as ``canonical_id``.

        Used to link a derived BFT trace id to an upstream one (an HMI
        write's ``op:<op_id>``), merging the span trees.
        """
        canonical = self.resolve(canonical_id)
        if alias_id != canonical:
            self._aliases[alias_id] = canonical

    def for_request(self, request) -> str:
        """Canonical trace id of a BFT request (wire field or derived)."""
        return self.resolve(request_trace_id(request))

    # -- recording ------------------------------------------------------

    def begin(
        self,
        name: str,
        trace_id: str,
        parent=None,
        process: str = "",
        start: float | None = None,
        trace_ids: tuple = (),
        **attrs,
    ) -> Span:
        """Open a span at ``sim.now`` (or an explicit earlier ``start``).

        ``parent`` is a :class:`Span` (or a span id string). With no
        parent, the first span of a trace becomes its root and later
        parentless spans of the same trace attach under that root — so
        replica-side spans need no cross-process parent plumbing.
        """
        canonical = self.resolve(trace_id)
        self._next_id += 1
        parent_id = getattr(parent, "span_id", parent)
        span = Span(
            span_id=f"s{self._next_id}",
            trace_id=canonical,
            parent_id=parent_id,
            name=name,
            start=self.sim.now if start is None else start,
            process=process,
            attrs=attrs,
            trace_ids=tuple(self.resolve(t) for t in trace_ids),
        )
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return span  # detached: callers may still end() it harmlessly
        root = self._roots.get(canonical)
        if root is None:
            self._roots[canonical] = span
        elif parent_id is None and root is not span:
            span.parent_id = root.span_id
        self.spans.append(span)
        self._index.setdefault(canonical, []).append(span)
        for extra in span.trace_ids:
            if extra != canonical:
                self._index.setdefault(extra, []).append(span)
                self._roots.setdefault(extra, span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close ``span`` at ``sim.now``; extra attrs are merged in."""
        first_close = span.end is None
        if first_close:
            span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)
        if first_close and self._subscribers:
            self._notify(span)
        return span

    def point(
        self,
        name: str,
        trace_id: str,
        parent=None,
        process: str = "",
        trace_ids: tuple = (),
        **attrs,
    ) -> Span:
        """A zero-duration marker span (e.g. one WAL append)."""
        span = self.begin(
            name, trace_id, parent=parent, process=process, trace_ids=trace_ids, **attrs
        )
        span.end = span.start
        if self._subscribers:
            self._notify(span)
        return span

    # -- queries --------------------------------------------------------

    def spans_for(self, trace_id: str) -> list:
        """Every span of one trace (aliases resolved), insertion order."""
        return list(self._index.get(self.resolve(trace_id), ()))

    def root_of(self, trace_id: str) -> Span | None:
        return self._roots.get(self.resolve(trace_id))

    def trace_ids(self) -> list:
        """Canonical trace ids in the order their roots were recorded."""
        return list(self._roots)

    def finished_roots(self, name: str | None = None) -> list:
        """Closed root spans (optionally filtered by span name)."""
        return [
            span
            for span in self._roots.values()
            if span.end is not None and (name is None or span.name == name)
        ]

    def window(self, t0: float, t1: float) -> list:
        """Spans overlapping simulated-time interval ``[t0, t1]``."""
        result = []
        for span in self.spans:
            end = span.end if span.end is not None else self.sim.now
            if end >= t0 and span.start <= t1:
                result.append(span)
        return result

    def clear(self) -> None:
        """Forget every recorded span (aliases survive; ids keep growing)."""
        self.spans.clear()
        self._index.clear()
        self._roots.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<SpanTracer {len(self.spans)} spans, {len(self._roots)} traces>"


def install_tracer(sim, max_spans: int | None = None) -> SpanTracer:
    """Attach a fresh :class:`SpanTracer` to ``sim`` and return it.

    Until this is called, ``sim.tracer`` is ``None`` and every
    instrumentation point in the codebase is a single no-op guard check.
    """
    tracer = SpanTracer(sim, max_spans=max_spans)
    sim.tracer = tracer
    return tracer
