"""Service-level objectives with burn-rate error budgets, in sim time.

An :class:`SloSpec` declares one objective over the fleet's always-on
metrics — the kind of statement an operator pins above the console:

``latency``
    "q of HMI writes complete within ``objective`` seconds" (measured
    from a named :class:`~repro.obs.metrics.Histogram`; a write landing
    in a bucket above the objective bound is a *bad event*).
``availability``
    "every shard keeps ``min_live`` replicas answering" (``"full"`` =
    all n members, ``"quorum"`` = the 2f+1 the protocol needs; an
    evaluation tick below the threshold is a bad slice for that shard).
``freshness``
    "no AE event sits in the global merge buffer longer than
    ``objective`` seconds" (a tick whose oldest buffered event exceeds
    the bound is a bad slice).

The **error budget** is the fraction of events/slices allowed to be bad
(``budget=0.05`` = 5%). Each evaluation folds the last ``window``
seconds into a bad fraction and divides by the budget — the **burn
rate**: 1.0 means the budget is being consumed exactly as fast as it is
granted; above ``burn_threshold`` the engine emits one typed
:class:`SloViolation` and re-arms only after the burn falls back under
half the threshold (hysteresis, so a sustained incident is one
violation, not one per tick).

The engine is *passive*: :meth:`SloEngine.evaluate` reads a
:class:`~repro.obs.fleet.FleetSample` and touches only its own state —
it never schedules events, so a run behaves identically with the engine
on or off (``tests/test_fleet_determinism.py``). When a tracer is
installed and enabled, violations are also recorded as
``slo.violation`` point spans, which puts them inside the chaos flight
recorder's dump window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective (all timing in simulated seconds)."""

    name: str
    #: ``"latency"`` | ``"availability"`` | ``"freshness"``.
    kind: str
    #: Latency/freshness bound in seconds (unused for availability).
    objective: float = 0.0
    #: Allowed bad fraction of events/slices (the error budget).
    budget: float = 0.05
    #: Sliding evaluation window, seconds.
    window: float = 2.0
    #: Latency only: the histogram metric the bad events come from.
    histogram: str = "hmi.write.latency"
    #: Availability only: ``"full"`` (all members) or ``"quorum"`` (2f+1).
    min_live: str = "full"
    #: Burn rate at which a violation fires.
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability", "freshness"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if self.window <= 0.0:
            raise ValueError("window must be positive")
        if self.min_live not in ("full", "quorum"):
            raise ValueError("min_live must be 'full' or 'quorum'")


@dataclass(frozen=True)
class SloViolation:
    """One budget-burn crossing, typed for reports and flight recorders."""

    time: float
    slo: str
    kind: str
    #: Shard the violation localises to (``None`` = fleet-level).
    shard: int | None
    #: The instantaneous measurement at the crossing (latency bad
    #: fraction, live replica count, or buffered-event age).
    measured: float
    objective: float
    burn_rate: float
    #: Fraction of the window's budget left (clamped at 0).
    budget_remaining: float

    def as_dict(self) -> dict:
        return {
            "time": round(self.time, 6),
            "slo": self.slo,
            "kind": self.kind,
            "shard": self.shard,
            "measured": round(self.measured, 6),
            "objective": self.objective,
            "burn_rate": round(self.burn_rate, 4),
            "budget_remaining": round(self.budget_remaining, 4),
        }


def default_fleet_slos() -> tuple:
    """The stock objectives the fleet scoreboard evaluates.

    Tuned so a benign seeded run burns nothing while a leader kill
    (one replica down for >1 poll tick) reliably burns the availability
    budget — the calibration ``benchmarks/test_obs_fleet.py`` asserts.
    """
    return (
        SloSpec(
            name="hmi-write-p99",
            kind="latency",
            objective=0.25,
            budget=0.10,
            window=2.0,
        ),
        SloSpec(
            name="shard-availability",
            kind="availability",
            budget=0.05,
            window=2.0,
            min_live="full",
        ),
        SloSpec(
            name="ae-freshness",
            kind="freshness",
            objective=0.5,
            budget=0.10,
            window=2.0,
        ),
    )


@dataclass
class _Series:
    """Sliding window of (time, good, bad) observations for one key."""

    window: float
    points: deque = field(default_factory=deque)
    armed: bool = True

    def push(self, time: float, good: float, bad: float) -> None:
        self.points.append((time, good, bad))
        horizon = time - self.window
        while self.points and self.points[0][0] < horizon:
            self.points.popleft()

    def bad_fraction(self) -> float:
        good = sum(p[1] for p in self.points)
        bad = sum(p[2] for p in self.points)
        total = good + bad
        return bad / total if total else 0.0


class SloEngine:
    """Evaluates a set of :class:`SloSpec` against fleet samples.

    Passive by contract: construction and :meth:`evaluate` never touch
    the simulator's schedule. ``sim`` is only used to read ``sim.now``
    fallbacks and the (optional) tracer for ``slo.violation`` points.
    """

    def __init__(self, specs=None, sim=None) -> None:
        self.specs = tuple(specs) if specs is not None else default_fleet_slos()
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        self.sim = sim
        #: Every violation emitted, in order.
        self.violations: list = []
        #: ``fn(violation)`` listeners (campaign reports, CLIs).
        self.sinks: list = []
        #: (slo name, shard-or-None) -> window series.
        self._series: dict = {}
        #: slo name -> last cumulative histogram bucket counts.
        self._last_buckets: dict = {}

    def subscribe(self, fn) -> None:
        self.sinks.append(fn)

    # -- evaluation ------------------------------------------------------

    def _series_for(self, spec: SloSpec, shard) -> _Series:
        key = (spec.name, shard)
        series = self._series.get(key)
        if series is None:
            series = _Series(window=spec.window)
            self._series[key] = series
        return series

    def _bucket_deltas(self, spec: SloSpec, buckets: dict) -> tuple:
        """(good, bad) event counts since the previous evaluation."""
        last = self._last_buckets.get(spec.name, {})
        good = bad = 0
        for bound, count in buckets.items():
            delta = count - last.get(bound, 0)
            if delta <= 0:
                continue
            if bound != "+inf" and float(bound) <= spec.objective:
                good += delta
            else:
                # A whole bucket above the bound is conservatively bad —
                # fixed buckets cannot split one around the objective.
                bad += delta
        self._last_buckets[spec.name] = dict(buckets)
        return good, bad

    def evaluate(self, sample) -> list:
        """Fold one :class:`~repro.obs.fleet.FleetSample`; return the new
        violations (also appended to :attr:`violations`)."""
        fired = []
        for spec in self.specs:
            if spec.kind == "latency":
                good, bad = self._bucket_deltas(
                    spec, sample.write_latency_buckets
                )
                fired.extend(
                    self._observe(spec, None, sample.time, good, bad,
                                  measured=self._series_for(spec, None)
                                  .bad_fraction())
                )
            elif spec.kind == "availability":
                for health in sample.shards:
                    threshold = (
                        health.n if spec.min_live == "full" else health.quorum
                    )
                    bad = 1 if health.live < threshold else 0
                    fired.extend(
                        self._observe(spec, health.shard, sample.time,
                                      1 - bad, bad, measured=health.live)
                    )
            else:  # freshness
                age = sample.freshness_age or 0.0
                bad = 1 if age > spec.objective else 0
                fired.extend(
                    self._observe(spec, None, sample.time, 1 - bad, bad,
                                  measured=age)
                )
        return fired

    def _observe(
        self, spec: SloSpec, shard, time: float, good, bad, measured
    ) -> list:
        series = self._series_for(spec, shard)
        series.push(time, good, bad)
        burn = series.bad_fraction() / spec.budget
        if burn >= spec.burn_threshold and series.armed:
            series.armed = False
            violation = SloViolation(
                time=time,
                slo=spec.name,
                kind=spec.kind,
                shard=shard,
                measured=float(measured),
                objective=spec.objective,
                burn_rate=burn,
                budget_remaining=max(0.0, 1.0 - burn),
            )
            self.violations.append(violation)
            for sink in self.sinks:
                sink(violation)
            self._trace_point(violation)
            return [violation]
        if burn < spec.burn_threshold * 0.5:
            # Hysteresis: a sustained incident emits once, and only a
            # real recovery re-arms the alert.
            series.armed = True
        return []

    def _trace_point(self, violation: SloViolation) -> None:
        tracer = getattr(self.sim, "tracer", None) if self.sim else None
        if tracer is None or not tracer.enabled:
            return
        tracer.point(
            "slo.violation",
            f"slo:{violation.slo}",
            process="slo-engine",
            slo=violation.slo,
            kind=violation.kind,
            shard=violation.shard,
            burn_rate=round(violation.burn_rate, 4),
            measured=round(violation.measured, 6),
        )

    # -- reading ---------------------------------------------------------

    def burn_rate(self, name: str, shard=None) -> float:
        """Current burn rate of one objective (0.0 when never sampled)."""
        spec = next((s for s in self.specs if s.name == name), None)
        if spec is None:
            raise KeyError(name)
        series = self._series.get((name, shard))
        if series is None:
            return 0.0
        return series.bad_fraction() / spec.budget

    def burning(self) -> list:
        """(name, shard) pairs currently at or above their threshold."""
        result = []
        for (name, shard), series in self._series.items():
            spec = next(s for s in self.specs if s.name == name)
            if series.bad_fraction() / spec.budget >= spec.burn_threshold:
                result.append((name, shard))
        return result

    def summary(self) -> dict:
        burn = {}
        for (name, shard), series in self._series.items():
            spec = next(s for s in self.specs if s.name == name)
            key = name if shard is None else f"{name}[s{shard}]"
            burn[key] = round(series.bad_fraction() / spec.budget, 4)
        return {
            "objectives": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "objective": spec.objective,
                    "budget": spec.budget,
                    "window": spec.window,
                }
                for spec in self.specs
            ],
            "burn": burn,
            "violations": [v.as_dict() for v in self.violations],
        }
