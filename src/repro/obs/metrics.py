"""The unified metrics registry.

One :class:`MetricsRegistry` per :class:`~repro.sim.kernel.Simulator`
holds every named metric of a deployment. Four metric kinds cover what
the codebase measures today:

``counter``
    A monotonically increasing integer owned by the registry
    (``registry.counter(name).inc()``). Components hold the
    :class:`Counter` object, so the hot path is one attribute add.
``gauge``
    A zero-arg callable sampled at snapshot time. This is how the kernel
    exposes its own counters (``events_dispatched`` etc.) without
    duplicating state: the gauge reads the attribute the kernel already
    maintains.
``histogram``
    Fixed-bucket distribution with cumulative bucket counts.
``group``
    A zero-arg provider returning a dict — the compatibility kind behind
    ``Simulator.register_stats_source`` (pipeline occupancy, fault
    injector counts, workload recorders).

Names are dot-separated (``net.trace.hops``, ``wal.fsyncs``); the
snapshot is a flat ``{name: value_or_dict}`` mapping in registration
order, which keeps ``Simulator.stats()`` output shape-compatible with
what benchmarks and chaos monitors already consume.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Sequence


class Counter:
    """A registry-owned monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named sample-on-read metric."""

    __slots__ = ("name", "read")

    def __init__(self, name: str, fn: Callable[[], object]) -> None:
        self.name = name
        self.read = fn

    def __repr__(self) -> str:
        return f"<Gauge {self.name}>"


#: Default histogram bucket bounds (seconds): micro to tens of seconds.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts samples ≤ ``bounds[i]``.

    The last (implicit) bucket is ``+inf``. Buckets are fixed at creation
    so two runs of the same workload produce comparable shapes.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Interpolated estimate of the ``q`` quantile (0..1).

        An empty histogram returns ``nan``; ``q=0`` and ``q=1`` return
        the exact observed min/max. Interior quantiles interpolate
        linearly inside the bucket holding the target rank, with the
        bucket edges clamped to the observed min/max — so a histogram
        whose samples all land in one bucket degenerates to a min..max
        interpolation instead of snapping to a bucket bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return math.nan
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= target:
                lo = self.min if index == 0 else self.bounds[index - 1]
                hi = self.max if index == len(self.bounds) else self.bounds[index]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi < lo:
                    hi = lo
                return lo + (hi - lo) * (target - seen) / bucket_count
            seen += bucket_count
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else math.nan,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "buckets": {
                ("+inf" if index == len(self.bounds) else self.bounds[index]): n
                for index, n in enumerate(self.counts)
            },
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named metrics of one simulation, snapshot in registration order."""

    def __init__(self) -> None:
        #: name -> (kind, metric-or-provider); insertion ordered, which
        #: fixes the snapshot key order (kernel gauges first).
        self._entries: dict[str, tuple] = {}

    # -- registration ---------------------------------------------------

    def _claim(self, name: str, kind: str):
        entry = self._entries.get(name)
        if entry is not None and entry[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {entry[0]}, not {kind}"
            )
        return entry

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        entry = self._claim(name, "counter")
        if entry is not None:
            return entry[1]
        counter = Counter(name)
        self._entries[name] = ("counter", counter)
        return counter

    def gauge(self, name: str, fn: Callable[[], object]) -> Gauge:
        """Register (or replace) the gauge ``name`` reading ``fn()``."""
        self._claim(name, "gauge")
        gauge = Gauge(name, fn)
        self._entries[name] = ("gauge", gauge)
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed on creation)."""
        entry = self._claim(name, "histogram")
        if entry is not None:
            return entry[1]
        histogram = Histogram(name, buckets)
        self._entries[name] = ("histogram", histogram)
        return histogram

    def group(self, name: str, provider: Callable[[], dict]) -> None:
        """Register (or replace) a dict-valued provider under ``name``.

        This is the kind behind ``Simulator.register_stats_source``:
        re-registering a name replaces the provider, as subsystems that
        rebuild mid-run (rejuvenation) rely on.
        """
        self._claim(name, "group")
        self._entries[name] = ("group", provider)

    # -- reading --------------------------------------------------------

    def names(self) -> list:
        return list(self._entries)

    def get(self, name: str):
        """The metric object (Counter/Gauge/Histogram) or group provider."""
        entry = self._entries.get(name)
        return entry[1] if entry is not None else None

    def value_of(self, name: str):
        """The current snapshot value of one metric."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(name)
        return self._read(entry)

    def read(self, name: str, default=None):
        """Like :meth:`value_of`, but returns ``default`` when absent.

        Passive consumers (the intrusion detector) poll metrics that may
        not be registered yet — e.g. a replica group during a restart
        gap — and must not raise from inside the monitor loop.
        """
        entry = self._entries.get(name)
        if entry is None:
            return default
        return self._read(entry)

    @staticmethod
    def _read(entry: tuple):
        kind, metric = entry
        if kind == "counter":
            return metric.value
        if kind == "gauge":
            return metric.read()
        if kind == "histogram":
            return metric.summary()
        return metric()  # group provider

    def snapshot(self) -> dict:
        """All metrics as ``{name: value_or_dict}`` in registration order."""
        return {name: self._read(entry) for name, entry in self._entries.items()}

    def reset(self) -> None:
        """Zero every counter and histogram (gauges/groups read live state)."""
        for kind, metric in self._entries.values():
            if kind == "counter":
                metric.reset()
            elif kind == "histogram":
                metric.counts = [0] * (len(metric.bounds) + 1)
                metric.count = 0
                metric.total = 0.0
                metric.min = math.inf
                metric.max = -math.inf

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._entries)} metrics>"
