"""Authenticated channels between protocol participants.

Wraps every protocol message in a :class:`Sealed` envelope carrying HMAC
tags, standing in for the TLS/shared-secret channels of the original
deployment. Receivers that fail verification drop the message silently
(and count it), which is what defeats spoofed traffic in the tests.
"""

from __future__ import annotations

from repro.bftsmart.messages import Sealed
from repro.crypto import Authenticator, KeyStore
from repro.net.endpoint import Endpoint
from repro.wire import DecodeError, decode, encode


class SecureChannel:
    """Seals outgoing and opens incoming protocol messages for one node."""

    def __init__(self, endpoint: Endpoint, keystore: KeyStore) -> None:
        self.endpoint = endpoint
        self.auth = Authenticator(endpoint.address, keystore)
        #: Messages dropped because of bad MACs or undecodable payloads.
        self.rejected = 0

    @property
    def address(self) -> str:
        return self.endpoint.address

    # -- sending -------------------------------------------------------------

    def seal(self, message, receivers: list) -> Sealed:
        payload = encode(message)
        return Sealed(
            sender=self.address,
            payload=payload,
            tags={receiver: self.auth.mac(receiver, payload) for receiver in receivers},
        )

    def send(self, dst: str, message) -> None:
        """Seal and send to a single receiver."""
        sealed = self.seal(message, [dst])
        self.endpoint.send(dst, sealed, kind=type(message).__name__)

    def broadcast(self, receivers: list, message, include_self: bool = False) -> None:
        """Seal once with a MAC vector and send to every receiver.

        With ``include_self`` the caller's own copy is delivered through
        the loopback path, keeping self-messages in the same code path as
        peer messages (as BFT-SMaRt does).
        """
        sealed = self.seal(message, list(receivers))
        for receiver in receivers:
            if receiver == self.address and not include_self:
                continue
            self.endpoint.send(receiver, sealed, kind=type(message).__name__)

    # -- receiving -----------------------------------------------------------

    def open(self, sealed: Sealed):
        """Verify and decode; returns the inner message or ``None``."""
        if not isinstance(sealed, Sealed):
            self.rejected += 1
            return None
        tag = sealed.tags.get(self.address)
        if tag is None or not self.auth.verify(sealed.sender, sealed.payload, tag):
            self.rejected += 1
            return None
        try:
            return decode(sealed.payload)
        except DecodeError:
            self.rejected += 1
            return None
