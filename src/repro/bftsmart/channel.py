"""Authenticated channels between protocol participants.

Wraps every protocol message in a :class:`Sealed` envelope carrying HMAC
tags, standing in for the TLS/shared-secret channels of the original
deployment. Receivers that fail verification drop the message silently
(and count it), which is what defeats spoofed traffic in the tests.

Hot-path layout
---------------
Sealing goes through :func:`repro.wire.encode_cached`, so a message
broadcast (or retransmitted) repeatedly is serialized once and the same
payload ``bytes`` object is shared by every receiver's envelope. That
identity sharing is what makes the downstream identity-keyed caches hit:
the digest LRU (PROPOSE value hashing) and the decode-share LRU here,
which lets n co-simulated replicas decode one broadcast payload once
instead of n times. Network sizing uses an exact arithmetic
:func:`sealed_wire_size` instead of a sizing encode per send.

All of it is behaviour-invisible: the decode cache only shares messages
whose wire form is a frozen dataclass, MAC verification stays per-receiver,
and the size hint is exact by construction (asserted in the tests).
"""

from __future__ import annotations

from repro.bftsmart.messages import Sealed
from repro.crypto import Authenticator, KeyStore
from repro.crypto.mac import MAC_SIZE
from repro.net.endpoint import Endpoint
from repro.perf import PERF
from repro.wire import DecodeError, decode, encode_cached, uvarint_size
from repro.wire.codec import _is_frozen_dataclass

#: ``1`` dataclass tag + varint type id + ``1`` field-count byte of Sealed.
_SEALED_PREFIX_SIZE: int | None = None

#: Wire size (STR tag + length varint + UTF-8 bytes) per address string.
#: Bounded by the number of distinct endpoint addresses in a deployment.
_STR_WIRE_SIZE: dict[str, int] = {}


def _str_wire_size(value: str) -> int:
    size = _STR_WIRE_SIZE.get(value)
    if size is None:
        encoded_len = len(value.encode("utf-8"))
        size = 1 + uvarint_size(encoded_len) + encoded_len
        _STR_WIRE_SIZE[value] = size
    return size


def sealed_wire_size(sealed: Sealed) -> int:
    """Exact canonical wire size of a :class:`Sealed` envelope.

    Computed arithmetically from the TLV layout so the network layer can
    skip its sizing encode. Must stay in lockstep with the codec; the
    channel tests assert ``sealed_wire_size(s) == len(encode(s))``.
    """
    global _SEALED_PREFIX_SIZE
    if _SEALED_PREFIX_SIZE is None:
        from repro.wire import GLOBAL_REGISTRY

        _SEALED_PREFIX_SIZE = 1 + uvarint_size(GLOBAL_REGISTRY.id_of(Sealed)) + 1
    size = _SEALED_PREFIX_SIZE + _str_wire_size(sealed.sender)
    payload_len = len(sealed.payload)
    size += 1 + uvarint_size(payload_len) + payload_len
    tags = sealed.tags
    size += 1 + uvarint_size(len(tags))
    for receiver, tag in tags.items():
        size += _str_wire_size(receiver)
        size += 1 + uvarint_size(len(tag)) + len(tag)
    return size


#: (sender, receivers-tuple) -> constant envelope bytes excluding the
#: payload field. Every tag is MAC_SIZE bytes, so for a fixed sender and
#: receiver set the only per-send variable is the payload length.
_ENVELOPE_OVERHEAD: dict[tuple, int] = {}


def _envelope_overhead(sender: str, receivers: tuple) -> int:
    key = (sender, receivers)
    size = _ENVELOPE_OVERHEAD.get(key)
    if size is not None:
        return size
    global _SEALED_PREFIX_SIZE
    if _SEALED_PREFIX_SIZE is None:
        from repro.wire import GLOBAL_REGISTRY

        _SEALED_PREFIX_SIZE = 1 + uvarint_size(GLOBAL_REGISTRY.id_of(Sealed)) + 1
    size = _SEALED_PREFIX_SIZE + _str_wire_size(sender)
    size += 1 + uvarint_size(len(receivers))
    tag_size = 1 + uvarint_size(MAC_SIZE) + MAC_SIZE
    for receiver in receivers:
        size += _str_wire_size(receiver) + tag_size
    _ENVELOPE_OVERHEAD[key] = size
    return size


#: Identity-keyed map sharing decoded messages across the receivers of one
#: broadcast payload. Entries pin the payload bytes object, so an ``id()``
#: key can never alias a different live object. Cleared wholesale when
#: full (O(1) amortized eviction); dropped in-flight entries just decode.
_DECODE_CACHE: dict[int, tuple[bytes, object]] = {}
_DECODE_CACHE_LIMIT = 4096
_DECODE_STATS = PERF.stats["decode_share"]


def _decode_shared(payload: bytes):
    if not PERF.decode_share or type(payload) is not bytes:
        return decode(payload)
    key = id(payload)
    try:
        hit = _DECODE_CACHE[key]
    except KeyError:
        hit = None
    if hit is not None and hit[0] is payload:
        _DECODE_STATS.hits += 1
        return hit[1]
    _DECODE_STATS.misses += 1
    message = decode(payload)
    # Only immutable (frozen-dataclass) messages may be shared between
    # receivers; anything else is decoded fresh per receiver.
    if _is_frozen_dataclass(message.__class__):
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[key] = (payload, message)
    return message


def _seed_decoded(payload: bytes, message) -> None:
    """Pre-seed the decode cache with the sender's own message object.

    The codec is canonical and round-trips frozen dataclasses exactly, so
    handing receivers the sender's (immutable) message object is
    indistinguishable from decoding the payload — and turns the receive
    path of every sealed message, unique replies included, into a dict hit.
    """
    if _is_frozen_dataclass(message.__class__):
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[id(payload)] = (payload, message)


def clear_decode_cache() -> None:
    _DECODE_CACHE.clear()


class SecureChannel:
    """Seals outgoing and opens incoming protocol messages for one node."""

    def __init__(self, endpoint: Endpoint, keystore: KeyStore) -> None:
        self.endpoint = endpoint
        self.auth = Authenticator(endpoint.address, keystore)
        #: Messages dropped because of bad MACs or undecodable payloads.
        self.rejected = 0

    @property
    def address(self) -> str:
        return self.endpoint.address

    # -- sending -------------------------------------------------------------

    def seal(self, message, receivers: list) -> Sealed:
        payload = encode_cached(message).payload
        if PERF.decode_share:
            _seed_decoded(payload, message)
        mac = self.auth.mac
        return Sealed(
            sender=self.address,
            payload=payload,
            tags={receiver: mac(receiver, payload) for receiver in receivers},
        )

    def send(self, dst: str, message) -> None:
        """Seal and send to a single receiver."""
        sealed = self.seal(message, [dst])
        if PERF.size_hints:
            payload_len = len(sealed.payload)
            size_hint = (
                _envelope_overhead(sealed.sender, (dst,))
                + 1
                + uvarint_size(payload_len)
                + payload_len
            )
        else:
            size_hint = None
        self.endpoint.send(
            dst, sealed, kind=type(message).__name__, size_hint=size_hint
        )

    def multicast(self, receivers: list, message) -> None:
        """Send the same message to each receiver in its own envelope.

        Unlike :meth:`broadcast` the receivers each get a single-tag
        envelope (what a client multicasting a request produces), but the
        inner payload is encoded once and the same ``bytes`` object is
        shared by every envelope — byte-identical on the wire to sending
        one at a time, minus the redundant encodes.
        """
        if not PERF.serialize_once:
            for receiver in receivers:
                self.send(receiver, message)
            return
        payload = encode_cached(message).payload
        if PERF.decode_share:
            _seed_decoded(payload, message)
        kind = type(message).__name__
        mac = self.auth.mac
        sender = self.address
        send = self.endpoint.send
        if PERF.size_hints:
            payload_len = len(payload)
            payload_part = 1 + uvarint_size(payload_len) + payload_len
        else:
            payload_part = None
        for receiver in receivers:
            sealed = Sealed(
                sender=sender,
                payload=payload,
                tags={receiver: mac(receiver, payload)},
            )
            if payload_part is not None:
                size_hint = _envelope_overhead(sender, (receiver,)) + payload_part
            else:
                size_hint = None
            send(receiver, sealed, kind=kind, size_hint=size_hint)

    def broadcast(self, receivers: list, message, include_self: bool = False) -> None:
        """Seal once with a MAC vector and send to every receiver.

        The single :class:`Sealed` envelope (and thus the single payload
        ``bytes`` object) is shared by all receivers, and its wire size is
        computed once for the whole multicast.

        With ``include_self`` the caller's own copy is delivered through
        the loopback path, keeping self-messages in the same code path as
        peer messages (as BFT-SMaRt does).
        """
        sealed = self.seal(message, list(receivers))
        if PERF.size_hints:
            payload_len = len(sealed.payload)
            size_hint = (
                _envelope_overhead(sealed.sender, tuple(receivers))
                + 1
                + uvarint_size(payload_len)
                + payload_len
            )
        else:
            size_hint = None
        kind = type(message).__name__
        send = self.endpoint.send
        for receiver in receivers:
            if receiver == self.address and not include_self:
                continue
            send(receiver, sealed, kind=kind, size_hint=size_hint)

    # -- receiving -----------------------------------------------------------

    def open(self, sealed: Sealed):
        """Verify and decode; returns the inner message or ``None``."""
        if not isinstance(sealed, Sealed):
            self.rejected += 1
            return None
        tag = sealed.tags.get(self.address)
        if tag is None or not self.auth.verify(sealed.sender, sealed.payload, tag):
            self.rejected += 1
            return None
        try:
            return _decode_shared(sealed.payload)
        except DecodeError:
            self.rejected += 1
            return None
