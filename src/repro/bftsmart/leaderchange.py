"""The synchronization phase: Mod-SMaRt's leader change.

When a replica's pending requests age past the request timeout, it votes
STOP for the next regency. ``f+1`` STOPs make other replicas join (a
correct replica is suspicious, so everyone should be); ``2f+1`` STOPs
install the new regency. Every replica then sends a signed STOP-DATA to
the new leader describing its last decision and every in-flight proposal
it echoed (with consensus pipelining there can be up to
``pipeline_depth`` of them); the leader collects ``n-f`` of them,
resolves per slot what value (if any) must be recovered for the open
consensus window, and broadcasts SYNC carrying the whole recovered
window. On SYNC, replicas re-propose the recovered slots in cid order
and resume normal operation under the new leader.

Simplification vs. BFT-SMaRt (documented in DESIGN.md §4): a slot's
recovered value is the in-flight proposal reported by at least ``f+1``
replicas (sufficient for any possibly-decided value to be re-proposed,
since a decision leaves ``f+1`` correct witnesses among any ``n-f``
STOP-DATAs); proofs are signatures over the whole STOP-DATA rather than
per-message write certificates. Slots inside the window with no
recoverable value are re-proposed as the empty batch so the decided
sequence stays gap-free.
"""

from __future__ import annotations

import typing

from repro.bftsmart.messages import Propose, Stop, StopData, Sync
from repro.crypto import Signature, digest
from repro.wire import encode

if typing.TYPE_CHECKING:
    from repro.bftsmart.replica import ServiceReplica


def _stop_data_payload(sender: str, regency: int, last_decided: int, in_flight) -> bytes:
    return encode((sender, regency, last_decided, in_flight))


class Synchronizer:
    """Runs the synchronization phase for one replica."""

    def __init__(self, replica: "ServiceReplica") -> None:
        self.replica = replica
        #: Currently installed regency (0 = initial leader).
        self.regency = 0
        #: True between installing a regency and receiving its SYNC.
        self.in_progress = False
        self._stop_votes: dict[int, set] = {}
        self._stop_datas: dict[int, dict] = {}
        self._highest_vote = 0
        self._resolved: set = set()
        #: Counts leader changes completed (metrics / tests).
        self.changes_completed = 0
        #: Open ``sync.leader_change`` span, when a tracer is installed.
        self._obs_span = None

    # -- quorum sizes under the current view ---------------------------------

    def _stop_quorum(self) -> int:
        return 2 * self.replica.view.f + 1

    def _join_threshold(self) -> int:
        return self.replica.view.f + 1

    def _stop_data_quorum(self) -> int:
        return self.replica.view.n - self.replica.view.f

    # -- suspicion -------------------------------------------------------------

    def suspect(self) -> None:
        """Vote to replace the current leader (idempotent per regency).

        Called repeatedly by the watchdog while requests stay stale. If we
        already voted for a regency that has not installed, the vote is
        re-broadcast: STOP messages can be lost (partitions, crashes
        during the split), and receivers deduplicate by sender anyway.
        """
        target = self.regency + 1
        if target <= self._highest_vote:
            if self._highest_vote > self.regency:
                replica = self.replica
                stop = Stop(sender=replica.address, regency=self._highest_vote)
                replica.channel.broadcast(replica.other_replicas(), stop)
            return
        self._vote_stop(target)

    def _vote_stop(self, target: int) -> None:
        if target <= self._highest_vote or target <= self.regency:
            return
        self._highest_vote = target
        replica = self.replica
        tracer = replica.sim.tracer
        if tracer is not None and tracer.enabled:
            # A bump-in-the-wire observer sees each first STOP vote; the
            # intrusion detector counts distinct suspecters per leader
            # (a suspicion burst against a live leader is the
            # equivocation signature).
            tracer.point(
                "sync.suspect",
                f"regency:{target}@{replica.address}",
                process=replica.address,
                regency=target,
                leader=replica.leader,
            )
        stop = Stop(sender=replica.address, regency=target)
        replica.channel.broadcast(replica.other_replicas(), stop)
        self._record_stop(replica.address, target)

    def on_stop(self, message: Stop) -> None:
        if message.regency <= self.regency:
            return
        if not self.replica.view.contains(message.sender):
            return
        self._record_stop(message.sender, message.regency)

    def _record_stop(self, sender: str, target: int) -> None:
        votes = self._stop_votes.setdefault(target, set())
        votes.add(sender)
        if len(votes) >= self._join_threshold():
            self._vote_stop(target)
        if len(votes) >= self._stop_quorum() and target > self.regency:
            self._install(target)

    # -- installing a regency -----------------------------------------------------

    def _install(self, target: int) -> None:
        replica = self.replica
        self.regency = target
        self.in_progress = True
        tracer = replica.sim.tracer
        if tracer is not None and tracer.enabled:
            if self._obs_span is not None:
                tracer.end(self._obs_span, aborted=True)
            self._obs_span = tracer.begin(
                "sync.leader_change",
                f"regency:{target}@{replica.address}",
                process=replica.address,
                regency=target,
                new_leader=replica.view.leader_for(target),
            )
        # Requests marked in-flight under the old leader go back to the pool.
        replica._inflight_keys.clear()
        # Proposing resumes from wherever SYNC re-anchors the window.
        replica.next_propose_cid = replica.next_cid

        # Report every open slot of the pipeline window: undecided
        # instances we WRITE-voted, plus decided-but-unreleased ones (a
        # decision this replica holds may be exactly the value the new
        # leader must re-propose for the peers that missed it).
        entries = []
        for cid in sorted(replica.instances):
            if cid < replica.next_cid:
                continue
            instance = replica.instances[cid]
            if instance.decided and instance.decided_value is not None:
                entries.append(
                    (cid, instance.epoch, instance.decided_value,
                     instance.decided_timestamp)
                )
            elif instance.write_sent and instance.proposal_value is not None:
                entries.append(
                    (cid, instance.epoch, instance.proposal_value,
                     instance.proposal_timestamp)
                )
        in_flight = tuple(entries)
        payload = _stop_data_payload(
            replica.address, target, replica.last_decided, in_flight
        )
        stop_data = StopData(
            sender=replica.address,
            regency=target,
            last_decided=replica.last_decided,
            in_flight=in_flight,
            signature=replica.signer.sign(payload).tag,
        )
        new_leader = replica.view.leader_for(target)
        if new_leader == replica.address:
            self.on_stop_data(stop_data)
        else:
            replica.channel.send(new_leader, stop_data)
        # Escalate if this synchronization stalls.
        replica.sim.defer(
            replica.config.sync_timeout, self._escalate_if_stalled, target
        )

    def _escalate_if_stalled(self, target: int) -> None:
        if self.in_progress and self.regency == target and self.replica.active:
            self._vote_stop(target + 1)

    # -- new leader: collecting STOP-DATA ---------------------------------------

    def on_stop_data(self, message: StopData) -> None:
        replica = self.replica
        if message.regency != self.regency or not self.in_progress:
            return
        if replica.view.leader_for(message.regency) != replica.address:
            return
        if not replica.view.contains(message.sender):
            return
        payload = _stop_data_payload(
            message.sender, message.regency, message.last_decided, message.in_flight
        )
        signature = Signature(message.sender, message.signature)
        if not replica.verifier.verify(signature, payload):
            return
        collected = self._stop_datas.setdefault(message.regency, {})
        collected[message.sender] = message
        if (
            len(collected) >= self._stop_data_quorum()
            and message.regency not in self._resolved
        ):
            self._resolved.add(message.regency)
            self._resolve(message.regency, collected)

    def _resolve(self, regency: int, collected: dict) -> None:
        replica = self.replica
        max_decided = max(data.last_decided for data in collected.values())
        if replica.last_decided < max_decided:
            # The new leader itself is behind: catch up first, then the
            # stalled-sync escalation will elect the next regency if this
            # one cannot complete in time.
            replica.state_transfer.notice_gap(max_decided + 1)

        # Per-slot tally over the whole pipeline window. Slots at or
        # below max_decided are already settled somewhere — recovering
        # them is state transfer's job (above), never a re-proposal's.
        floor = max(replica.next_cid, max_decided + 1)
        per_cid: dict[int, dict] = {}  # cid -> digest -> [value, ts, votes]
        for data in collected.values():
            for inflight_cid, _epoch, value, timestamp in data.in_flight:
                if inflight_cid < floor:
                    continue
                counts = per_cid.setdefault(inflight_cid, {})
                record = counts.get(digest(value))
                if record is None:
                    counts[digest(value)] = [value, timestamp, 1]
                else:
                    record[2] += 1

        threshold = self._join_threshold()  # f + 1 witnesses per slot
        recovered: dict[int, tuple] = {}
        for cid, counts in per_cid.items():
            eligible = sorted(
                key for key, record in counts.items() if record[2] >= threshold
            )
            if eligible:
                value, timestamp, _votes = counts[eligible[0]]
                recovered[cid] = (value, timestamp)

        proposals = ()
        if recovered:
            # Holes below the highest recovered slot are filled with the
            # empty batch: every slot must decide or nothing above it
            # ever executes.
            now = replica.sim.now
            proposals = tuple(
                (cid,) + recovered.get(cid, (b"", now))
                for cid in range(floor, max(recovered) + 1)
            )

        sync = Sync(
            sender=replica.address,
            regency=regency,
            proposals=proposals,
        )
        replica.channel.broadcast(replica.other_replicas(), sync)
        self.on_sync(sync)

    # -- everyone: resuming on SYNC ------------------------------------------------

    def on_sync(self, message: Sync) -> None:
        replica = self.replica
        if message.regency != self.regency or not self.in_progress:
            return
        if message.sender != replica.view.leader_for(message.regency):
            return
        self.in_progress = False
        self.changes_completed += 1
        if self._obs_span is not None:
            tracer = replica.sim.tracer
            if tracer is not None:
                tracer.end(self._obs_span, proposals=len(message.proposals))
            self._obs_span = None
        replica.last_progress = replica.sim.now
        highest = replica.next_cid - 1
        for cid, value, timestamp in message.proposals:
            highest = max(highest, cid)
            if cid < replica.next_cid:
                continue  # already decided and released locally
            propose = Propose(
                sender=message.sender,
                cid=cid,
                epoch=message.regency,
                value=value,
                timestamp=timestamp,
            )
            replica.on_propose(propose, from_sync=True)
        # Fresh proposals resume above the recovered window everywhere,
        # so a returning leader never reuses a recovered slot.
        replica.next_propose_cid = max(replica.next_cid, highest + 1)
        replica._maybe_propose()

    # -- hooks ------------------------------------------------------------------------

    def on_decision(self) -> None:
        """Called on every decision: progress resets suspicion."""
        self.replica.last_progress = self.replica.sim.now

    def on_view_change(self) -> None:
        """Reconfigurations keep the regency; leaders remap via the view."""
