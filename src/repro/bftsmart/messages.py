"""Wire messages of the replication protocol.

All messages are frozen dataclasses registered with the global codec.
Wire ids 20–49 are reserved for this module. Consensus messages carry the
sender and a MAC vector is attached by the channel layer in
:mod:`repro.bftsmart.replica`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire import wire_type


# -- client <-> replicas ----------------------------------------------------


@wire_type(20)
@dataclass(frozen=True)
class ClientRequest:
    """An operation a client wants the replicated service to execute.

    ``sequence`` is per-client and monotonically increasing; together with
    ``client_id`` it deduplicates retransmissions. ``reply_to`` is the
    network address replies are sent to (normally the client itself).
    ``unordered`` requests skip consensus and execute read-only.
    """

    client_id: str
    sequence: int
    operation: bytes
    reply_to: str
    unordered: bool = False
    mac: bytes = b""
    #: Optional observability trace id. Empty by default — tracing uses
    #: derived ids (``repro.obs.trace.request_trace_id``) so enabling it
    #: never changes wire bytes; opt-in stamping
    #: (``ServiceProxy.trace_wire_ids``) fills it in. Excluded from the
    #: signed payload, like ``mac``. Frames written before this field
    #: existed still decode (codec default-tail backward compatibility).
    trace_id: str = ""

    def key(self) -> tuple:
        return (self.client_id, self.sequence)


@wire_type(21)
@dataclass(frozen=True)
class Reply:
    """A replica's answer to one client request."""

    replica: str
    client_id: str
    sequence: int
    result: bytes
    view_id: int
    regency: int


@wire_type(22)
@dataclass(frozen=True)
class PushMessage:
    """Replica-initiated (asynchronous) message to a registered listener.

    This is the feature §VI credits with solving Kirsch et al.'s second
    challenge: servers may send messages to clients outside the
    request/reply pattern. ``stream`` names the logical channel,
    ``order`` is the deterministic ordering key assigned by the service
    (all correct replicas assign the same), and listeners vote f+1
    matching ``(stream, order, payload)`` tuples before delivery.
    """

    replica: str
    client_id: str
    stream: str
    order: tuple
    payload: bytes


# -- consensus (VP-Consensus inside Mod-SMaRt) -------------------------------


@wire_type(23)
@dataclass(frozen=True)
class Propose:
    """Leader's proposal for consensus instance ``cid`` in ``epoch``.

    ``value`` is the serialized request batch. ``timestamp`` is the
    leader's clock reading, adopted by every replica when executing the
    batch — the mechanism that makes timestamps deterministic (§IV-C).
    """

    sender: str
    cid: int
    epoch: int
    value: bytes
    timestamp: float


@wire_type(24)
@dataclass(frozen=True)
class WriteMsg:
    """Echo of the proposal digest; 'write' phase of VP-Consensus."""

    sender: str
    cid: int
    epoch: int
    value_digest: bytes


@wire_type(25)
@dataclass(frozen=True)
class AcceptMsg:
    """Commit vote; a quorum of these decides the instance."""

    sender: str
    cid: int
    epoch: int
    value_digest: bytes


@wire_type(26)
@dataclass(frozen=True)
class RequestBatch:
    """The decided value: an ordered tuple of client requests."""

    requests: tuple


# -- synchronization phase (leader change) -----------------------------------


@wire_type(27)
@dataclass(frozen=True)
class Stop:
    """A replica's vote to abandon the current regency."""

    sender: str
    regency: int


@wire_type(28)
@dataclass(frozen=True)
class StopData:
    """State a replica hands the new leader when a regency is installed.

    ``in_flight`` is a tuple of ``(cid, epoch, value_bytes, timestamp)``
    entries, one per open slot of the consensus pipeline window: every
    proposal this replica sent a WRITE for but has not released, decided
    ones included (empty tuple when nothing is open). ``signature``
    covers the serialized content (slow path).
    """

    sender: str
    regency: int
    last_decided: int
    in_flight: tuple
    signature: bytes


@wire_type(29)
@dataclass(frozen=True)
class Sync:
    """New leader's resolution for the open consensus window.

    ``proposals`` is a tuple of ``(cid, value_bytes, timestamp)`` in
    ascending cid order — every slot the group must re-run under the new
    regency (``b""`` values are gap-filling empty batches). Empty when
    nothing was in flight; fresh proposing resumes above the window.
    """

    sender: str
    regency: int
    proposals: tuple


# -- state transfer -----------------------------------------------------------


@wire_type(30)
@dataclass(frozen=True)
class StateRequest:
    """Ask peers for a snapshot covering decisions up to their checkpoint.

    ``log_only`` marks a *partial* request: the sender already holds
    state through ``from_cid - 1`` (recovered from its own disk or a
    live prefix) and only wants the decided-log suffix. Peers that can
    no longer serve the suffix — their checkpoint already swallowed it —
    answer with a full snapshot instead.
    """

    sender: str
    from_cid: int
    log_only: bool = False


@wire_type(31)
@dataclass(frozen=True)
class StateReply:
    """Checkpoint snapshot plus the decided log after it.

    ``log`` is a tuple of ``(cid, value_bytes, timestamp)`` entries for
    instances decided after the checkpoint. A ``partial`` reply carries
    no snapshot: ``checkpoint_cid`` names the base the requester must
    already hold (``from_cid - 1``) and ``log`` is the suffix from
    ``from_cid`` on. Partial and full replies vote in separate f+1
    groups — whichever kind gathers the quorum first installs.
    """

    sender: str
    checkpoint_cid: int
    snapshot: bytes
    log: tuple
    view: object
    partial: bool = False


# -- reconfiguration -----------------------------------------------------------


@wire_type(32)
@dataclass(frozen=True)
class ReconfigRequest:
    """Administrative membership change, ordered like a client request.

    ``join`` lists addresses to add, ``leave`` addresses to remove, and
    ``new_f`` the fault threshold after the change. Must carry a
    signature from the trusted administrator ("TTP" in BFT-SMaRt).
    """

    admin: str
    join: tuple
    leave: tuple
    new_f: int
    signature: bytes


@wire_type(34)
@dataclass(frozen=True)
class Sealed:
    """An authenticated envelope: encoded inner message plus MAC tags.

    ``tags`` maps receiver address → HMAC over ``payload`` on the
    sender↔receiver channel. Multicast messages carry one tag per
    receiver (the PBFT authenticator construction); point-to-point
    messages carry a single entry.
    """

    sender: str
    payload: bytes
    tags: dict


@wire_type(33)
@dataclass(frozen=True)
class TimeoutVote:
    """SMaRt-SCADA logical-timeout vote (§IV-D), ordered via consensus.

    Carried here because it travels as an ordered operation through the
    same total-order machinery; semantics live in :mod:`repro.core.timeout`.
    """

    replica: str
    operation_key: tuple
