"""Convenience builders for replica groups and proxies.

Used by tests, examples and the SMaRt-SCADA system builder to assemble a
group without repeating the wiring boilerplate.
"""

from __future__ import annotations

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.config import GroupConfig
from repro.bftsmart.replica import ServiceReplica
from repro.bftsmart.view import View
from repro.crypto import KeyStore
from repro.net.network import Network
from repro.sim.kernel import Simulator


def build_group(
    sim: Simulator,
    net: Network,
    config: GroupConfig,
    service_factory,
    keystore: KeyStore | None = None,
    replica_classes: dict | None = None,
    storages: dict | None = None,
) -> list:
    """Create the ``config.n`` replicas of a group.

    ``service_factory()`` is called once per replica (each replica owns an
    independent service instance — that independence is what replication
    protects). ``replica_classes`` optionally overrides the class used for
    specific indices, e.g. ``{0: SilentReplica}`` for fault drills.
    ``storages`` maps indices to :class:`repro.storage.ReplicaStorage`
    instances; replicas given one boot through ``recover_from_disk`` (a
    no-op on an empty disk) and persist decisions/checkpoints to it.
    """
    keystore = keystore if keystore is not None else KeyStore()
    replica_classes = replica_classes or {}
    storages = storages or {}
    replicas = []
    for index, address in enumerate(config.addresses):
        cls = replica_classes.get(index, ServiceReplica)
        replica = cls(
            sim=sim,
            net=net,
            address=address,
            config=config,
            service=service_factory(),
            keystore=keystore,
            storage=storages.get(index),
        )
        if replica.storage is not None:
            replica.recover_from_disk()
        replicas.append(replica)
    return replicas


def build_proxy(
    sim: Simulator,
    net: Network,
    client_id: str,
    config: GroupConfig,
    keystore: KeyStore | None = None,
    invoke_timeout: float = 1.0,
) -> ServiceProxy:
    """Create a client proxy for the group described by ``config``."""
    keystore = keystore if keystore is not None else KeyStore()
    view = View(0, config.addresses, config.f)
    return ServiceProxy(
        sim=sim,
        net=net,
        client_id=client_id,
        keystore=keystore,
        view=view,
        invoke_timeout=invoke_timeout,
    )
