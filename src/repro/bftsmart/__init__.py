"""BFT-SMaRt-style state machine replication, built from scratch.

The stack mirrors the library the paper integrates (Bessani et al.,
DSN'14): Mod-SMaRt total ordering over VP-Consensus (PROPOSE → WRITE →
ACCEPT), a synchronization phase for leader changes, checkpoints + state
transfer, live reconfiguration, a voting client proxy, and asynchronous
server→client pushes (the feature that accommodates SCADA's event-driven
communication pattern, §VI).
"""

from repro.bftsmart.byzantine import (
    FALSIFY_OFFSET,
    EquivocatingLeader,
    FalsifyingReplica,
    LyingReplica,
    SilentReplica,
    StutteringReplica,
)
from repro.bftsmart.client import PushVoter, ServiceProxy
from repro.bftsmart.cluster import build_group, build_proxy
from repro.bftsmart.config import GroupConfig, replica_address
from repro.bftsmart.messages import (
    AcceptMsg,
    ClientRequest,
    Propose,
    PushMessage,
    ReconfigRequest,
    Reply,
    RequestBatch,
    Sealed,
    StateReply,
    StateRequest,
    Stop,
    StopData,
    Sync,
    WriteMsg,
)
from repro.bftsmart.reconfiguration import Administrator, ReconfigResult
from repro.bftsmart.replica import RECONFIG_MARKER, ServiceReplica
from repro.bftsmart.service import (
    CounterService,
    EchoService,
    KeyValueService,
    MessageContext,
    Service,
)
from repro.bftsmart.view import View

__all__ = [
    "AcceptMsg",
    "Administrator",
    "ReconfigResult",
    "ClientRequest",
    "CounterService",
    "EchoService",
    "EquivocatingLeader",
    "FALSIFY_OFFSET",
    "FalsifyingReplica",
    "GroupConfig",
    "KeyValueService",
    "LyingReplica",
    "MessageContext",
    "Propose",
    "PushMessage",
    "PushVoter",
    "RECONFIG_MARKER",
    "ReconfigRequest",
    "Reply",
    "RequestBatch",
    "Sealed",
    "Service",
    "ServiceProxy",
    "ServiceReplica",
    "SilentReplica",
    "StateReply",
    "StateRequest",
    "Stop",
    "StopData",
    "StutteringReplica",
    "Sync",
    "View",
    "WriteMsg",
    "build_group",
    "build_proxy",
    "replica_address",
]
