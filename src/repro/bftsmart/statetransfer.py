"""State transfer: how a lagging or recovering replica catches up.

A replica that observes consensus traffic for a slot beyond the one it is
waiting on asks its peers for state. Two transfer shapes exist:

**Full** — the original path. Each peer answers with its latest
checkpoint (service snapshot + client dedup table), the decided log
after the checkpoint, and its current view. The requester installs the
snapshot and replays the log through its normal execution path.

**Partial** — the durable-storage fast path. A replica that already
holds a verified prefix (recovered from its own disk, or simply a live
replica that fell behind) sets ``log_only`` on its request: peers whose
checkpoint has not yet swallowed ``from_cid`` answer with just the
decided-log suffix, no snapshot. Peers that *have* checkpointed past it
answer full — both kinds are grouped separately and either can win.

Either way the requester waits for ``f+1`` replies with identical
content — one of them is then guaranteed to come from a correct replica
— so a partial transfer is exactly as Byzantine-safe as a full one,
just smaller.
"""

from __future__ import annotations

import typing

from repro.bftsmart.messages import StateReply, StateRequest
from repro.crypto import digest
from repro.wire import decode, encode

if typing.TYPE_CHECKING:
    from repro.bftsmart.replica import ServiceReplica


class StateTransfer:
    """Drives state transfer for one replica."""

    def __init__(self, replica: "ServiceReplica") -> None:
        self.replica = replica
        self.in_progress = False
        self._last_request_at = -float("inf")
        self._replies: dict[str, StateReply] = {}
        self._highest_observed = -1
        self._retry_scheduled = False
        #: Completed transfers (metrics / tests).
        self.completed = 0
        # -- transfer-shape metrics (benchmarks / acceptance tests) --
        self.full_installs = 0
        self.partial_installs = 0
        #: Payload bytes this replica installed from peers (snapshot +
        #: log values), the "bytes shipped" axis of the fig. 8c contrast.
        self.bytes_installed = 0
        self.full_served = 0
        self.partial_served = 0

    @property
    def retry_interval(self) -> float:
        """Minimum time between two state requests (seconds)."""
        return self.replica.config.state_retry_interval

    # -- requesting ----------------------------------------------------------

    def _send_request(self) -> None:
        replica = self.replica
        self.in_progress = True
        self._replies.clear()
        request = StateRequest(
            sender=replica.address,
            from_cid=replica.next_cid,
            # Holding any decided prefix makes the log-tail fetch valid;
            # peers fall back to full replies when they can't serve it.
            log_only=replica.last_decided >= 0,
        )
        replica.channel.broadcast(replica.other_replicas(), request)
        # A request whose replies are lost (partition, crash) would
        # otherwise leave the transfer in progress forever — and an
        # in-progress transfer suppresses proposing and suspicion.
        self._schedule_retry()

    def notice_gap(self, observed_cid: int, force: bool = False) -> None:
        """Called when traffic for a future slot reveals we are behind.

        ``force`` (used by the retry path) also requests state when
        ``observed_cid == next_cid``: that instance may have decided at
        the peers while this replica was still installing the previous
        transfer, in which case no further traffic would ever re-trigger
        the gap detection.
        """
        replica = self.replica
        self._highest_observed = max(self._highest_observed, observed_cid)
        if observed_cid <= replica.next_cid and not (
            force and observed_cid == replica.next_cid
        ):
            return
        now = replica.sim.now
        if now - self._last_request_at < self.retry_interval:
            self._schedule_retry()
            return
        self._last_request_at = now
        self._send_request()

    def bootstrap(self) -> None:
        """Fetch state unconditionally (fresh or rejuvenated replica boot).

        A replacement replica that happens to be the current leader would
        otherwise stall the whole group for a request-timeout: it has
        nothing to propose from and only learns it is behind when peers'
        traffic reveals a gap. If the peers are no further along (initial
        deployment), the matching replies simply abort the transfer.
        """
        replica = self.replica
        self._last_request_at = replica.sim.now
        self._highest_observed = max(self._highest_observed, replica.next_cid)
        self._send_request()
        self._schedule_retry()

    # -- serving -------------------------------------------------------------

    def on_request(self, message: StateRequest) -> None:
        replica = self.replica
        if message.log_only and replica.checkpoint_cid < message.from_cid:
            # Our decided log still covers the requested suffix: serve it
            # without the snapshot. (The log is contiguous from
            # checkpoint_cid + 1, so checkpoint_cid < from_cid guarantees
            # every entry >= from_cid is present.)
            reply = StateReply(
                sender=replica.address,
                checkpoint_cid=message.from_cid - 1,
                snapshot=b"",
                log=tuple(
                    entry
                    for entry in replica.decision_log
                    if entry[0] >= message.from_cid
                ),
                view=replica.view,
                partial=True,
            )
            self.partial_served += 1
        else:
            reply = StateReply(
                sender=replica.address,
                checkpoint_cid=replica.checkpoint_cid,
                snapshot=replica.checkpoint_snapshot,
                log=tuple(replica.decision_log),
                view=replica.view,
            )
            self.full_served += 1
        replica.channel.send(message.sender, reply)

    # -- receiving -------------------------------------------------------------

    def on_reply(self, message: StateReply) -> None:
        replica = self.replica
        if not self.in_progress:
            return
        if not replica.view.contains(message.sender):
            return
        self._replies[message.sender] = message
        groups: dict[bytes, list] = {}
        for reply in self._replies.values():
            key = digest(
                encode(
                    (
                        reply.checkpoint_cid,
                        reply.snapshot,
                        reply.log,
                        reply.view.view_id,
                        reply.partial,
                    )
                )
            )
            groups.setdefault(key, []).append(reply)
        threshold = replica.view.f + 1
        for replies in groups.values():
            if len(replies) >= threshold:
                if replies[0].partial:
                    self._install_partial(replies[0])
                else:
                    self._install(replies[0])
                return

    # -- installing ---------------------------------------------------------------

    def _install(self, reply: StateReply) -> None:
        replica = self.replica
        top_cid = max(
            [reply.checkpoint_cid] + [entry[0] for entry in reply.log]
        )
        if top_cid <= replica.last_decided:
            # Peers agree but are no further along than we are; the gap
            # message was stale. Abort, drop the refuted observation and
            # wait for real progress.
            self.in_progress = False
            self._highest_observed = min(self._highest_observed, replica.last_decided)
            return

        if reply.view.view_id > replica.view.view_id:
            replica.view = reply.view
            replica.synchronizer.on_view_change()

        # Invalidate any executor backlog queued before this install —
        # replaying it against the freshly installed state would corrupt
        # the dedup table and skip parts of this install's own replay.
        replica._install_epoch += 1

        snapshot_blob = decode(reply.snapshot)
        service_snapshot, dedup_table = snapshot_blob
        replica.service.install_snapshot(service_snapshot)
        replica._last_executed_seq = dict(dedup_table)
        # Align the dispatcher's dedup view with the installed state:
        # pre-checkpoint requests must be skipped, replayed ones must pass.
        replica._dispatched_seq = dict(dedup_table)
        replica._last_reply.clear()

        replica.checkpoint_cid = reply.checkpoint_cid
        replica.checkpoint_snapshot = reply.snapshot
        replica.executed_cid = reply.checkpoint_cid
        replica.decision_log = list(reply.log)
        replica.instances.clear()
        replica._inflight_keys.clear()

        if replica.storage is not None:
            # The durable state must track the installed one, or the next
            # restart would resurrect the pre-install history.
            replica.storage.reinstall(
                reply.checkpoint_cid, reply.snapshot, reply.log
            )

        last = reply.checkpoint_cid
        for cid, value, timestamp in sorted(reply.log, key=lambda e: e[0]):
            last = max(last, cid)
            if value != b"":
                batch = decode(value)
                for request in batch.requests:
                    replica.pending.pop(request.key(), None)
                replica._exec_channel.put(
                    (
                        replica._install_epoch,
                        cid,
                        batch.requests,
                        timestamp,
                        replica.regency,
                    )
                )
        replica.last_decided = last
        replica.next_cid = last + 1
        # Everything this replica had proposed or decided-but-not-released
        # predates the installed state; proposing restarts at the new head.
        replica.next_propose_cid = replica.next_cid
        self.full_installs += 1
        self.bytes_installed += len(reply.snapshot) + sum(
            len(value) for _, value, _ in reply.log
        )
        self._finish_install()

    def _install_partial(self, reply: StateReply) -> None:
        """Append an f+1-verified decided-log suffix to our own prefix.

        Unlike a full install this does not touch the snapshot, the
        dedup tables or the install epoch — the existing executor
        backlog *is* the valid prefix the suffix extends.
        """
        replica = self.replica
        top_cid = max(
            [reply.checkpoint_cid] + [entry[0] for entry in reply.log]
        )
        if top_cid <= replica.last_decided:
            # Stale: peers are no further along than we already are.
            self.in_progress = False
            self._highest_observed = min(self._highest_observed, replica.last_decided)
            return
        if reply.checkpoint_cid > replica.last_decided:
            # The suffix starts beyond our prefix and cannot anchor —
            # only possible across a racing install; fetch again.
            self.in_progress = False
            self._schedule_retry()
            return

        if reply.view.view_id > replica.view.view_id:
            replica.view = reply.view
            replica.synchronizer.on_view_change()

        installed_bytes = 0
        for cid, value, timestamp in sorted(reply.log, key=lambda e: e[0]):
            if cid <= replica.last_decided:
                continue  # overlap with what we already hold
            replica.decision_log.append((cid, value, timestamp))
            if replica.storage is not None:
                replica.storage.on_decided(cid, value, timestamp)
            installed_bytes += len(value)
            if value != b"":
                batch = decode(value)
                for request in batch.requests:
                    replica.pending.pop(request.key(), None)
                replica._exec_channel.put(
                    (
                        replica._install_epoch,
                        cid,
                        batch.requests,
                        timestamp,
                        replica.regency,
                    )
                )
            replica.last_decided = cid
        replica.next_cid = replica.last_decided + 1
        self.partial_installs += 1
        self.bytes_installed += installed_bytes
        self._finish_install()

    def _finish_install(self) -> None:
        replica = self.replica
        replica.last_progress = replica.sim.now
        self.in_progress = False
        self.completed += 1
        # Open instances the install swallowed (cid below the new head)
        # must not be delivered a second time; ones above it survive. A
        # decided instance sitting exactly at the new head was waiting
        # for the gap the install just filled — release it now.
        for cid in [c for c in replica.instances if c < replica.next_cid]:
            del replica.instances[cid]
        replica.next_propose_cid = max(replica.next_propose_cid, replica.next_cid)
        replica._release_decided()
        # Consensus traffic that arrived during the transfer was buffered;
        # joining the live protocol from it avoids another transfer round.
        replica._drain_future()
        if self._highest_observed >= replica.next_cid:
            # Decisions kept landing while we transferred (or the slot we
            # observed may have decided without us); go again once the
            # retry interval allows.
            self._schedule_retry()
        replica._maybe_propose()

    def _schedule_retry(self) -> None:
        if self._retry_scheduled:
            return
        self._retry_scheduled = True
        self.replica.sim.defer(self.retry_interval, self._retry)

    def _retry(self) -> None:
        self._retry_scheduled = False
        if self.in_progress or self._highest_observed >= self.replica.next_cid:
            self.notice_gap(
                max(self._highest_observed, self.replica.next_cid), force=True
            )
