"""Byzantine replica behaviours for tests and fault drills.

Each behaviour subclasses :class:`ServiceReplica` and perverts exactly one
aspect of the protocol. With ``n >= 3f + 1`` honest-majority quorums, a
single Byzantine replica (f=1) must not be able to break safety — the
integration tests assert that clients still obtain correct, quorum-backed
results with each of these in the group.
"""

from __future__ import annotations

from repro.bftsmart.messages import Reply
from repro.bftsmart.replica import ServiceReplica

#: Offset a :class:`FalsifyingReplica` adds to numeric item values: far
#: outside any workload's range, so a forged reading that slips past the
#: proxies' f+1 vote is unambiguous in tests and chaos monitors.
FALSIFY_OFFSET = 1_000_000


class SilentReplica(ServiceReplica):
    """Crash-like behaviour: receives everything, says nothing."""

    def _on_network_message(self, payload, src: str) -> None:
        return


class LyingReplica(ServiceReplica):
    """Executes correctly but replies with corrupted results.

    Clients must out-vote it: its replies never reach the f+1 matching
    quorum because the other replicas agree with each other.
    """

    def _execute_one(self, cid, order, request, timestamp, regency) -> None:
        super()._execute_one(cid, order, request, timestamp, regency)
        # Overwrite the honest reply with a corrupted one.
        honest = self._last_reply.get(request.client_id)
        if honest is None or not self.active:
            return
        lie = Reply(
            replica=self.address,
            client_id=honest.client_id,
            sequence=honest.sequence,
            result=b"\xde\xad" + honest.result,
            view_id=honest.view_id,
            regency=honest.regency,
        )
        self.channel.send(request.reply_to, lie)


class EquivocatingLeader(ServiceReplica):
    """A leader that proposes different batches to different replicas.

    The WRITE quorum (which requires matching digests from a Byzantine
    quorum) prevents both values from deciding; the request timeout then
    replaces this leader through the synchronization phase.
    """

    def _propose_batch(self) -> None:
        from repro.bftsmart.messages import Propose, RequestBatch
        from repro.wire import encode

        batch = self._available_requests()[: self.config.batch_max]
        for request in batch:
            self._inflight_keys.add(request.key())
        others = self.other_replicas()
        half = len(others) // 2
        value_a = encode(RequestBatch(requests=tuple(batch)))
        value_b = encode(RequestBatch(requests=tuple(reversed(batch))))
        for group, value in ((others[:half], value_a), (others[half:], value_b)):
            propose = Propose(
                sender=self.address,
                cid=self.next_cid,
                epoch=self.regency,
                value=value,
                timestamp=self.sim.now,
            )
            for receiver in group:
                self.channel.send(receiver, propose)
        self.stats["proposals"] += 1


class FalsifyingReplica(ServiceReplica):
    """Participates correctly but pushes forged ItemUpdates to clients.

    This is the attack the paper's f+1 push voting exists to stop: a
    compromised Master replica shows the operator a false view of the
    field. The forgery is deterministic (value + ``FALSIFY_OFFSET``), so
    two colluding falsifiers produce byte-identical forgeries — with
    ``f=1`` a single falsifier never reaches the f+1 vote and the HMI is
    safe, while two of them (over budget) out-vote the honest replicas.
    """

    def push(self, client_id, stream, order, payload) -> None:
        from repro.neoscada.messages import ItemUpdate
        from repro.wire import DecodeError, decode, encode

        try:
            message = decode(payload)
        except DecodeError:
            message = None
        if isinstance(message, ItemUpdate) and isinstance(
            message.value.value, (int, float)
        ) and not isinstance(message.value.value, bool):
            forged = ItemUpdate(
                item_id=message.item_id,
                value=message.value.with_value(
                    message.value.value + FALSIFY_OFFSET
                ),
            )
            payload = encode(forged)
        super().push(client_id, stream, order, payload)


class StutteringReplica(ServiceReplica):
    """Participates in agreement but never sends replies or pushes.

    Weaker than :class:`SilentReplica`: it helps liveness of consensus
    while starving clients of its vote; clients still reach f+1 via the
    other replicas.
    """

    def _execute_one(self, cid, order, request, timestamp, regency) -> None:
        was_active = self.active
        self.active = False  # suppresses the reply send
        try:
            super()._execute_one(cid, order, request, timestamp, regency)
        finally:
            self.active = was_active

    def push(self, client_id, stream, order, payload) -> None:
        return
