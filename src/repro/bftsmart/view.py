"""Views: the current membership and leader of a replication group.

A view changes only through reconfiguration (adding/removing replicas);
leader changes within a view bump the *regency* instead, following
BFT-SMaRt's Mod-SMaRt terminology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire import wire_type


@wire_type(10)
@dataclass(frozen=True)
class View:
    """Immutable membership snapshot.

    Attributes
    ----------
    view_id:
        Monotonic view number, bumped by reconfigurations.
    addresses:
        Tuple of replica addresses, index position = replica id.
    f:
        Fault threshold for this membership.
    """

    view_id: int
    addresses: tuple
    f: int

    def __post_init__(self) -> None:
        if len(self.addresses) < 3 * self.f + 1:
            raise ValueError(
                f"view with {len(self.addresses)} replicas cannot tolerate f={self.f}"
            )

    @property
    def n(self) -> int:
        return len(self.addresses)

    def leader_for(self, regency: int) -> str:
        """The leader address under ``regency`` (round-robin rotation)."""
        return self.addresses[regency % self.n]

    def index_of(self, address: str) -> int:
        return self.addresses.index(address)

    def contains(self, address: str) -> bool:
        return address in self.addresses
