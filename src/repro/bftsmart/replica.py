"""The service replica: Mod-SMaRt total ordering + execution + checkpoints.

One :class:`ServiceReplica` is the server side of the library — what the
paper calls the "BFT server" inside each ProxyMaster. It receives signed
client requests, totally orders them through VP-Consensus (PROPOSE →
WRITE → ACCEPT), executes decided batches *sequentially* through a single
executor process (the determinism requirement of §III-B), replies to
clients, takes periodic checkpoints and serves state transfer.

Leader change lives in :mod:`repro.bftsmart.leaderchange`; state transfer
in :mod:`repro.bftsmart.statetransfer`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.bftsmart.channel import SecureChannel, _decode_shared
from repro.bftsmart.config import GroupConfig
from repro.bftsmart.consensus import Instance
from repro.bftsmart.leaderchange import Synchronizer
from repro.bftsmart.messages import (
    AcceptMsg,
    ClientRequest,
    Propose,
    PushMessage,
    ReconfigRequest,
    Reply,
    RequestBatch,
    Sealed,
    StateReply,
    StateRequest,
    Stop,
    StopData,
    Sync,
    WriteMsg,
)
from repro.bftsmart.service import MessageContext, Service
from repro.bftsmart.statetransfer import StateTransfer
from repro.bftsmart.view import View
from repro.crypto import KeyStore, Signature, Signer, Verifier, digest
from repro.net.network import Network
from repro.obs.trace import request_trace_id
from repro.perf import PERF
from repro.sim.channels import Channel
from repro.sim.kernel import Simulator
from repro.wire import DecodeError, decode, encode

#: Operations starting with this marker carry a ReconfigRequest.
RECONFIG_MARKER = b"\x00RECONFIG\x00"

#: Identity-keyed LRU of signing payloads. A request's signing payload is
#: a pure function of its (frozen) content, and thanks to serialize-once
#: multicast + shared decode all n replicas hold the *same* ClientRequest
#: object — so one encode serves every replica's verification. Entries pin
#: the request object, so an ``id()`` key can never alias a live object.
_SIGNING_PAYLOAD_CACHE: dict[int, tuple] = {}
_SIGNING_PAYLOAD_CACHE_LIMIT = 4096
_SIGNING_STATS = PERF.stats["signing_payload"]


#: Bytes signed by a client for request authentication.
def request_signing_payload(request: ClientRequest) -> bytes:
    if not PERF.signing_cache:
        return encode(
            (
                request.client_id,
                request.sequence,
                request.operation,
                request.reply_to,
                request.unordered,
            )
        )
    key = id(request)
    hit = _SIGNING_PAYLOAD_CACHE.get(key)
    if hit is not None and hit[0] is request:
        _SIGNING_STATS.hits += 1
        return hit[1]
    _SIGNING_STATS.misses += 1
    payload = encode(
        (
            request.client_id,
            request.sequence,
            request.operation,
            request.reply_to,
            request.unordered,
        )
    )
    if len(_SIGNING_PAYLOAD_CACHE) >= _SIGNING_PAYLOAD_CACHE_LIMIT:
        _SIGNING_PAYLOAD_CACHE.clear()
    _SIGNING_PAYLOAD_CACHE[key] = (request, payload)
    return payload


def seed_signing_payload(request: ClientRequest, payload: bytes) -> None:
    """Pre-seed the payload memo for a request whose payload is known.

    Used by the client after stamping the MAC into the final request
    object: the signed tuple excludes the MAC field, so the payload it
    computed for the unstamped request is exactly the final one's.
    """
    if len(_SIGNING_PAYLOAD_CACHE) >= _SIGNING_PAYLOAD_CACHE_LIMIT:
        _SIGNING_PAYLOAD_CACHE.clear()
    _SIGNING_PAYLOAD_CACHE[id(request)] = (request, payload)


def clear_signing_payload_cache() -> None:
    _SIGNING_PAYLOAD_CACHE.clear()


class ServiceReplica:
    """One member of a BFT replication group."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        config: GroupConfig,
        service: Service,
        keystore: KeyStore,
        view: View | None = None,
        storage=None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.address = address
        self.config = config
        self.service = service
        service.bind(self)
        #: Optional :class:`repro.storage.ReplicaStorage`. When present,
        #: decisions are WAL-appended, checkpoints persisted, and boot
        #: recovers from disk before asking peers for anything.
        self.storage = storage
        #: The :class:`repro.storage.RecoveredState` this incarnation
        #: booted from, or ``None`` (no storage / nothing recovered).
        self.recovered_from_disk = None

        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_network_message)
        self.channel = SecureChannel(self.endpoint, keystore)
        self.signer = Signer(address, keystore)
        self.verifier = Verifier(keystore)

        self.view = view if view is not None else View(0, config.addresses, config.f)
        self.active = True

        # -- ordering state --
        self.next_cid = 0
        self.last_decided = -1
        #: Next slot this replica would propose as leader. Runs ahead of
        #: ``next_cid`` by up to ``config.pipeline_depth`` slots: the
        #: leader opens instances for cid+1..cid+depth-1 while earlier
        #: ones are still deciding. Decided-but-unreleased instances stay
        #: in ``instances`` until every lower cid decided too — execution
        #: (and the deterministic §IV-C timestamps) is strictly in cid
        #: order regardless of decision order.
        self.next_propose_cid = 0
        self.instances: dict[int, Instance] = {}
        #: Consensus messages for slots just ahead of next_cid, buffered
        #: until we catch up (a recovering replica would otherwise chase
        #: a moving target forever). Slots further ahead than this window
        #: trigger state transfer instead.
        self.future_window = 64
        self._future_buffer: dict[int, list] = {}
        self._draining_future = False
        #: request key -> (request, arrival time); insertion-ordered.
        self.pending: dict[tuple, tuple] = {}
        self._inflight_keys: set = set()
        self._batch_timer_armed = False
        #: Leader-side (value_bytes, RequestBatch) of the latest own
        #: proposal: its requests were verified on arrival, so validating
        #: our own PROPOSE can skip the decode + re-verification.
        self._last_proposed: tuple | None = None
        #: id(request) -> request objects this replica already verified.
        self._verified_requests: OrderedDict = OrderedDict()

        # -- execution state --
        self._exec_channel = Channel(sim, name=f"exec:{address}")
        #: Bumped by every state-transfer install; executor entries queued
        #: under an older epoch are stale (they predate the installed
        #: state) and must be dropped, or their execution would poison
        #: the dedup table against the install's own replay.
        self._install_epoch = 0
        self._last_executed_seq: dict[str, int] = {}
        self._dispatched_seq: dict[str, int] = {}
        self._last_reply: dict[str, Reply] = {}
        self._lane_channels: list = []
        self._lane_inflight = 0
        self._drain_waiter = None
        self.executed_cid = -1
        #: decided-but-possibly-unexecuted log since the checkpoint:
        #: list of (cid, value_bytes, timestamp).
        self.decision_log: list = []
        self.checkpoint_cid = -1
        self.checkpoint_snapshot: bytes = self._snapshot_blob()
        #: Time of the last decision (suspicion is suppressed while the
        #: group is making progress even if some requests are old).
        self.last_progress = 0.0

        # -- subprotocols --
        self.synchronizer = Synchronizer(self)
        self.state_transfer = StateTransfer(self)

        # -- metrics --
        self.stats = {
            "proposals": 0,
            "decided": 0,
            "executed": 0,
            "replies": 0,
            "pushes": 0,
            "rejected_requests": 0,
            "checkpoints": 0,
            # -- pipeline occupancy --
            "decided_out_of_order": 0,
            "pipeline_occupancy_sum": 0,
            "pipeline_occupancy_peak": 0,
            "pipeline_occupancy_samples": 0,
        }
        sim.register_stats_source(f"pipeline.{address}", self._pipeline_stats)
        sim.register_stats_source(f"replica.{address}", self._service_stats)

        sim.process(self._executor(), name=f"executor:{address}")
        sim.process(self._watchdog(), name=f"watchdog:{address}")
        for lane in range(config.execution_lanes if config.execution_lanes > 1 else 0):
            channel = Channel(sim, name=f"lane:{address}:{lane}")
            self._lane_channels.append(channel)
            sim.process(self._lane_worker(channel), name=f"lane:{address}:{lane}")

    # ------------------------------------------------------------------
    # membership helpers
    # ------------------------------------------------------------------

    @property
    def regency(self) -> int:
        return self.synchronizer.regency

    @property
    def leader(self) -> str:
        return self.view.leader_for(self.regency)

    @property
    def is_leader(self) -> bool:
        return self.leader == self.address

    def quorum_write(self) -> int:
        return (self.view.n + self.view.f + 2) // 2

    def quorum_accept(self) -> int:
        return (self.view.n + self.view.f + 2) // 2

    def other_replicas(self) -> list:
        return [a for a in self.view.addresses if a != self.address]

    def halt(self) -> None:
        """Stop participating (used when removed by a reconfiguration)."""
        self.active = False

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def _on_network_message(self, payload, src: str) -> None:
        if not self.active:
            return
        if not isinstance(payload, Sealed):
            return
        message = self.channel.open(payload)
        if message is None:
            return
        handler = self._dispatch_table.get(type(message))
        if handler is not None:
            handler(self, message)

    # ------------------------------------------------------------------
    # client requests
    # ------------------------------------------------------------------

    def _verify_request(self, request: ClientRequest) -> bool:
        if PERF.signing_cache:
            # A replica sees every ordered request twice: once on arrival
            # and once inside the proposed batch (a different, decoded
            # object with equal content). The memo is keyed on content —
            # equal frozen requests carry the same signature over the same
            # payload — and per replica: a verdict never crosses keystores.
            cache = self._verified_requests
            if request in cache:
                return True
            if self._verify_request_uncached(request):
                cache[request] = None
                if len(cache) > 4096:
                    cache.popitem(last=False)
                return True
            return False
        return self._verify_request_uncached(request)

    def _verify_request_uncached(self, request: ClientRequest) -> bool:
        try:
            signature = Signature(request.client_id, request.mac)
        except ValueError:
            return False
        return self.verifier.verify(signature, request_signing_payload(request))

    def _on_client_request(self, request: ClientRequest) -> None:
        if not self._verify_request(request):
            self.stats["rejected_requests"] += 1
            return
        if request.unordered:
            self._execute_unordered(request)
            return
        last = self._last_executed_seq.get(request.client_id, -1)
        if request.sequence <= last:
            # Retransmission of something already executed: resend reply.
            cached = self._last_reply.get(request.client_id)
            if cached is not None and cached.sequence == request.sequence:
                self.channel.send(request.reply_to, cached)
            return
        key = request.key()
        if key in self.pending:
            return
        self.pending[key] = (request, self.sim.now)
        self._maybe_propose()

    def _execute_unordered(self, request: ClientRequest) -> None:
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.point(
                "request.execute",
                tracer.for_request(request),
                process=self.address,
                unordered=True,
            )
        try:
            result = self.service.execute_unordered(request.operation)
        except Exception as exc:  # deterministic failure -> error reply
            result = encode(("error", str(exc)))
        reply = Reply(
            replica=self.address,
            client_id=request.client_id,
            sequence=request.sequence,
            result=result,
            view_id=self.view.view_id,
            regency=self.regency,
        )
        self.channel.send(request.reply_to, reply)

    # ------------------------------------------------------------------
    # leader: batching and proposing
    # ------------------------------------------------------------------

    def _available_requests(self) -> list:
        return [
            request
            for key, (request, _arrival) in self.pending.items()
            if key not in self._inflight_keys
        ]

    def _pipeline_full(self) -> bool:
        """Has the leader exhausted its window of open consensus slots?"""
        head = max(self.next_propose_cid, self.next_cid)
        return head >= self.next_cid + self.config.pipeline_depth

    def _service_stats(self) -> dict:
        """Per-replica service counters for the metrics registry.

        ``rejected_envelopes`` is the secure channel's bad-MAC drop count
        — forged traffic never reaches the request path, so this (not
        ``rejected_requests``) is where frontend spoofing shows up.
        """
        return {
            "proposals": self.stats["proposals"],
            "decided": self.stats["decided"],
            "executed": self.stats["executed"],
            "replies": self.stats["replies"],
            "pushes": self.stats["pushes"],
            "rejected_requests": self.stats["rejected_requests"],
            "rejected_envelopes": self.channel.rejected,
        }

    def _pipeline_stats(self) -> dict:
        samples = self.stats["pipeline_occupancy_samples"]
        return {
            "depth": self.config.pipeline_depth,
            "occupancy_peak": self.stats["pipeline_occupancy_peak"],
            "occupancy_mean": (
                self.stats["pipeline_occupancy_sum"] / samples if samples else 0.0
            ),
            "decided_out_of_order": self.stats["decided_out_of_order"],
        }

    def _maybe_propose(self) -> None:
        if not (self.active and self.is_leader):
            return
        if self.synchronizer.in_progress or self.state_transfer.in_progress:
            return
        while not (self._pipeline_full() or self._batch_timer_armed):
            available = self._available_requests()
            if not available:
                return
            if len(available) >= self.config.batch_max or self.config.batch_wait <= 0:
                self._propose_batch()
                continue
            self._batch_timer_armed = True
            self.sim.defer(self.config.batch_wait, self._batch_timer_fired)
            return

    def _batch_timer_fired(self) -> None:
        self._batch_timer_armed = False
        if not (self.active and self.is_leader) or self._pipeline_full():
            return
        if self.synchronizer.in_progress or self.state_transfer.in_progress:
            return
        if self._available_requests():
            self._propose_batch()
            self._maybe_propose()

    def _propose_batch(self) -> None:
        batch = self._available_requests()[: self.config.batch_max]
        # A retransmission can re-enter the pool after the same client's
        # newer requests (the original was dropped, the resend arrived
        # post-heal). Restore each client's sequence order in place —
        # keeping the cross-client interleaving — or every replica would
        # reject the batch's out-of-order sequences and suspect us.
        positions: dict[str, list] = {}
        for index, request in enumerate(batch):
            positions.setdefault(request.client_id, []).append(index)
        for indices in positions.values():
            if len(indices) > 1:
                ordered = sorted(
                    (batch[i] for i in indices), key=lambda r: r.sequence
                )
                for index, request in zip(indices, ordered):
                    batch[index] = request
        for request in batch:
            self._inflight_keys.add(request.key())
        batch_message = RequestBatch(requests=tuple(batch))
        value = encode(batch_message)
        if PERF.decode_share:
            self._last_proposed = (value, batch_message)
        cid = max(self.next_propose_cid, self.next_cid)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            # One pending span per request: arrival at the leader through
            # inclusion in this proposal (the batching wait of §IV).
            for request in batch:
                entry = self.pending.get(request.key())
                arrival = entry[1] if entry is not None else self.sim.now
                tracer.end(
                    tracer.begin(
                        "request.pending",
                        tracer.for_request(request),
                        process=self.address,
                        start=arrival,
                        cid=cid,
                    )
                )
        propose = Propose(
            sender=self.address,
            cid=cid,
            epoch=self.regency,
            value=value,
            timestamp=self.sim.now,
        )
        self.next_propose_cid = cid + 1
        self.stats["proposals"] += 1
        occupancy = self.next_propose_cid - self.next_cid
        self.stats["pipeline_occupancy_sum"] += occupancy
        self.stats["pipeline_occupancy_samples"] += 1
        if occupancy > self.stats["pipeline_occupancy_peak"]:
            self.stats["pipeline_occupancy_peak"] = occupancy
        self.channel.broadcast(self.other_replicas(), propose)
        self._handle_propose_locally(propose)

    # ------------------------------------------------------------------
    # consensus: PROPOSE / WRITE / ACCEPT
    # ------------------------------------------------------------------

    def _instance(self, cid: int, epoch: int) -> Instance:
        instance = self.instances.get(cid)
        if instance is None:
            instance = Instance(cid, epoch)
            self.instances[cid] = instance
        elif epoch > instance.epoch:
            self._trace_abort_instance(instance)
            instance.advance_epoch(epoch)
        return instance

    # -- tracing hooks (no-ops unless a SpanTracer is installed) --------

    def _trace_open_instance(self, instance: Instance, batch, message: Propose) -> None:
        tracer = self.sim.tracer
        if tracer is None or not tracer.enabled:
            return
        if batch is not None and batch.requests:
            tids = tuple(request_trace_id(r) for r in batch.requests)
            primary, extra = tids[0], tids[1:]
        else:
            # Empty (gap-filling) batch: no request to derive an id from.
            primary, extra = f"cid:{message.cid}@{self.address}", ()
        span = tracer.begin(
            "consensus",
            primary,
            process=self.address,
            trace_ids=extra,
            cid=message.cid,
            epoch=message.epoch,
            leader=message.sender,
            batch=len(batch.requests) if batch is not None else 0,
        )
        write = tracer.begin(
            "consensus.write", primary, parent=span, process=self.address
        )
        instance.obs = {"span": span, "write": write, "accept": None, "wait": None}

    def _trace_abort_instance(self, instance: Instance) -> None:
        obs, instance.obs = instance.obs, None
        tracer = self.sim.tracer
        if obs is None or tracer is None:
            return
        for key in ("write", "accept", "wait", "span"):
            span = obs.get(key)
            if span is not None:
                tracer.end(span, aborted=True)

    def _validate_batch(self, value: bytes) -> RequestBatch | None:
        """Decode and authenticate a proposed batch (Byzantine leader guard).

        Besides signatures and duplicates, per-client sequence numbers
        must be increasing *within* the batch: a Byzantine leader that
        reorders one client's requests would otherwise make the executor's
        sequence-based dedup silently censor the displaced ones.
        """
        last = self._last_proposed
        if PERF.decode_share and last is not None and value is last[0]:
            # Our own proposal: every request in it was verified when it
            # arrived, and the value bytes are identical by identity.
            return last[1]
        try:
            batch = _decode_shared(value)
        except DecodeError:
            return None
        if not isinstance(batch, RequestBatch):
            return None
        highest: dict[str, int] = {}
        for request in batch.requests:
            if not isinstance(request, ClientRequest) or request.unordered:
                return None
            previous = highest.get(request.client_id)
            if previous is not None and request.sequence <= previous:
                return None  # duplicate or out-of-order within the batch
            highest[request.client_id] = request.sequence
            if not self._verify_request(request):
                return None
        return batch

    def _buffer_future(self, message) -> None:
        """Hold a message for a near-future slot.

        The gap is still reported to state transfer — the buffered
        messages only help once the missing prefix is installed (they are
        the live traffic a recovering replica would otherwise keep
        missing while it chases a moving target).
        """
        self.state_transfer.notice_gap(message.cid)
        if message.cid > self.next_cid + self.future_window:
            return  # too far ahead to be worth holding
        self._future_buffer.setdefault(message.cid, []).append(message)
        # Keep the buffer from accumulating stale entries.
        for cid in [c for c in self._future_buffer if c < self.next_cid]:
            del self._future_buffer[cid]

    def _drain_future(self) -> None:
        """Replay buffered messages that moved inside the pipeline window."""
        if self._draining_future:
            return
        self._draining_future = True
        try:
            while True:
                for cid in [c for c in self._future_buffer if c < self.next_cid]:
                    del self._future_buffer[cid]
                window_end = self.next_cid + self.config.pipeline_depth
                ready = sorted(c for c in self._future_buffer if c < window_end)
                if not ready:
                    return
                for cid in ready:
                    batch = self._future_buffer.pop(cid, None)
                    if batch is None:
                        continue
                    for message in batch:
                        handler = self._dispatch_table.get(type(message))
                        if handler is not None:
                            handler(self, message)
        finally:
            self._draining_future = False

    def on_propose(self, message: Propose, from_sync: bool = False) -> None:
        if message.cid < self.next_cid:
            return  # old slot, already decided
        if message.cid >= self.next_cid + self.config.pipeline_depth:
            self._buffer_future(message)
            return
        if message.epoch != self.regency:
            return
        if not from_sync and message.sender != self.leader:
            return
        instance = self._instance(message.cid, message.epoch)
        if instance.decided:
            # Decided here but not yet released (a lower cid is still
            # open). A new regency may legitimately re-propose the slot
            # for the peers that missed the decision; re-echo our votes
            # iff the value matches what we decided — never two values.
            if digest(message.value) != instance.decided_digest:
                return
            if instance.proposal_value is None:
                value_digest = instance.set_proposal(
                    message.value, message.timestamp, batch=instance.decided_batch
                )
                instance.write_sent = True
                write = WriteMsg(
                    sender=self.address,
                    cid=message.cid,
                    epoch=message.epoch,
                    value_digest=value_digest,
                )
                self.channel.broadcast(self.other_replicas(), write)
                instance.add_write(self.address, value_digest)
                self._advance_instance(instance)
            return
        if instance.proposal_value is not None:
            return
        batch = self._validate_batch(message.value)
        if batch is None and message.value != b"":
            # Malformed or forged batch: suspect the leader.
            self.synchronizer.suspect()
            return
        value_digest = instance.set_proposal(
            message.value,
            message.timestamp,
            batch=batch if PERF.decode_share else None,
        )
        self._trace_open_instance(instance, batch, message)
        instance.write_sent = True
        write = WriteMsg(
            sender=self.address,
            cid=message.cid,
            epoch=message.epoch,
            value_digest=value_digest,
        )
        self.channel.broadcast(self.other_replicas(), write)
        instance.add_write(self.address, value_digest)
        self._advance_instance(instance)

    def _handle_propose_locally(self, propose: Propose) -> None:
        self.on_propose(propose)

    def on_write(self, message: WriteMsg) -> None:
        if message.cid < self.next_cid or message.epoch != self.regency:
            return
        if message.cid >= self.next_cid + self.config.pipeline_depth:
            self._buffer_future(message)
            return
        if not self.view.contains(message.sender):
            return
        instance = self._instance(message.cid, message.epoch)
        instance.add_write(message.sender, message.value_digest)
        self._advance_instance(instance)

    def on_accept(self, message: AcceptMsg) -> None:
        if message.cid < self.next_cid or message.epoch != self.regency:
            return
        if message.cid >= self.next_cid + self.config.pipeline_depth:
            self._buffer_future(message)
            return
        if not self.view.contains(message.sender):
            return
        instance = self._instance(message.cid, message.epoch)
        instance.add_accept(message.sender, message.value_digest)
        self._advance_instance(instance)

    def _advance_instance(self, instance: Instance) -> None:
        if instance.proposal_digest is None:
            return
        if not instance.accept_sent and instance.has_write_quorum(self.quorum_write()):
            instance.accept_sent = True
            obs, tracer = instance.obs, self.sim.tracer
            if obs is not None and tracer is not None:
                tracer.end(obs["write"], votes=len(instance.writes))
                obs["accept"] = tracer.begin(
                    "consensus.accept",
                    obs["span"].trace_id,
                    parent=obs["span"],
                    process=self.address,
                )
            accept = AcceptMsg(
                sender=self.address,
                cid=instance.cid,
                epoch=instance.epoch,
                value_digest=instance.proposal_digest,
            )
            self.channel.broadcast(self.other_replicas(), accept)
            instance.add_accept(self.address, instance.proposal_digest)
        if (
            not instance.decided
            and instance.accept_sent
            and instance.has_accept_quorum(self.quorum_accept())
        ):
            instance.decide()
            obs, tracer = instance.obs, self.sim.tracer
            if obs is not None and tracer is not None:
                if obs["accept"] is not None:
                    tracer.end(obs["accept"], votes=len(instance.accepts))
                tracer.end(obs["span"], decided=True)
            self._on_decided(instance)

    # ------------------------------------------------------------------
    # decision and execution
    # ------------------------------------------------------------------

    def _on_decided(self, instance: Instance) -> None:
        self.stats["decided"] += 1
        if instance.cid != self.next_cid:
            # Decided ahead of the execution head: the instance stays in
            # ``instances`` until every lower cid decided too.
            self.stats["decided_out_of_order"] += 1
            obs, tracer = instance.obs, self.sim.tracer
            if obs is not None and tracer is not None:
                obs["wait"] = tracer.begin(
                    "consensus.pipeline_wait",
                    obs["span"].trace_id,
                    parent=obs["span"],
                    process=self.address,
                    cid=instance.cid,
                )
            head = self.instances.get(self.next_cid)
            if head is None or head.proposal_value is None:
                # We never even saw the head's PROPOSE — the prefix
                # decided while we were away, and if the group now goes
                # quiet no further traffic would reveal the gap.
                self.state_transfer.notice_gap(instance.cid)
        self._release_decided()
        self._drain_future()
        self._maybe_propose()

    def _release_decided(self) -> None:
        """Deliver buffered decisions strictly in cid order."""
        while True:
            head = self.instances.get(self.next_cid)
            if head is None or not head.decided:
                return
            self._deliver_decision(head)

    def _deliver_decision(self, instance: Instance) -> None:
        self.last_decided = instance.cid
        self.next_cid = instance.cid + 1
        value = instance.decided_value
        timestamp = instance.decided_timestamp
        self.decision_log.append((instance.cid, value, timestamp))
        obs, tracer = instance.obs, self.sim.tracer
        if obs is not None and tracer is not None and obs["wait"] is not None:
            tracer.end(obs["wait"])
        if self.storage is not None:
            fsynced = self.storage.on_decided(instance.cid, value, timestamp)
            if obs is not None and tracer is not None:
                tracer.point(
                    "wal.append",
                    obs["span"].trace_id,
                    parent=obs["span"],
                    process=self.address,
                    trace_ids=obs["span"].trace_ids,
                    cid=instance.cid,
                    fsynced=bool(fsynced),
                )
        del self.instances[instance.cid]

        if value != b"":
            # The batch was already decoded during validation; fall back to
            # a fresh decode only if it was not (e.g. caching disabled).
            batch = instance.decided_batch
            if batch is None:
                batch = decode(value)
            for request in batch.requests:
                key = request.key()
                self.pending.pop(key, None)
                self._inflight_keys.discard(key)
            self._exec_channel.put(
                (
                    self._install_epoch,
                    instance.cid,
                    batch.requests,
                    timestamp,
                    instance.epoch,
                )
            )
        self.synchronizer.on_decision()

    def _executor(self):
        """The execution thread(s), in decided order.

        With ``execution_lanes == 1`` this is the classic single execution
        thread — the determinism bottleneck of §IV-C(b). With more lanes
        (the §VII-b extension, following Alchieri et al.) this generator
        acts as the deterministic *dispatcher*: it walks decided batches
        in order, deduplicates, and hands each request to the lane its
        ``service.lane_of`` names; operations with lane ``None`` (and
        reconfigurations) are barriers that wait for every lane to drain.
        """
        serial = self.config.execution_lanes == 1
        while True:
            epoch, cid, requests, timestamp, regency = yield self._exec_channel.get()
            if epoch != self._install_epoch:
                continue  # stale: queued before a state-transfer install
            for order, request in enumerate(requests):
                if epoch != self._install_epoch:
                    break  # an install landed mid-batch
                if not self._dedup_dispatch(request):
                    continue
                lane = None
                if not serial and not request.operation.startswith(RECONFIG_MARKER):
                    lane = self.service.lane_of(request.operation)
                if serial or lane is None:
                    if not serial:
                        yield self._drain_lanes()
                    tracer = self.sim.tracer
                    span = None
                    if tracer is not None and tracer.enabled:
                        span = tracer.begin(
                            "request.execute",
                            tracer.for_request(request),
                            process=self.address,
                            cid=cid,
                            order=order,
                        )
                    cost = self.service.cost_of(request.operation)
                    if cost > 0:
                        yield self.sim.timeout(cost)
                    if epoch != self._install_epoch:
                        if span is not None:
                            tracer.end(span, aborted=True)
                        break  # an install landed during the cost wait
                    self._execute_one(cid, order, request, timestamp, regency)
                    if span is not None:
                        tracer.end(span)
                    post = self.service.post_cost()
                    if post > 0:
                        yield self.sim.timeout(post)
                else:
                    channel = self._lane_channels[lane % len(self._lane_channels)]
                    self._lane_inflight += 1
                    channel.put((epoch, cid, order, request, timestamp, regency))
            if epoch != self._install_epoch:
                continue
            self.executed_cid = cid
            if (cid + 1) % self.config.checkpoint_interval == 0:
                if not serial:
                    yield self._drain_lanes()  # checkpoint needs a quiesced state
                self._take_checkpoint(cid)

    def _dedup_dispatch(self, request: ClientRequest) -> bool:
        """Deterministic at-dispatch dedup (dispatch order = decided order)."""
        last = self._dispatched_seq.get(request.client_id, -1)
        if request.sequence <= last:
            return False
        self._dispatched_seq[request.client_id] = request.sequence
        return True

    def _lane_worker(self, channel):
        while True:
            epoch, cid, order, request, timestamp, regency = yield channel.get()
            tracer = self.sim.tracer
            span = None
            if tracer is not None and tracer.enabled and epoch == self._install_epoch:
                span = tracer.begin(
                    "request.execute",
                    tracer.for_request(request),
                    process=self.address,
                    cid=cid,
                    order=order,
                    lane=True,
                )
            if epoch == self._install_epoch:
                cost = self.service.cost_of(request.operation)
                if cost > 0:
                    yield self.sim.timeout(cost)
            if epoch == self._install_epoch:
                self._execute_one(cid, order, request, timestamp, regency)
                if span is not None:
                    tracer.end(span)
                post = self.service.post_cost()
                if post > 0:
                    yield self.sim.timeout(post)
            elif span is not None:
                tracer.end(span, aborted=True)
            self._lane_idle()

    def _lane_idle(self) -> None:
        self._lane_inflight -= 1
        if self._lane_inflight == 0 and self._drain_waiter is not None:
            waiter, self._drain_waiter = self._drain_waiter, None
            waiter.succeed(None)

    def _drain_lanes(self):
        """Event that triggers once every lane has finished its backlog."""
        from repro.sim.events import Event

        event = Event(self.sim, name=f"drain:{self.address}")
        if self._lane_inflight == 0:
            event.succeed(None)
        else:
            # The dispatcher is the only drain waiter, by construction.
            self._drain_waiter = event
        return event

    def _execute_one(
        self, cid: int, order: int, request: ClientRequest, timestamp: float, regency: int
    ) -> None:
        last = self._last_executed_seq.get(request.client_id, -1)
        if request.sequence <= last and self.config.execution_lanes == 1:
            # Duplicate delivered through replay. (With parallel lanes the
            # dispatcher already deduplicated, and cross-lane completion
            # order must not trigger false positives here.)
            return
        context = MessageContext(
            cid=cid,
            order=order,
            timestamp=timestamp,
            regency=regency,
            client_id=request.client_id,
            sequence=request.sequence,
            replica=self.address,
        )
        if request.operation.startswith(RECONFIG_MARKER):
            result = self._apply_reconfiguration(request.operation)
        else:
            try:
                result = self.service.execute(request.operation, context)
            except Exception as exc:  # deterministic service error
                result = encode(("error", str(exc)))
        self._last_executed_seq[request.client_id] = max(last, request.sequence)
        self.stats["executed"] += 1
        reply = Reply(
            replica=self.address,
            client_id=request.client_id,
            sequence=request.sequence,
            result=result,
            view_id=self.view.view_id,
            regency=self.regency,
        )
        self._last_reply[request.client_id] = reply
        self.stats["replies"] += 1
        if self.active:
            self.channel.send(request.reply_to, reply)

    def _snapshot_blob(self) -> bytes:
        """Service snapshot plus the client dedup table, as one blob.

        The dedup table is replica metadata that must travel with the
        service state: a recovering replica that installed state without
        it would re-execute retransmitted requests.
        """
        return encode(
            (
                self.service.snapshot(),
                tuple(sorted(self._last_executed_seq.items())),
            )
        )

    def _take_checkpoint(self, cid: int) -> None:
        self.checkpoint_cid = cid
        self.checkpoint_snapshot = self._snapshot_blob()
        self.decision_log = [entry for entry in self.decision_log if entry[0] > cid]
        self.stats["checkpoints"] += 1
        if self.storage is not None:
            self.storage.on_checkpoint(cid, self.checkpoint_snapshot)

    def recover_from_disk(self):
        """Restart-from-disk boot path.

        Validates the newest durable checkpoint, installs it, and queues
        the verified WAL tail through the normal execution path — the
        replica then only needs the suffix it missed from peers (a
        partial state transfer). If any digest failed, the disk is
        distrusted wholesale and the replica boots empty, falling back
        to the full f+1-verified transfer.

        Must be called *after* the service is fully configured (handler
        chains attached): installing a snapshot earlier would silently
        drop the handler-chain state it carries. Returns the
        :class:`repro.storage.RecoveredState` (also kept in
        ``recovered_from_disk``), or ``None`` without storage.
        """
        if self.storage is None:
            return None
        recovered = self.storage.recover()
        self.recovered_from_disk = recovered
        if recovered.damaged:
            return recovered
        if recovered.snapshot is not None:
            service_snapshot, dedup_table = decode(recovered.snapshot)
            self.service.install_snapshot(service_snapshot)
            self._last_executed_seq = dict(dedup_table)
            self._dispatched_seq = dict(dedup_table)
            self.checkpoint_cid = recovered.checkpoint_cid
            self.checkpoint_snapshot = recovered.snapshot
            self.executed_cid = recovered.checkpoint_cid
            self.last_decided = recovered.checkpoint_cid
            self.next_cid = recovered.checkpoint_cid + 1
        for cid, value, timestamp in recovered.entries:
            self.decision_log.append((cid, value, timestamp))
            self.last_decided = cid
            self.next_cid = cid + 1
            if value != b"":
                batch = decode(value)
                self._exec_channel.put(
                    (self._install_epoch, cid, batch.requests, timestamp, 0)
                )
        self.next_propose_cid = self.next_cid
        return recovered

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------

    def _apply_reconfiguration(self, operation: bytes) -> bytes:
        try:
            # Decode through a memoryview window past the marker — the
            # codec reads buffers directly, so the operation tail is
            # never copied into an intermediate bytes object.
            reconfig = decode(memoryview(operation)[len(RECONFIG_MARKER):])
        except DecodeError:
            return encode(("error", "malformed reconfiguration"))
        if not isinstance(reconfig, ReconfigRequest):
            return encode(("error", "malformed reconfiguration"))
        payload = encode((reconfig.admin, reconfig.join, reconfig.leave, reconfig.new_f))
        signature = Signature(reconfig.admin, reconfig.signature)
        if reconfig.admin != "admin" or not self.verifier.verify(signature, payload):
            return encode(("error", "unauthorized reconfiguration"))
        addresses = [a for a in self.view.addresses if a not in reconfig.leave]
        addresses.extend(a for a in reconfig.join if a not in addresses)
        if (
            tuple(addresses) == self.view.addresses
            and reconfig.new_f == self.view.f
        ):
            # Idempotent replay: a replica bootstrapped with the post-change
            # view re-executes this command during state-transfer replay;
            # the membership is already in effect, so keep the view id.
            return encode(("ok", self.view.view_id))
        try:
            new_view = View(self.view.view_id + 1, tuple(addresses), reconfig.new_f)
        except ValueError as exc:
            return encode(("error", str(exc)))
        self.view = new_view
        self.synchronizer.on_view_change()
        if not new_view.contains(self.address):
            self.halt()
        return encode(("ok", new_view.view_id))

    # ------------------------------------------------------------------
    # asynchronous push (server -> client)
    # ------------------------------------------------------------------

    def push(self, client_id: str, stream: str, order: tuple, payload: bytes) -> None:
        """Send an asynchronous message to a client-side listener."""
        if not self.active:
            return
        message = PushMessage(
            replica=self.address,
            client_id=client_id,
            stream=stream,
            order=order,
            payload=payload,
        )
        self.stats["pushes"] += 1
        self.channel.send(client_id, message)

    # ------------------------------------------------------------------
    # watchdog: request timeouts trigger the synchronization phase
    # ------------------------------------------------------------------

    def _watchdog(self):
        interval = self.config.request_timeout / 4
        while True:
            yield self.sim.timeout(interval)
            if not self.active:
                return  # halted (removed or rejuvenated): stop ticking
            if self.synchronizer.in_progress or self.state_transfer.in_progress:
                continue  # escalation is handled by the sync timer
            now = self.sim.now
            if now - self.last_progress <= self.config.request_timeout:
                continue
            aged = False
            if self.pending:
                oldest = min(arrival for _request, arrival in self.pending.values())
                aged = now - oldest > self.config.request_timeout
                if aged:
                    self.synchronizer.suspect()
            if self.instances and (aged or not self.pending):
                # Consensus slots we opened never resolved — with
                # pipelining the rest of the group may have decided them
                # and gone quiet (our quorum messages were lost), in
                # which case no further traffic reveals the gap and only
                # a state transfer can. If instead the whole group is
                # stalled, the probe aborts on stale replies and the
                # suspicion above drives the leader change.
                self.state_transfer.notice_gap(max(self.instances), force=True)

    # ------------------------------------------------------------------
    # dispatch table
    # ------------------------------------------------------------------

    _dispatch_table = {
        ClientRequest: _on_client_request,
        Propose: on_propose,
        WriteMsg: on_write,
        AcceptMsg: on_accept,
        Stop: lambda self, m: self.synchronizer.on_stop(m),
        StopData: lambda self, m: self.synchronizer.on_stop_data(m),
        Sync: lambda self, m: self.synchronizer.on_sync(m),
        StateRequest: lambda self, m: self.state_transfer.on_request(m),
        StateReply: lambda self, m: self.state_transfer.on_reply(m),
    }
