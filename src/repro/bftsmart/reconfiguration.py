"""Reconfiguration: adding and removing replicas at runtime.

BFT-SMaRt lets a trusted administrator change the group membership by
submitting a signed reconfiguration command through the same total order
as client requests; every replica applies the view change at the same
logical instant. The :class:`Administrator` here builds those commands
and submits them through an ordinary :class:`ServiceProxy`.
"""

from __future__ import annotations

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.messages import ReconfigRequest
from repro.bftsmart.replica import RECONFIG_MARKER
from repro.bftsmart.view import View
from repro.crypto import KeyStore, Signer
from repro.wire import decode, encode


class Administrator:
    """Builds and submits signed membership changes.

    The principal name must be ``"admin"`` — replicas only accept
    reconfigurations signed by that identity (BFT-SMaRt's TTP).
    """

    def __init__(self, proxy: ServiceProxy, keystore: KeyStore) -> None:
        self.proxy = proxy
        self._signer = Signer("admin", keystore)

    def build_operation(
        self, join: tuple = (), leave: tuple = (), new_f: int | None = None
    ) -> bytes:
        """The operation bytes for a membership change."""
        if new_f is None:
            new_f = self.proxy.view.f
        payload = encode(("admin", tuple(join), tuple(leave), new_f))
        request = ReconfigRequest(
            admin="admin",
            join=tuple(join),
            leave=tuple(leave),
            new_f=new_f,
            signature=self._signer.sign(payload).tag,
        )
        return RECONFIG_MARKER + encode(request)

    def reconfigure(self, join: tuple = (), leave: tuple = (), new_f: int | None = None):
        """Submit the change; returns the invocation event.

        The event's value decodes to ``("ok", new_view_id)`` on success.
        On success the administrator's own proxy view is updated so
        subsequent commands reach the new membership.
        """
        operation = self.build_operation(join=join, leave=leave, new_f=new_f)
        if new_f is None:
            new_f = self.proxy.view.f
        event = self.proxy.invoke_ordered(operation)

        def on_done(ev) -> None:
            if not ev.ok:
                return
            status, view_id = decode(ev.value)
            if status != "ok":
                return
            addresses = [a for a in self.proxy.view.addresses if a not in leave]
            addresses.extend(a for a in join if a not in addresses)
            self.proxy.update_view(View(view_id, tuple(addresses), new_f))

        event.add_callback(on_done)
        return event
