"""Reconfiguration: adding and removing replicas at runtime.

BFT-SMaRt lets a trusted administrator change the group membership by
submitting a signed reconfiguration command through the same total order
as client requests; every replica applies the view change at the same
logical instant. The :class:`Administrator` here builds those commands
and submits them through an ordinary :class:`ServiceProxy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.messages import ReconfigRequest
from repro.bftsmart.replica import RECONFIG_MARKER
from repro.bftsmart.view import View
from repro.crypto import KeyStore, Signer
from repro.wire import decode, encode


@dataclass(frozen=True)
class ReconfigResult:
    """Typed outcome of one checked reconfiguration.

    ``status`` is one of:

    ``"applied"``
        The group decided and executed the membership change;
        ``view_id``/``view`` carry the resulting view.
    ``"rejected"``
        The group executed the command but refused it (bad signature,
        membership below 3f+1, ...); ``detail`` carries the reason.
        Deterministic — never retried.
    ``"timed-out"``
        No decision reached within the deadline across every retry;
        the change may still land later (callers must treat it as
        in-doubt, exactly like a real admin console would).
    """

    status: str
    view_id: int | None = None
    view: View | None = None
    attempts: int = 1
    elapsed: float = 0.0
    detail: str = ""

    @property
    def applied(self) -> bool:
        return self.status == "applied"


class Administrator:
    """Builds and submits signed membership changes.

    The principal name must be ``"admin"`` — replicas only accept
    reconfigurations signed by that identity (BFT-SMaRt's TTP).
    """

    def __init__(self, proxy: ServiceProxy, keystore: KeyStore) -> None:
        self.proxy = proxy
        self._signer = Signer("admin", keystore)

    def build_operation(
        self, join: tuple = (), leave: tuple = (), new_f: int | None = None
    ) -> bytes:
        """The operation bytes for a membership change."""
        if new_f is None:
            new_f = self.proxy.view.f
        payload = encode(("admin", tuple(join), tuple(leave), new_f))
        request = ReconfigRequest(
            admin="admin",
            join=tuple(join),
            leave=tuple(leave),
            new_f=new_f,
            signature=self._signer.sign(payload).tag,
        )
        return RECONFIG_MARKER + encode(request)

    def reconfigure(self, join: tuple = (), leave: tuple = (), new_f: int | None = None):
        """Submit the change; returns the invocation event.

        The event's value decodes to ``("ok", new_view_id)`` on success.
        On success the administrator's own proxy view is updated so
        subsequent commands reach the new membership.
        """
        operation = self.build_operation(join=join, leave=leave, new_f=new_f)
        if new_f is None:
            new_f = self.proxy.view.f
        event = self.proxy.invoke_ordered(operation)

        def on_done(ev) -> None:
            if not ev.ok:
                return
            status, view_id = decode(ev.value)
            if status != "ok":
                return
            addresses = [a for a in self.proxy.view.addresses if a not in leave]
            addresses.extend(a for a in join if a not in addresses)
            self.proxy.update_view(View(view_id, tuple(addresses), new_f))

        event.add_callback(on_done)
        return event

    def reconfigure_checked(
        self,
        join: tuple = (),
        leave: tuple = (),
        new_f: int | None = None,
        timeout: float = 2.0,
        attempts: int = 3,
        backoff: float = 2.0,
    ):
        """Submit the change with a deadline, retries and a typed result.

        Returns an event that always *succeeds* with a
        :class:`ReconfigResult`, so callers (the recovery orchestrator
        above all) can branch on ``applied`` / ``timed-out`` /
        ``rejected`` instead of hanging on a bare invocation. Each
        attempt waits ``timeout * backoff**i`` before the next; a
        deterministic rejection from the group is surfaced immediately
        and never retried (resubmitting an unauthorized or invalid
        change cannot help). Re-submissions of an already-applied change
        are idempotent on the replicas, so a late first attempt racing a
        retry is safe.
        """
        sim = self.proxy.sim
        done = sim.event(name="reconfig-checked")
        started = sim.now
        state = {"attempt": 0, "settled": False}

        def settle(status: str, view_id=None, detail: str = "") -> None:
            if state["settled"]:
                return
            state["settled"] = True
            done.succeed(
                ReconfigResult(
                    status=status,
                    view_id=view_id,
                    view=self.proxy.view if status == "applied" else None,
                    attempts=state["attempt"],
                    elapsed=sim.now - started,
                    detail=detail,
                )
            )

        def retry_or_timeout(detail: str) -> None:
            if state["attempt"] >= attempts:
                settle("timed-out", detail=detail)
            else:
                launch()

        def launch() -> None:
            if state["settled"]:
                return
            state["attempt"] += 1
            attempt_no = state["attempt"]
            deadline = timeout * (backoff ** (attempt_no - 1))
            timer = sim.timer(deadline, expire, attempt_no)
            event = self.reconfigure(join=join, leave=leave, new_f=new_f)

            def on_done(ev) -> None:
                sim.cancel_timer(timer)
                if state["settled"]:
                    return
                if not ev.ok:
                    ev.defused = True
                    retry_or_timeout("invocation gave up before a decision")
                    return
                status, info = decode(ev.value)
                if status == "ok":
                    settle("applied", view_id=info)
                else:
                    settle("rejected", detail=str(info))

            event.add_callback(on_done)

        def expire(attempt_no: int) -> None:
            if state["settled"] or attempt_no != state["attempt"]:
                return
            retry_or_timeout(
                f"no decision after {state['attempt']} attempt(s) "
                f"within the deadline"
            )

        launch()
        return done
