"""Static configuration of a replica group.

Mirrors BFT-SMaRt's ``system.config``: group size ``n`` tolerating ``f``
Byzantine replicas (``n >= 3f + 1``), batching bounds, timeouts and the
checkpoint period.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def replica_address(index: int) -> str:
    """Canonical network address of replica ``index``."""
    return f"replica-{index}"


@dataclass(frozen=True)
class GroupConfig:
    """Parameters shared by every member of one replication group.

    Attributes
    ----------
    n, f:
        Group size and fault threshold; ``n >= 3f + 1`` is enforced.
    batch_max:
        Maximum requests the leader packs into one PROPOSE.
    batch_wait:
        How long the leader waits to fill a batch before proposing what it
        has (seconds; 0 proposes immediately when idle).
    pipeline_depth:
        Maximum consensus instances the leader keeps in flight at once
        (BFT-SMaRt's consensus pipelining). 1 reproduces strictly
        sequential Mod-SMaRt: the leader idles for a full
        PROPOSE/WRITE/ACCEPT round-trip between batches. Depths > 1 let
        instance ``cid+1..cid+depth-1`` start while ``cid`` is still
        deciding; every replica buffers out-of-order decisions and
        releases them strictly in cid order, so execution (and the
        deterministic timestamps of §IV-C) is unchanged.
    request_timeout:
        Age at which an undecided client request makes a replica suspect
        the leader and start the synchronization phase.
    sync_timeout:
        How long a replica waits for a started synchronization phase to
        finish before escalating to the next regency.
    checkpoint_interval:
        Number of decided consensus instances between service snapshots.
    reply_quorum:
        Matching replies a client needs for an ordered request (f + 1).
    processing_delay:
        Simulated CPU cost a replica spends per delivered request
        (seconds); models the Java execution cost in the paper's testbed.
    execution_lanes:
        Parallel execution lanes (the §VII-b extension, following
        Alchieri et al.): operations whose ``service.lane_of`` values
        differ may execute concurrently; 1 = classic serial execution.
    fsync_policy:
        When the write-ahead log fsyncs (``every-decision`` /
        ``every-n`` / ``checkpoint-only``); only meaningful when the
        replica is built with a :class:`repro.storage.ReplicaStorage`.
    fsync_interval:
        Appends between barriers under the ``every-n`` policy.
    checkpoint_retention:
        Durable checkpoint generations kept on disk.
    state_retry_interval:
        Minimum time between two state-transfer requests (seconds);
        previously the ``StateTransfer.RETRY_INTERVAL`` class constant.
    """

    n: int = 4
    f: int = 1
    batch_max: int = 400
    batch_wait: float = 0.002
    pipeline_depth: int = 4
    request_timeout: float = 2.0
    sync_timeout: float = 4.0
    checkpoint_interval: int = 200
    processing_delay: float = 0.0
    execution_lanes: int = 1
    fsync_policy: str = "every-decision"
    fsync_interval: int = 8
    checkpoint_retention: int = 2
    state_retry_interval: float = 0.5
    addresses: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError("f must be non-negative")
        if self.n < 3 * self.f + 1:
            raise ValueError(f"n={self.n} violates n >= 3f+1 for f={self.f}")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.execution_lanes < 1:
            raise ValueError("execution_lanes must be >= 1")
        if self.fsync_policy not in ("every-decision", "every-n", "checkpoint-only"):
            raise ValueError(f"unknown fsync policy {self.fsync_policy!r}")
        if self.fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        if self.checkpoint_retention < 1:
            raise ValueError("checkpoint_retention must be >= 1")
        if self.state_retry_interval <= 0:
            raise ValueError("state_retry_interval must be positive")
        if not self.addresses:
            object.__setattr__(
                self, "addresses", tuple(replica_address(i) for i in range(self.n))
            )
        if len(self.addresses) != self.n:
            raise ValueError("addresses must list exactly n replicas")

    @property
    def write_quorum(self) -> int:
        """Matching WRITEs needed to send ACCEPT: ceil((n + f + 1) / 2)."""
        return (self.n + self.f + 2) // 2

    @property
    def accept_quorum(self) -> int:
        """Matching ACCEPTs needed to decide: ceil((n + f + 1) / 2)."""
        return (self.n + self.f + 2) // 2

    @property
    def stop_quorum(self) -> int:
        """STOPs needed to install a new regency (2f + 1)."""
        return 2 * self.f + 1

    @property
    def stop_join_threshold(self) -> int:
        """STOPs that make a replica join a synchronization (f + 1)."""
        return self.f + 1

    @property
    def stop_data_quorum(self) -> int:
        """STOP-DATAs the new leader collects before SYNC (n - f)."""
        return self.n - self.f

    @property
    def reply_quorum(self) -> int:
        """Matching replies a client waits for (f + 1)."""
        return self.f + 1

    @property
    def unordered_quorum(self) -> int:
        """Matching replies for read-only (unordered) requests (n - f)."""
        return self.n - self.f
