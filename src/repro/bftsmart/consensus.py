"""Per-instance consensus state (VP-Consensus inside Mod-SMaRt).

One :class:`Instance` tracks a single consensus slot ``cid`` through the
PROPOSE → WRITE → ACCEPT phases. The replica drives the protocol; this
module only accounts votes and answers quorum questions, which keeps the
quorum logic independently testable.
"""

from __future__ import annotations

from repro.crypto import digest


class Instance:
    """Bookkeeping for one consensus slot."""

    def __init__(self, cid: int, epoch: int) -> None:
        self.cid = cid
        self.epoch = epoch
        self.proposal_value: bytes | None = None
        self.proposal_digest: bytes | None = None
        self.proposal_timestamp: float = 0.0
        #: Decoded RequestBatch of the proposal, when the replica already
        #: decoded it during validation (spares a re-decode at decision).
        self.proposal_batch = None
        #: sender -> digest voted in the WRITE phase of the current epoch.
        self.writes: dict[str, bytes] = {}
        #: sender -> digest voted in the ACCEPT phase of the current epoch.
        self.accepts: dict[str, bytes] = {}
        self.write_sent = False
        self.accept_sent = False
        self.decided = False
        self.decided_value: bytes | None = None
        self.decided_digest: bytes | None = None
        self.decided_timestamp: float = 0.0
        self.decided_batch = None
        #: Observability state (dict of open spans) set by the replica
        #: when a tracer is installed; ``None`` otherwise. The protocol
        #: never reads it.
        self.obs = None

    # -- epoch handling -------------------------------------------------------

    def advance_epoch(self, epoch: int) -> None:
        """Reset vote state for a higher epoch (after a leader change)."""
        if epoch <= self.epoch:
            raise ValueError(f"epoch must grow: {epoch} <= {self.epoch}")
        self.epoch = epoch
        self.proposal_value = None
        self.proposal_digest = None
        self.proposal_batch = None
        self.writes.clear()
        self.accepts.clear()
        self.write_sent = False
        self.accept_sent = False

    # -- proposal ---------------------------------------------------------------

    def set_proposal(self, value: bytes, timestamp: float, batch=None) -> bytes:
        """Record the leader's proposal; returns its digest.

        ``batch`` optionally carries the already-decoded RequestBatch so
        the decision path does not have to decode ``value`` again.
        """
        self.proposal_value = value
        self.proposal_digest = digest(value)
        self.proposal_timestamp = timestamp
        self.proposal_batch = batch
        return self.proposal_digest

    # -- voting -------------------------------------------------------------------

    def add_write(self, sender: str, value_digest: bytes) -> None:
        """Record a WRITE vote (first vote per sender wins)."""
        self.writes.setdefault(sender, value_digest)

    def add_accept(self, sender: str, value_digest: bytes) -> None:
        self.accepts.setdefault(sender, value_digest)

    def write_count(self, value_digest: bytes) -> int:
        return sum(1 for d in self.writes.values() if d == value_digest)

    def accept_count(self, value_digest: bytes) -> int:
        return sum(1 for d in self.accepts.values() if d == value_digest)

    def has_write_quorum(self, quorum: int) -> bool:
        """Does the *proposed* digest hold a WRITE quorum?"""
        return (
            self.proposal_digest is not None
            and self.write_count(self.proposal_digest) >= quorum
        )

    def has_accept_quorum(self, quorum: int) -> bool:
        return (
            self.proposal_digest is not None
            and self.accept_count(self.proposal_digest) >= quorum
        )

    def decide(self) -> None:
        if self.proposal_value is None:
            raise RuntimeError(f"cid {self.cid}: cannot decide without a proposal")
        self.decided = True
        self.decided_value = self.proposal_value
        self.decided_digest = self.proposal_digest
        self.decided_timestamp = self.proposal_timestamp
        self.decided_batch = self.proposal_batch

    def __repr__(self) -> str:
        state = "decided" if self.decided else (
            "accepting" if self.accept_sent else ("writing" if self.write_sent else "idle")
        )
        return f"<Instance cid={self.cid} epoch={self.epoch} {state}>"
