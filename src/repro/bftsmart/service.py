"""The replicated-service abstraction (BFT-SMaRt's ``Executable``/``Recoverable``).

A service executes opaque operation bytes deterministically: given the
same operation and :class:`MessageContext`, every correct replica must
produce the same result bytes and state transition. The context carries
the consensus-assigned ordering data and the leader's timestamp — the
exact information SMaRt-SCADA's Adapter feeds to ContextInfo (§IV-C).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.wire import decode, encode

if typing.TYPE_CHECKING:
    from repro.bftsmart.replica import ServiceReplica


@dataclass(frozen=True)
class MessageContext:
    """Deterministic execution context for one operation.

    Attributes
    ----------
    cid:
        Consensus instance that ordered the operation.
    order:
        Position of the operation inside the decided batch.
    timestamp:
        The leader's clock reading carried in the PROPOSE; identical at
        every replica, hence safe to use for event timestamps.
    regency:
        Regency under which the instance decided.
    client_id, sequence:
        Identity of the originating request.
    replica:
        Address of the replica executing (never use for state!).
    """

    cid: int
    order: int
    timestamp: float
    regency: int
    client_id: str
    sequence: int
    replica: str

    @property
    def order_key(self) -> tuple:
        """Total-order key ``(cid, order)`` for tagging derived messages."""
        return (self.cid, self.order)


class Service:
    """Base class for deterministic replicated services."""

    def __init__(self) -> None:
        self._replica: "ServiceReplica | None" = None

    def bind(self, replica: "ServiceReplica") -> None:
        """Called by the replica hosting this service instance."""
        self._replica = replica

    @property
    def replica(self) -> "ServiceReplica":
        if self._replica is None:
            raise RuntimeError("service is not bound to a replica")
        return self._replica

    # -- required interface -------------------------------------------------

    def execute(self, operation: bytes, ctx: MessageContext) -> bytes:
        """Apply ``operation``; must be deterministic given (operation, ctx)."""
        raise NotImplementedError

    def snapshot(self) -> bytes:
        """Serialize the full service state for checkpoints/state transfer."""
        raise NotImplementedError

    def install_snapshot(self, data: bytes) -> None:
        """Replace the service state with a snapshot from a peer."""
        raise NotImplementedError

    # -- optional interface -------------------------------------------------

    def execute_unordered(self, operation: bytes) -> bytes:
        """Read-only execution outside the total order (default: refuse)."""
        raise NotImplementedError(f"{type(self).__name__} has no read-only path")

    def cost_of(self, operation: bytes) -> float:
        """Simulated CPU seconds one execution occupies the replica for.

        The default (0.0) makes execution free; the SCADA service
        overrides this with its calibrated cost model.
        """
        return 0.0

    def post_cost(self) -> float:
        """Extra cost discovered *during* the last execution.

        Charged by the executor after :meth:`execute` returns — e.g. the
        SCADA service reports event persistence work here, which is only
        known once the handlers have run.
        """
        return 0.0

    def lane_of(self, operation: bytes) -> int | None:
        """Execution lane for parallel execution (§VII-b extension).

        Operations whose lanes differ are promised by the service to
        commute (touch disjoint state) and may execute concurrently when
        the replica is configured with ``execution_lanes > 1``. ``None``
        (the default) means the operation conflicts with everything and
        forces a barrier — so a service that never overrides this always
        executes serially, exactly like classic BFT-SMaRt.

        The contract mirrors Alchieri et al.'s conflict classes: the
        service, not the library, owns the commutativity claim. Per-client
        request ordering across different lanes is NOT preserved; a
        service that needs it must fold the client id into the lane.
        """
        return None

    def push(self, client_id: str, stream: str, order: tuple, payload: bytes) -> None:
        """Send an asynchronous message to a registered client listener."""
        self.replica.push(client_id, stream, order, payload)


class EchoService(Service):
    """Returns the operation unchanged; the state is a running digest.

    Used by unit tests and the §V-B "BFT-SMaRt is not the bottleneck"
    microbenchmark.
    """

    def __init__(self) -> None:
        super().__init__()
        self.executed = 0

    def execute(self, operation: bytes, ctx: MessageContext) -> bytes:
        self.executed += 1
        return operation

    def execute_unordered(self, operation: bytes) -> bytes:
        return operation

    def snapshot(self) -> bytes:
        return encode(self.executed)

    def install_snapshot(self, data: bytes) -> None:
        self.executed = decode(data)


class CounterService(Service):
    """A counter supporting ``add``/``get``; the classic SMR demo service."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0

    def execute(self, operation: bytes, ctx: MessageContext) -> bytes:
        verb, argument = decode(operation)
        if verb == "add":
            self.value += argument
        elif verb != "get":
            raise ValueError(f"unknown counter operation {verb!r}")
        return encode(self.value)

    def execute_unordered(self, operation: bytes) -> bytes:
        verb, _ = decode(operation)
        if verb != "get":
            raise ValueError("only 'get' may run unordered")
        return encode(self.value)

    def snapshot(self) -> bytes:
        return encode(self.value)

    def install_snapshot(self, data: bytes) -> None:
        self.value = decode(data)


class KeyValueService(Service):
    """A small replicated KV store used by integration and property tests."""

    def __init__(self) -> None:
        super().__init__()
        self.data: dict = {}

    def execute(self, operation: bytes, ctx: MessageContext) -> bytes:
        request = decode(operation)
        verb = request[0]
        if verb == "put":
            _, key, value = request
            self.data[key] = value
            return encode(("ok", None))
        if verb == "get":
            _, key = request
            return encode(("ok", self.data.get(key)))
        if verb == "delete":
            _, key = request
            return encode(("ok", self.data.pop(key, None)))
        raise ValueError(f"unknown kv operation {verb!r}")

    def execute_unordered(self, operation: bytes) -> bytes:
        request = decode(operation)
        if request[0] != "get":
            raise ValueError("only 'get' may run unordered")
        return encode(("ok", self.data.get(request[1])))

    def snapshot(self) -> bytes:
        return encode(sorted(self.data.items()))

    def install_snapshot(self, data: bytes) -> None:
        self.data = dict(decode(data))
