"""Client side of the replication library.

:class:`ServiceProxy` is what BFT-SMaRt calls the ``ServiceProxy``: it
signs and multicasts requests to every replica, collects replies, and
delivers a result once ``f+1`` identical replies arrived (``n-f`` for
unordered/read-only requests). It also hosts the :class:`PushVoter`, the
client-side half of the asynchronous server→client channel the paper
relies on for ItemUpdate/EventUpdate delivery: each replica pushes its
copy, and the voter fires the registered handler exactly once per
``(stream, order)`` after ``f+1`` matching copies.
"""

from __future__ import annotations

from repro.bftsmart.channel import SecureChannel
from repro.bftsmart.messages import ClientRequest, PushMessage, Reply
from repro.bftsmart.replica import request_signing_payload, seed_signing_payload
from repro.perf import PERF
from repro.bftsmart.view import View
from repro.crypto import KeyStore, Signer, digest
from repro.net.network import Network
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class QuorumDivergence(Exception):
    """An unordered read's replies diverged beyond quorum reach.

    Raised (through the invocation event) when enough distinct answers
    arrived that no reply group can still collect ``n-f`` matching votes.
    Callers fall back to ordered execution, which always agrees.
    """


class _PendingInvocation:
    """Vote state for one outstanding request."""

    __slots__ = (
        "request",
        "event",
        "votes",
        "quorum",
        "attempts",
        "timer",
        "unordered",
        "span",
        "quorum_span",
    )

    def __init__(
        self,
        request: ClientRequest,
        event: Event,
        quorum: int,
        unordered: bool = False,
    ) -> None:
        self.request = request
        self.event = event
        #: result digest -> {replica: result bytes}
        self.votes: dict[bytes, dict] = {}
        self.quorum = quorum
        self.attempts = 1
        self.unordered = unordered
        #: The pending retransmission ScheduledCall; cancelled on quorum.
        self.timer = None
        #: Observability: the open "request" span and its reply-quorum
        #: child, or ``None`` when tracing is off.
        self.span = None
        self.quorum_span = None


class PushVoter:
    """Delivers replica pushes after f+1 matching copies, exactly once."""

    #: Retain at most this many delivered order-keys per stream for dedup.
    DEDUP_LIMIT = 50_000

    def __init__(self, view_provider) -> None:
        self._view_provider = view_provider
        self._votes: dict[tuple, set] = {}
        self._payloads: dict[tuple, bytes] = {}
        self._delivered: dict[str, set] = {}
        #: (stream, order) -> digest of the f+1-voted payload, kept (and
        #: trimmed) alongside ``_delivered`` so late or competing pushes
        #: can be compared against what actually won.
        self._delivered_digest: dict[tuple, bytes] = {}
        self._handlers: dict[str, object] = {}
        #: Optional observer ``fn(stream, order, replica)`` fired for each
        #: replica whose push payload disagreed with the voted delivery.
        #: Purely diagnostic (the intrusion detector's falsified-push
        #: feature); never affects delivery.
        self.on_deviant = None
        self.delivered_count = 0

    def set_handler(self, stream: str, handler) -> None:
        """Register ``handler(order, payload)`` for one stream."""
        self._handlers[stream] = handler

    def on_push(self, message: PushMessage) -> None:
        view: View = self._view_provider()
        if not view.contains(message.replica):
            return
        payload_digest = digest(message.payload)
        delivered = self._delivered.setdefault(message.stream, set())
        if message.order in delivered:
            won = self._delivered_digest.get((message.stream, message.order))
            if won is not None and won != payload_digest:
                # A straggler copy disagreeing with the voted delivery.
                self._note_deviant(message.stream, message.order, message.replica)
            return
        key = (message.stream, message.order, payload_digest)
        voters = self._votes.setdefault(key, set())
        voters.add(message.replica)
        self._payloads[key] = message.payload
        if len(voters) >= view.f + 1:
            self._delivered_digest[(message.stream, message.order)] = payload_digest
            self._deliver(message.stream, message.order, self._payloads[key])
            # Drop every candidate payload for this order; replicas that
            # voted a competing digest pushed a payload the quorum
            # contradicts.
            stale = [k for k in self._votes if k[0] == message.stream and k[1] == message.order]
            for k in stale:
                if k[2] != payload_digest:
                    for deviant in sorted(self._votes[k]):
                        self._note_deviant(message.stream, message.order, deviant)
                self._votes.pop(k, None)
                self._payloads.pop(k, None)

    def _note_deviant(self, stream: str, order: tuple, replica: str) -> None:
        if self.on_deviant is not None:
            self.on_deviant(stream, order, replica)

    def _deliver(self, stream: str, order: tuple, payload: bytes) -> None:
        delivered = self._delivered.setdefault(stream, set())
        delivered.add(order)
        if len(delivered) > self.DEDUP_LIMIT:
            # Forget the oldest half; retransmissions that old are gone.
            for old in sorted(delivered)[: self.DEDUP_LIMIT // 2]:
                delivered.discard(old)
                self._delivered_digest.pop((stream, old), None)
        self.delivered_count += 1
        handler = self._handlers.get(stream)
        if handler is not None:
            handler(order, payload)


class ServiceProxy:
    """Issues requests to a replica group and votes on the replies."""

    #: Retransmission backoff: each retry waits ``backoff_factor`` times
    #: longer than the last, capped at ``backoff_cap * invoke_timeout``.
    backoff_factor = 2.0
    backoff_cap = 4.0
    #: Deterministic jitter fraction added on top of each backoff step.
    backoff_jitter = 0.1
    #: Opt-in: stamp the canonical trace id into the request's wire
    #: ``trace_id`` field. Off by default — stamping grows the frame, and
    #: message size feeds the latency model, so the default keeps a run's
    #: schedule byte-identical with tracing on or off. Derived ids
    #: (``req:<client>:<sequence>``) carry the linkage instead.
    trace_wire_ids = False

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        client_id: str,
        keystore: KeyStore,
        view: View,
        invoke_timeout: float = 1.0,
        max_attempts: int = 10,
        sequence_start: int = 0,
    ) -> None:
        self.sim = sim
        self.client_id = client_id
        self.view = view
        self.invoke_timeout = invoke_timeout
        self.max_attempts = max_attempts
        # Every proxy jitters from its own named stream: runs stay
        # reproducible per seed, and two proxies never thundering-herd
        # their retransmissions onto the same instant.
        self._backoff_rng = sim.rng.stream(f"client.{client_id}.backoff")

        self.endpoint = net.endpoint(client_id)
        self.endpoint.set_handler(self._on_network_message)
        self.channel = SecureChannel(self.endpoint, keystore)
        self.signer = Signer(client_id, keystore)
        self.pushes = PushVoter(lambda: self.view)
        self.pushes.on_deviant = self._on_push_deviant
        #: Winning digest of recently completed *ordered* requests, so a
        #: straggler reply from a lying replica — arriving after the f+1
        #: quorum popped the invocation — is still compared against the
        #: agreed result. Insertion-ordered and trimmed, like push dedup.
        self._recent_results: dict[int, bytes] = {}

        # A restarted client instance (proactive recovery) must begin
        # above every sequence its predecessor used, or the replicas'
        # dedup table silently swallows its requests.
        self._sequence = sequence_start - 1
        self._pending: dict[int, _PendingInvocation] = {}
        #: Set when a reply reveals a newer view than we hold (the harness
        #: refreshes the membership out of band, as BFT-SMaRt clients do
        #: through their view storage).
        self.view_stale = False
        #: Every replica address this proxy has ever known (across view
        #: updates). Late retransmissions broadcast to this union: after a
        #: leader change or reconfiguration the *current* view may be
        #: stale, and a request parked at removed members costs nothing.
        self._known_addresses: set = set(view.addresses)
        #: Optional observer ``fn(sequence, result, voters)`` fired when a
        #: quorum completes an invocation (chaos invariant monitors hook
        #: this to check results are backed by honest replicas).
        self.on_result = None
        self.stats = {
            "invocations": 0,
            "retransmissions": 0,
            "failures": 0,
            "read_divergences": 0,
        }

    # -- invoking --------------------------------------------------------------

    def invoke_ordered(self, operation: bytes, parent=None) -> Event:
        """Submit an ordered operation; the event triggers with the result.

        ``parent`` optionally names an upstream trace context (anything
        with ``trace_id``/``span_id``, e.g. a :class:`repro.obs.Span`):
        the request's derived trace id is aliased into that trace so the
        proxy layers and the BFT spans form one tree.
        """
        return self._invoke(operation, unordered=False, parent=parent)

    def invoke_unordered(self, operation: bytes, parent=None) -> Event:
        """Submit a read-only operation outside the total order."""
        return self._invoke(operation, unordered=True, parent=parent)

    def _invoke(self, operation: bytes, unordered: bool, parent=None) -> Event:
        self._sequence += 1
        sequence = self._sequence
        tracer = self.sim.tracer
        wire_trace_id = ""
        if tracer is not None and tracer.enabled:
            derived = f"req:{self.client_id}:{sequence}"
            if parent is not None:
                tracer.alias(derived, parent.trace_id)
            if self.trace_wire_ids:
                wire_trace_id = tracer.resolve(derived)
        request = ClientRequest(
            client_id=self.client_id,
            sequence=sequence,
            operation=operation,
            reply_to=self.client_id,
            unordered=unordered,
            mac=b"",
            trace_id=wire_trace_id,
        )
        request = self._sign(request)
        quorum = (
            self.view.n - self.view.f if unordered else self.view.f + 1
        )
        event = Event(self.sim, name=f"invoke:{self.client_id}:{sequence}")
        invocation = _PendingInvocation(request, event, quorum, unordered=unordered)
        if tracer is not None and tracer.enabled:
            invocation.span = tracer.begin(
                "request",
                tracer.for_request(request),
                parent=parent,
                process=self.client_id,
                client=self.client_id,
                sequence=sequence,
                unordered=unordered,
            )
        self._pending[sequence] = invocation
        self.stats["invocations"] += 1
        self._transmit(request)
        invocation.timer = self.sim.timer(
            self._retransmission_delay(invocation.attempts), self._retransmit, sequence
        )
        return event

    def _sign(self, request: ClientRequest) -> ClientRequest:
        payload = request_signing_payload(request)
        tag = self.signer.sign(payload).tag
        signed = ClientRequest(
            client_id=request.client_id,
            sequence=request.sequence,
            operation=request.operation,
            reply_to=request.reply_to,
            unordered=request.unordered,
            mac=tag,
            trace_id=request.trace_id,
        )
        if PERF.signing_cache:
            # The signed tuple excludes the MAC field, so the stamped
            # request's payload is the one just computed — seed it so the
            # replicas' verification path starts on a cache hit.
            seed_signing_payload(signed, payload)
        return signed

    def _transmit(self, request: ClientRequest, broadcast: bool = False) -> None:
        # Serialize-once multicast: the request is encoded a single time
        # and the payload bytes object is shared by every replica's
        # envelope (which is what lets the replicas share one decode).
        if broadcast and len(self._known_addresses) > len(self.view.addresses):
            targets = sorted(self._known_addresses)
        else:
            targets = list(self.view.addresses)
        self.channel.multicast(targets, request)

    def _retransmission_delay(self, attempts: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        ``attempts`` is the number of transmissions already performed; the
        first retry waits one ``invoke_timeout``, each further retry twice
        the previous wait, capped at ``backoff_cap`` timeouts so a client
        parked behind a long partition still probes at a bounded period.
        """
        scale = min(self.backoff_factor ** (attempts - 1), self.backoff_cap)
        jitter = 1.0 + self.backoff_jitter * self._backoff_rng.random()
        return self.invoke_timeout * scale * jitter

    def _retransmit(self, sequence: int) -> None:
        invocation = self._pending.get(sequence)
        if invocation is None:
            return
        if invocation.attempts >= self.max_attempts:
            self._pending.pop(sequence, None)
            self.stats["failures"] += 1
            self._close_spans(invocation, error="timeout")
            invocation.event.fail(
                TimeoutError(
                    f"request {sequence} got no quorum after "
                    f"{invocation.attempts} attempts"
                )
            )
            return
        invocation.attempts += 1
        self.stats["retransmissions"] += 1
        # From the first backoff step on, the view that selected the
        # original targets may be stale (leader change, reconfiguration):
        # broadcast to every replica this proxy has ever known.
        self._transmit(invocation.request, broadcast=True)
        invocation.timer = self.sim.timer(
            self._retransmission_delay(invocation.attempts), self._retransmit, sequence
        )

    def _close_spans(self, invocation: _PendingInvocation, **attrs) -> None:
        tracer = self.sim.tracer
        if tracer is None or invocation.span is None:
            return
        if invocation.quorum_span is not None:
            tracer.end(invocation.quorum_span, **attrs)
        tracer.end(invocation.span, attempts=invocation.attempts, **attrs)

    # -- receiving -------------------------------------------------------------

    def _on_network_message(self, payload, src: str) -> None:
        message = self.channel.open(payload)
        if message is None:
            return
        if isinstance(message, Reply):
            self._on_reply(message)
        elif isinstance(message, PushMessage):
            self.pushes.on_push(message)

    #: Retain winning digests for at most this many completed requests.
    RESULT_MEMORY = 4096

    def _record_result(self, reply: Reply, invocation, won: bytes) -> None:
        """Remember the agreed digest; flag minority voters as deviant."""
        self._recent_results[reply.sequence] = won
        if len(self._recent_results) > self.RESULT_MEMORY:
            for old in list(self._recent_results)[: self.RESULT_MEMORY // 2]:
                self._recent_results.pop(old, None)
        tracer = self.sim.tracer
        if tracer is None or not tracer.enabled:
            return
        for other_digest, group in invocation.votes.items():
            if other_digest == won:
                continue
            for deviant in sorted(group):
                tracer.point(
                    "reply.mismatch",
                    f"req:{self.client_id}:{reply.sequence}",
                    process=self.client_id,
                    replica=deviant,
                    sequence=reply.sequence,
                )

    def _on_push_deviant(self, stream: str, order: tuple, replica: str) -> None:
        tracer = self.sim.tracer
        if tracer is None or not tracer.enabled:
            return
        tracer.point(
            "push.mismatch",
            f"push:{self.client_id}:{stream}",
            process=self.client_id,
            replica=replica,
            stream=stream,
            order=str(order),
        )

    def _reply_point(self, name: str, reply: Reply, **attrs) -> None:
        """Zero-duration marker on the request's derived trace id."""
        tracer = self.sim.tracer
        if tracer is None or not tracer.enabled:
            return
        tracer.point(
            name,
            f"req:{self.client_id}:{reply.sequence}",
            process=self.client_id,
            replica=reply.replica,
            sequence=reply.sequence,
            **attrs,
        )

    def _on_reply(self, reply: Reply) -> None:
        if reply.view_id > self.view.view_id:
            self.view_stale = True
        if reply.client_id != self.client_id or not self.view.contains(
            reply.replica
        ):
            return
        self._reply_point("reply.recv", reply)
        invocation = self._pending.get(reply.sequence)
        if invocation is None:
            # Straggler for a completed request: ordered replies must
            # match the agreed result, so a deviant digest here is the
            # lying-replica signature (honest stragglers agree).
            won = self._recent_results.get(reply.sequence)
            if won is not None and won != digest(reply.result):
                self._reply_point("reply.mismatch", reply, late=True)
            return
        if invocation.span is not None and invocation.quorum_span is None:
            tracer = self.sim.tracer
            if tracer is not None:
                invocation.quorum_span = tracer.begin(
                    "request.reply_quorum",
                    invocation.span.trace_id,
                    parent=invocation.span,
                    process=self.client_id,
                    quorum=invocation.quorum,
                )
        votes = invocation.votes.setdefault(digest(reply.result), {})
        votes[reply.replica] = reply.result
        if len(votes) >= invocation.quorum:
            self._pending.pop(reply.sequence, None)
            self.sim.cancel_timer(invocation.timer)
            self._close_spans(invocation, voters=len(votes))
            if not invocation.unordered:
                self._record_result(reply, invocation, digest(reply.result))
            if self.on_result is not None:
                self.on_result(reply.sequence, reply.result, frozenset(votes))
            invocation.event.succeed(reply.result)
            return
        if invocation.unordered:
            # Unordered reads can diverge legitimately (a replica serving
            # a stale read while it catches up). Waiting the invocation
            # out would only time it out f attempts later — fail fast the
            # moment no group can still reach quorum even if every silent
            # replica joins the largest one, so the caller can fall back
            # to ordered execution.
            largest = max(len(group) for group in invocation.votes.values())
            repliers = {
                replica
                for group in invocation.votes.values()
                for replica in group
            }
            if largest + (self.view.n - len(repliers)) < invocation.quorum:
                self._pending.pop(reply.sequence, None)
                self.sim.cancel_timer(invocation.timer)
                self.stats["read_divergences"] += 1
                self._close_spans(invocation, error="quorum_divergence")
                invocation.event.fail(
                    QuorumDivergence(
                        f"unordered request {reply.sequence}: "
                        f"{len(invocation.votes)} distinct answers from "
                        f"{len(repliers)} replicas, quorum {invocation.quorum} "
                        "unreachable"
                    )
                )

    # -- membership -------------------------------------------------------------

    def update_view(self, view: View) -> None:
        """Adopt a newer membership (after a reconfiguration)."""
        if view.view_id >= self.view.view_id:
            self.view = view
            self.view_stale = False
            self._known_addresses.update(view.addresses)
