"""Content digests used for reply voting, checkpoints and state transfer."""

from __future__ import annotations

import hashlib

#: Number of bytes of the truncated digest carried in protocol messages.
DIGEST_SIZE = 20


def sha256(data: bytes) -> bytes:
    """Full SHA-256 digest of ``data``."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"digest input must be bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def digest(data: bytes) -> bytes:
    """Truncated SHA-256 digest (``DIGEST_SIZE`` bytes) of ``data``.

    Used wherever the protocols compare message or state contents:
    f+1 reply voting, PROPOSE value hashes, checkpoint digests.
    """
    return sha256(data)[:DIGEST_SIZE]


def combine(*parts: bytes) -> bytes:
    """Digest of a length-prefixed concatenation of ``parts``.

    Length prefixes prevent ambiguity between e.g. ``(b"ab", b"c")`` and
    ``(b"a", b"bc")``.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(4, "big"))
        hasher.update(part)
    return hasher.digest()[:DIGEST_SIZE]
