"""Content digests used for reply voting, checkpoints and state transfer.

The truncated digest is the hot comparison primitive of the whole stack:
PROPOSE value hashing, WRITE/ACCEPT vote matching and f+1 reply voting
all call :func:`digest`. The memo is keyed on the bytes *content* (CPython
caches a bytes object's hash after the first use, so repeat lookups on a
shared broadcast payload cost one dict probe), which also unifies
equal-content inputs from different replicas — the n matching replies a
client votes over hash once, not n times. Only immutable ``bytes`` (never
``bytearray``/``memoryview``) are memoized, and eviction is
insertion-order FIFO: the cache only needs to cover in-flight messages.
"""

from __future__ import annotations

import hashlib

from repro.perf import PERF

#: Number of bytes of the truncated digest carried in protocol messages.
DIGEST_SIZE = 20

_DIGEST_CACHE: dict[bytes, bytes] = {}
_DIGEST_CACHE_LIMIT = 8192
_DIGEST_STATS = PERF.stats["digest"]


def sha256(data: bytes) -> bytes:
    """Full SHA-256 digest of ``data``."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"digest input must be bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def digest(data: bytes) -> bytes:
    """Truncated SHA-256 digest (``DIGEST_SIZE`` bytes) of ``data``.

    Used wherever the protocols compare message or state contents:
    f+1 reply voting, PROPOSE value hashes, checkpoint digests.
    """
    if PERF.digest_cache and type(data) is bytes:
        hit = _DIGEST_CACHE.get(data)
        if hit is not None:
            _DIGEST_STATS.hits += 1
            return hit
        _DIGEST_STATS.misses += 1
        result = hashlib.sha256(data).digest()[:DIGEST_SIZE]
        if len(_DIGEST_CACHE) >= _DIGEST_CACHE_LIMIT:
            _DIGEST_CACHE.clear()
        _DIGEST_CACHE[data] = result
        return result
    return sha256(data)[:DIGEST_SIZE]


def clear_digest_cache() -> None:
    _DIGEST_CACHE.clear()


def combine(*parts: bytes) -> bytes:
    """Digest of a length-prefixed concatenation of ``parts``.

    Length prefixes prevent ambiguity between e.g. ``(b"ab", b"c")`` and
    ``(b"a", b"bc")``.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(4, "big"))
        hasher.update(part)
    return hasher.digest()[:DIGEST_SIZE]
