"""Authentication substrate: digests, HMAC channels, simulated signatures."""

from repro.crypto.digest import DIGEST_SIZE, combine, digest, sha256
from repro.crypto.keys import KeyStore
from repro.crypto.mac import (
    MAC_SIZE,
    Authenticator,
    MacVector,
    make_mac_vector,
    verify_mac_vector,
)
from repro.crypto.signatures import SIGNATURE_SIZE, Signature, Signer, Verifier

__all__ = [
    "DIGEST_SIZE",
    "MAC_SIZE",
    "SIGNATURE_SIZE",
    "Authenticator",
    "KeyStore",
    "MacVector",
    "Signature",
    "Signer",
    "Verifier",
    "combine",
    "digest",
    "make_mac_vector",
    "sha256",
    "verify_mac_vector",
]
