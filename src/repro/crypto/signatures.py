"""Simulated digital signatures.

The slow path of BFT protocols (leader-change STOP-DATA proofs, state
transfer certificates, reconfiguration commands) uses digital signatures.
Real asymmetric crypto adds nothing to the behaviour being reproduced, so
this module simulates an EUF-CMA signature with an HMAC under the signer's
per-principal key: only the signer (and the trusted KeyStore, standing in
for the PKI) can produce a tag that verifies. The substitution is recorded
in DESIGN.md §4.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.keys import KeyStore

SIGNATURE_SIZE = 32


@dataclass(frozen=True)
class Signature:
    """A detached signature over some payload."""

    signer: str
    tag: bytes

    def __post_init__(self) -> None:
        if len(self.tag) != SIGNATURE_SIZE:
            raise ValueError(f"signature tag must be {SIGNATURE_SIZE} bytes")


class Signer:
    """Produces signatures on behalf of one principal."""

    def __init__(self, me: str, keystore: KeyStore) -> None:
        self.me = me
        self._key = keystore.signing_key(me)

    def sign(self, payload: bytes) -> Signature:
        tag = hmac.new(self._key, payload, hashlib.sha256).digest()
        return Signature(signer=self.me, tag=tag)


class Verifier:
    """Verifies signatures from any principal (stands in for a PKI)."""

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore

    def verify(self, signature: Signature, payload: bytes) -> bool:
        key = self._keystore.signing_key(signature.signer)
        expected = hmac.new(key, payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.tag)
