"""Simulated digital signatures.

The slow path of BFT protocols (leader-change STOP-DATA proofs, state
transfer certificates, reconfiguration commands) uses digital signatures.
Real asymmetric crypto adds nothing to the behaviour being reproduced, so
this module simulates an EUF-CMA signature with an HMAC under the signer's
per-principal key: only the signer (and the trusted KeyStore, standing in
for the PKI) can produce a tag that verifies. The substitution is recorded
in DESIGN.md §4.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.perf import PERF

SIGNATURE_SIZE = 32

#: (signing-key, payload-identity) -> (payload, tag). Seeded by the signer
#: and hit by every verifier sharing the KeyStore: the expected tag a
#: verifier recomputes is exactly the tag the signer produced, and the
#: signing-payload bytes object is shared across replicas. Only the
#: *expected* tag is cached — every caller still runs its own
#: ``compare_digest`` against the received tag, so forged or tampered
#: signatures fail exactly as before. Entries pin the payload object.
_SIG_CACHE: dict[tuple, tuple] = {}
_SIG_CACHE_LIMIT = 8192


def clear_signature_cache() -> None:
    _SIG_CACHE.clear()


def _remember(key: bytes, payload: bytes, tag: bytes) -> None:
    if len(_SIG_CACHE) >= _SIG_CACHE_LIMIT:
        _SIG_CACHE.clear()
    _SIG_CACHE[(key, id(payload))] = (payload, tag)


@dataclass(frozen=True)
class Signature:
    """A detached signature over some payload."""

    signer: str
    tag: bytes

    def __post_init__(self) -> None:
        if len(self.tag) != SIGNATURE_SIZE:
            raise ValueError(f"signature tag must be {SIGNATURE_SIZE} bytes")


class Signer:
    """Produces signatures on behalf of one principal."""

    def __init__(self, me: str, keystore: KeyStore) -> None:
        self.me = me
        self._key = keystore.signing_key(me)
        #: Pre-keyed HMAC template (key schedule run once, copied per sign).
        self._template = hmac.new(self._key, digestmod=hashlib.sha256)

    def sign(self, payload: bytes) -> Signature:
        if PERF.mac_templates:
            mac = self._template.copy()
            mac.update(payload)
            tag = mac.digest()
        else:
            tag = hmac.new(self._key, payload, hashlib.sha256).digest()
        if PERF.mac_memo and type(payload) is bytes:
            _remember(self._key, payload, tag)
        return Signature(signer=self.me, tag=tag)


class Verifier:
    """Verifies signatures from any principal (stands in for a PKI)."""

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore
        #: signer -> pre-keyed HMAC template, same trick as Authenticator.
        self._templates: dict[str, hmac.HMAC] = {}

    def verify(self, signature: Signature, payload: bytes) -> bool:
        key = self._keystore.signing_key(signature.signer)
        if PERF.mac_memo and type(payload) is bytes:
            hit = _SIG_CACHE.get((key, id(payload)))
            if hit is not None and hit[0] is payload:
                return hmac.compare_digest(hit[1], signature.tag)
        if PERF.mac_templates:
            template = self._templates.get(signature.signer)
            if template is None:
                template = hmac.new(key, digestmod=hashlib.sha256)
                self._templates[signature.signer] = template
            mac = template.copy()
            mac.update(payload)
            expected = mac.digest()
        else:
            expected = hmac.new(key, payload, hashlib.sha256).digest()
        if PERF.mac_memo and type(payload) is bytes:
            _remember(key, payload, expected)
        return hmac.compare_digest(expected, signature.tag)
