"""Key management for the simulated deployment.

A :class:`KeyStore` plays the role of the key distribution the paper gets
from TLS session establishment and BFT-SMaRt's shared-secret setup: every
pair of principals shares a symmetric key, and every principal has a
"signing" key. Keys are derived deterministically from a root secret so a
whole deployment can be generated from one seed; an attacker model in the
tests can still be given *wrong* keys to exercise rejection paths.
"""

from __future__ import annotations

import hashlib
import hmac


def _derive(root: bytes, label: str) -> bytes:
    return hmac.new(root, label.encode("utf-8"), hashlib.sha256).digest()


class KeyStore:
    """Derives and caches pairwise and per-principal keys.

    Parameters
    ----------
    root_secret:
        Deployment-wide secret all honest principals share out-of-band.
        Principals configured with a different root secret produce MACs
        and signatures that honest verifiers reject.
    """

    def __init__(self, root_secret: bytes = b"smart-scada-deployment") -> None:
        if not root_secret:
            raise ValueError("root secret must be non-empty")
        self._root = bytes(root_secret)
        self._pair_cache: dict[tuple[str, str], bytes] = {}
        self._signing_cache: dict[str, bytes] = {}

    def pair_key(self, a: str, b: str) -> bytes:
        """Symmetric key shared by principals ``a`` and ``b`` (order-free)."""
        lo, hi = sorted((a, b))
        key = self._pair_cache.get((lo, hi))
        if key is None:
            key = _derive(self._root, f"pair:{lo}:{hi}")
            self._pair_cache[(lo, hi)] = key
        return key

    def signing_key(self, principal: str) -> bytes:
        """The per-principal key used by the simulated signature scheme."""
        key = self._signing_cache.get(principal)
        if key is None:
            key = _derive(self._root, f"sign:{principal}")
            self._signing_cache[principal] = key
        return key
