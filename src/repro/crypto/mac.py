"""Message authentication codes for point-to-point and multicast channels.

BFT-SMaRt authenticates its replica-to-replica and client-to-replica
channels with HMACs rather than signatures on the fast path; consensus
messages that must convince *all* replicas carry a MAC vector (one MAC per
receiver), the classic PBFT authenticator construction.

On the hot path an :class:`Authenticator` keeps one pre-keyed
``hmac.new(key, ..., sha256)`` template per peer, so producing a tag is a
``copy()/update()/digest()`` instead of a fresh key schedule (two extra
SHA-256 compressions) per message — the cached-authenticator optimisation
BFT-SMaRt itself ships.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.keys import KeyStore
from repro.perf import PERF

#: Truncated MAC length in bytes (PBFT used 10; we keep 16 for margin).
MAC_SIZE = 16

#: (pair-key, payload-identity) -> (payload, tag). The pair key is
#: symmetric (``pair_key(a, b) == pair_key(b, a)``), so the tag the sender
#: computes at seal time is exactly the expected tag the receiver
#: recomputes at verify time — sharing it makes verification of honest
#: traffic a dict probe. Spoofed or tampered traffic never hits: a wrong
#: key or a different payload object lands in a different slot, so the
#: receiver still recomputes and the ``compare_digest`` check still fails.
#: Entries pin the payload bytes object, so identity keys cannot alias.
#: Evicted by clearing wholesale when full — O(1) amortized, and the few
#: in-flight entries dropped are simply recomputed.
_MAC_CACHE: dict[tuple, tuple] = {}
_MAC_CACHE_LIMIT = 8192
_MAC_STATS = PERF.stats["mac"]


def clear_mac_cache() -> None:
    _MAC_CACHE.clear()


class Authenticator:
    """Computes and verifies pairwise HMACs for one principal."""

    def __init__(self, me: str, keystore: KeyStore) -> None:
        self.me = me
        self._keystore = keystore
        #: peer -> pre-keyed HMAC template (key schedule already run).
        self._templates: dict[str, hmac.HMAC] = {}
        #: peer -> shared pair key (the KeyStore returns one object per
        #: pair, so the memo key is shared with the peer's authenticator).
        self._keys: dict[str, bytes] = {}

    def mac(self, peer: str, payload: bytes) -> bytes:
        """MAC for ``payload`` on the channel between ``self.me`` and peer."""
        if PERF.mac_memo and type(payload) is bytes:
            key = self._keys.get(peer)
            if key is None:
                key = self._keystore.pair_key(self.me, peer)
                self._keys[peer] = key
            cache_key = (key, id(payload))
            hit = _MAC_CACHE.get(cache_key)
            if hit is not None and hit[0] is payload:
                _MAC_STATS.hits += 1
                return hit[1]
            _MAC_STATS.misses += 1
            tag = self._compute(peer, key, payload)
            if len(_MAC_CACHE) >= _MAC_CACHE_LIMIT:
                _MAC_CACHE.clear()
            _MAC_CACHE[cache_key] = (payload, tag)
            return tag
        key = self._keystore.pair_key(self.me, peer)
        return self._compute(peer, key, payload)

    def _compute(self, peer: str, key: bytes, payload: bytes) -> bytes:
        if PERF.mac_templates:
            template = self._templates.get(peer)
            if template is None:
                template = hmac.new(key, digestmod=hashlib.sha256)
                self._templates[peer] = template
            mac = template.copy()
            mac.update(payload)
            return mac.digest()[:MAC_SIZE]
        return hmac.new(key, payload, hashlib.sha256).digest()[:MAC_SIZE]

    def verify(self, peer: str, payload: bytes, tag: bytes) -> bool:
        """Constant-time check of ``tag`` against the expected MAC."""
        return hmac.compare_digest(self.mac(peer, payload), tag)


@dataclass(frozen=True)
class MacVector:
    """A MAC per receiver, attached to multicast protocol messages.

    ``tags`` is a tuple of ``(receiver, tag)`` pairs sorted by receiver,
    so a frozen ``MacVector`` really is immutable and equality/hashing
    are well-defined. A ``dict`` passed to the constructor is normalised
    to the canonical tuple form.
    """

    sender: str
    tags: tuple

    def __post_init__(self) -> None:
        tags = self.tags
        if isinstance(tags, dict):
            object.__setattr__(self, "tags", tuple(sorted(tags.items())))
        elif isinstance(tags, tuple):
            object.__setattr__(self, "tags", tuple(sorted(tags)))
        else:
            raise TypeError(
                f"tags must be a dict or tuple of pairs, got {type(tags).__name__}"
            )

    def tag_for(self, receiver: str) -> bytes | None:
        for name, tag in self.tags:
            if name == receiver:
                return tag
        return None


def make_mac_vector(
    auth: Authenticator, receivers: list[str], payload: bytes
) -> MacVector:
    """Build the authenticator a sender attaches to a multicast message."""
    mac = auth.mac
    return MacVector(
        sender=auth.me,
        tags=tuple((receiver, mac(receiver, payload)) for receiver in receivers),
    )


def verify_mac_vector(auth: Authenticator, vector: MacVector, payload: bytes) -> bool:
    """Check the receiver's own entry of a multicast authenticator."""
    tag = vector.tag_for(auth.me)
    if tag is None:
        return False
    return auth.verify(vector.sender, payload, tag)
