"""Message authentication codes for point-to-point and multicast channels.

BFT-SMaRt authenticates its replica-to-replica and client-to-replica
channels with HMACs rather than signatures on the fast path; consensus
messages that must convince *all* replicas carry a MAC vector (one MAC per
receiver), the classic PBFT authenticator construction.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.keys import KeyStore

#: Truncated MAC length in bytes (PBFT used 10; we keep 16 for margin).
MAC_SIZE = 16


class Authenticator:
    """Computes and verifies pairwise HMACs for one principal."""

    def __init__(self, me: str, keystore: KeyStore) -> None:
        self.me = me
        self._keystore = keystore

    def mac(self, peer: str, payload: bytes) -> bytes:
        """MAC for ``payload`` on the channel between ``self.me`` and peer."""
        key = self._keystore.pair_key(self.me, peer)
        return hmac.new(key, payload, hashlib.sha256).digest()[:MAC_SIZE]

    def verify(self, peer: str, payload: bytes, tag: bytes) -> bool:
        """Constant-time check of ``tag`` against the expected MAC."""
        return hmac.compare_digest(self.mac(peer, payload), tag)


@dataclass(frozen=True)
class MacVector:
    """A MAC per receiver, attached to multicast protocol messages."""

    sender: str
    tags: dict

    def tag_for(self, receiver: str) -> bytes | None:
        return self.tags.get(receiver)


def make_mac_vector(
    auth: Authenticator, receivers: list[str], payload: bytes
) -> MacVector:
    """Build the authenticator a sender attaches to a multicast message."""
    return MacVector(
        sender=auth.me,
        tags={receiver: auth.mac(receiver, payload) for receiver in receivers},
    )


def verify_mac_vector(auth: Authenticator, vector: MacVector, payload: bytes) -> bool:
    """Check the receiver's own entry of a multicast authenticator."""
    tag = vector.tag_for(auth.me)
    if tag is None:
        return False
    return auth.verify(vector.sender, payload, tag)
