"""SMaRt-SCADA: the paper's contribution — a BFT SCADA Master.

Integrates the :mod:`repro.neoscada` Master with the
:mod:`repro.bftsmart` replication library through proxies (Figure 5),
addressing the four challenges of §III-B: a single ordered entry point,
sequential deterministic execution, ContextInfo-supplied timestamps, and
ordering-tagged asynchronous messages with f+1 voting — plus the
logical-timeout protocol of §IV-D.
"""

from repro.core.adapter import SCADA_STREAM, ScadaService
from repro.core.config import (
    DEFAULT_HOP_LATENCY,
    DEFAULT_LOCAL_LATENCY,
    SmartScadaConfig,
    neoscada_costs,
    smartscada_costs,
)
from repro.core.context import ContextInfo
from repro.core.proxy_frontend import ProxyFrontend
from repro.core.proxy_hmi import ProxyHMI
from repro.core.proxy_master import ProxyMaster
from repro.core.system import (
    NeoScadaSystem,
    SmartScadaSystem,
    build_neoscada,
    build_smartscada,
    make_network,
)
from repro.core.timeout import LogicalTimeoutManager

__all__ = [
    "ContextInfo",
    "DEFAULT_HOP_LATENCY",
    "DEFAULT_LOCAL_LATENCY",
    "LogicalTimeoutManager",
    "NeoScadaSystem",
    "ProxyFrontend",
    "ProxyHMI",
    "ProxyMaster",
    "SCADA_STREAM",
    "ScadaService",
    "SmartScadaConfig",
    "SmartScadaSystem",
    "build_neoscada",
    "build_smartscada",
    "make_network",
    "neoscada_costs",
    "smartscada_costs",
]
