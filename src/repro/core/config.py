"""Deployment configuration and cost calibration for SMaRt-SCADA.

One :class:`SmartScadaConfig` describes a whole deployment — group size,
protocol tunables and the calibrated cost models for both the original
NeoSCADA Master and the replicated one. The absolute numbers are fitted
so the benchmark suite lands in the neighbourhood of the paper's
Figure 8 (the *relative* results are what the reproduction claims);
EXPERIMENTS.md records paper-vs-measured for each point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bftsmart.config import GroupConfig
from repro.neoscada.master import MasterCosts

#: Per-hop LAN latency (switched Gigabit Ethernet, paper §V).
DEFAULT_HOP_LATENCY = 0.00025
#: Co-located component <-> proxy latency (loopback).
DEFAULT_LOCAL_LATENCY = 0.00002


def neoscada_costs() -> MasterCosts:
    """Cost model of the original (multi-threaded) Master."""
    return MasterCosts(
        update_processing=0.00055,
        write_processing=0.00070,
        event_processing=0.00008,
        storage_service_time=0.0008,  # concurrent, batched event writer
        storage_buffer=64,
        serialization=0.0,
    )


def smartscada_costs() -> MasterCosts:
    """Cost model of the replicated (single-threaded) Master.

    ``serialization`` > 0 is the paper's §VII-b "message serialization
    bottleneck introduced to guarantee determinism"; writes marshal the
    full operation context through the single entry point, and event
    persistence is a synchronous single writer.
    """
    return MasterCosts(
        update_processing=0.00055,
        write_processing=0.00250,
        event_processing=0.00008,
        storage_service_time=0.001333,  # synchronous deterministic writer
        storage_buffer=8,
        serialization=0.00051,
    )


@dataclass(frozen=True)
class SmartScadaConfig:
    """Everything needed to build one SMaRt-SCADA deployment."""

    n: int = 4
    f: int = 1
    #: Mod-SMaRt tunables.
    batch_max: int = 200
    batch_wait: float = 0.0005
    #: Consensus instances the leader keeps in flight (1 = the strictly
    #: sequential ordering the paper's evaluation ran with; raise it to
    #: overlap instances — see GroupConfig.pipeline_depth).
    pipeline_depth: int = 1
    request_timeout: float = 2.0
    sync_timeout: float = 4.0
    checkpoint_interval: int = 1000
    #: §IV-D logical timeout (seconds) and its vote majority.
    logical_timeout: float = 1.0
    #: BFT client retransmission timeout.
    invoke_timeout: float = 1.0
    #: Durable replica state (``repro.storage``): give every replica a
    #: crash-consistent WAL + checkpoint store so restarts recover from
    #: disk instead of paying for a full state transfer.
    durability: bool = False
    #: WAL fsync policy: ``every-decision`` / ``every-n`` / ``checkpoint-only``.
    fsync_policy: str = "every-decision"
    fsync_interval: int = 8
    checkpoint_retention: int = 2
    #: Minimum time between state-transfer requests (seconds).
    state_retry_interval: float = 0.5
    #: Master cost model for the replicas.
    costs: MasterCosts = field(default_factory=smartscada_costs)

    def group_config(self) -> GroupConfig:
        return GroupConfig(
            n=self.n,
            f=self.f,
            batch_max=self.batch_max,
            batch_wait=self.batch_wait,
            pipeline_depth=self.pipeline_depth,
            request_timeout=self.request_timeout,
            sync_timeout=self.sync_timeout,
            checkpoint_interval=self.checkpoint_interval,
            fsync_policy=self.fsync_policy,
            fsync_interval=self.fsync_interval,
            checkpoint_retention=self.checkpoint_retention,
            state_retry_interval=self.state_retry_interval,
        )

    @property
    def timeout_majority(self) -> int:
        """Majority of replicas, as the paper's §IV-D prescribes."""
        return self.n // 2 + 1
