"""ContextInfo: deterministic environmental inputs for the Master core.

Challenge §III-B(c): the original Master reads timestamps from the
operating system, so replicas would stamp the same event differently.
SMaRt-SCADA's Adapter "add[s] a timestamp and ordering information to
each incoming message" and the DA/AE subsystems "retrieve this
information from ContextInfo" (§IV-C). This class is that module: before
driving the Master core with an ordered message, the Adapter calls
:meth:`begin` with the consensus-assigned context; the Master's injected
``clock`` and ``event_id_source`` callables then read from here, making
every derived timestamp, event id and push-ordering key identical across
replicas.
"""

from __future__ import annotations

from repro.bftsmart.service import MessageContext


class ContextInfo:
    """Per-replica holder of the current operation's ordering data."""

    def __init__(self) -> None:
        self.timestamp = 0.0
        self.cid = -1
        self.order = 0
        self._event_seq = 0
        self._push_seq = 0
        self._active = False

    def begin(self, ctx: MessageContext) -> None:
        """Enter the context of one ordered operation."""
        self.timestamp = ctx.timestamp
        self.cid = ctx.cid
        self.order = ctx.order
        self._event_seq = 0
        self._push_seq = 0
        self._active = True

    def end(self) -> None:
        self._active = False

    # -- what the Master core consumes ------------------------------------

    def now(self) -> float:
        """Deterministic timestamp (the leader's PROPOSE clock)."""
        if not self._active:
            raise RuntimeError("ContextInfo read outside an ordered operation")
        return self.timestamp

    def next_event_id(self) -> str:
        """Deterministic event id: derived from the total order."""
        if not self._active:
            raise RuntimeError("ContextInfo read outside an ordered operation")
        self._event_seq += 1
        return f"evt-{self.cid}-{self.order}-{self._event_seq}"

    def next_order_key(self) -> tuple:
        """Ordering key for the next outbound (asynchronous) message.

        Attached to every push so receivers can vote and identify the
        context a message was produced in (challenge §III-B(d)).
        """
        if not self._active:
            raise RuntimeError("ContextInfo read outside an ordered operation")
        self._push_seq += 1
        return (self.cid, self.order, self._push_seq)
