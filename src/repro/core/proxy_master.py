"""ProxyMaster: one replica of the BFT SCADA Master.

Each ProxyMaster bundles (Figure 5): the BFT server (a
:class:`~repro.bftsmart.replica.ServiceReplica`), the Adapter
(:class:`~repro.core.adapter.ScadaService`), the deterministic Master
core it drives, the ContextInfo module, and the replica's side of the
logical-timeout protocol — including the "adapter client" through which
its timeout votes enter the total order.
"""

from __future__ import annotations

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.config import GroupConfig, replica_address
from repro.bftsmart.replica import ServiceReplica
from repro.bftsmart.view import View
from repro.core.adapter import ScadaService
from repro.core.config import SmartScadaConfig
from repro.core.context import ContextInfo
from repro.core.timeout import LogicalTimeoutManager
from repro.crypto import KeyStore
from repro.neoscada.master import ScadaMaster
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.wire import encode


class ProxyMaster:
    """One SCADA Master replica with its proxy machinery."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        index: int,
        config: SmartScadaConfig,
        keystore: KeyStore,
        group: GroupConfig | None = None,
        view: View | None = None,
        replica_class: type | None = None,
        storage=None,
        address: str | None = None,
        shard: int = 0,
    ) -> None:
        self.sim = sim
        self.index = index
        #: Sharded deployments namespace replica addresses per group
        #: (``s<k>-replica-<i>``); the default is the classic single-group
        #: address derived from the index.
        self.address = address if address is not None else replica_address(index)
        #: Which replication group this replica belongs to (0 unsharded).
        self.shard = shard
        group = group if group is not None else config.group_config()
        #: Kept for recovery: a rejuvenated/restarted incarnation must
        #: rejoin the *same* group at the same address.
        self.group = group
        client_view = view if view is not None else View(0, group.addresses, group.f)

        self.context = ContextInfo()
        # Every replica's Master core shares one logical identity: the op
        # ids and reply addresses it stamps into messages must be
        # byte-identical across replicas, or the proxies' f+1 vote on
        # pushed messages could never succeed.
        self.master = ScadaMaster(
            sim=sim,
            net=net,
            address="scada-master",
            frontends=[],
            costs=config.costs,
            workers=0,  # single entry point: the Adapter drives the core
            jitter=0.0,
            clock=self.context.now,
            event_id_source=self.context.next_event_id,
            write_timeout=None,  # replaced by the logical-timeout protocol
        )

        # The adapter client: how this replica's timeout votes enter the
        # total order ("each Adapter sends to the other Adapters a
        # timeout message", §IV-D).
        self.vote_client = ServiceProxy(
            sim=sim,
            net=net,
            client_id=f"{self.address}-adapter",
            keystore=keystore,
            view=client_view,
            invoke_timeout=config.invoke_timeout,
            # Rejuvenated instances restart this client at the same id;
            # starting above any plausible predecessor sequence keeps the
            # peers' dedup from swallowing the new incarnation's votes.
            sequence_start=int(sim.now * 1_000_000),
        )
        self.timeouts = LogicalTimeoutManager(
            sim=sim,
            replica_address=self.address,
            timeout=config.logical_timeout,
            majority=config.timeout_majority,
            send_vote=self._send_vote,
        )
        self.service = ScadaService(
            master=self.master,
            context=self.context,
            timeouts=self.timeouts,
        )
        replica_class = replica_class if replica_class is not None else ServiceReplica
        self.replica = replica_class(
            sim=sim,
            net=net,
            address=self.address,
            config=group,
            service=self.service,
            keystore=keystore,
            view=view,
            storage=storage,
        )

    def _send_vote(self, vote) -> None:
        event = self.vote_client.invoke_ordered(encode(vote))
        event.add_callback(lambda ev: setattr(ev, "defused", True))

    def attach_handlers(self, item_id: str, chain) -> None:
        """Attach a handler chain to this replica's Master core.

        Must be called identically on every replica before traffic flows
        (handler chains are configuration, not replicated state).
        """
        self.master.attach_handlers(item_id, chain)
