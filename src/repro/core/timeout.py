"""The logical-timeout protocol (§IV-D).

When the replicated Master forwards a WriteValue to a Frontend, its DA
client blocks until the WriteResult comes back; an attacker who drops
either message would block the Master forever. Following Kirsch et al.,
each Adapter arms a local timer when the write is forwarded. On expiry
it broadcasts a timeout vote to the other Adapters — here the vote
travels through the same Byzantine total order as everything else, so
all replicas observe the same vote sequence. When a majority of distinct
replicas have voted for an operation that is still pending, every
replica deterministically synthesizes an **empty (failed) WriteResult**,
unblocking the Master.
"""

from __future__ import annotations

from repro.bftsmart.messages import TimeoutVote
from repro.neoscada.messages import WriteResult
from repro.sim.kernel import Simulator


class LogicalTimeoutManager:
    """Per-replica side of the logical-timeout protocol.

    Parameters
    ----------
    sim:
        The simulator (for the local timers).
    replica_address:
        Identity stamped on outgoing votes.
    timeout:
        Local timer duration in seconds.
    majority:
        Distinct voters required to synthesize the empty WriteResult.
    send_vote:
        ``fn(TimeoutVote)`` — submits the vote into the total order
        (wired to the replica's own BFT client by the ProxyMaster).
    """

    def __init__(
        self,
        sim: Simulator,
        replica_address: str,
        timeout: float,
        majority: int,
        send_vote,
    ) -> None:
        self.sim = sim
        self.replica_address = replica_address
        self.timeout = timeout
        self.majority = majority
        self._send_vote = send_vote
        #: master_op_id -> item_id for writes awaiting a WriteResult.
        self._armed: dict[str, str] = {}
        #: master_op_id -> set of replica addresses that voted (ordered).
        self._votes: dict[str, set] = {}
        self._voted_locally: set = set()
        self.stats = {"armed": 0, "votes_sent": 0, "synthesized": 0}

    # -- local timers ------------------------------------------------------

    def arm(self, master_op: str, item_id: str) -> None:
        """Start the local timer for a forwarded write."""
        if master_op in self._armed:
            return
        self._armed[master_op] = item_id
        self.stats["armed"] += 1
        self.sim.defer(self.timeout, self._expire, master_op)

    def disarm(self, master_op: str) -> None:
        """The WriteResult arrived through the total order: cancel."""
        self._armed.pop(master_op, None)
        self._votes.pop(master_op, None)

    def _expire(self, master_op: str) -> None:
        if master_op not in self._armed or master_op in self._voted_locally:
            return
        self._voted_locally.add(master_op)
        self.stats["votes_sent"] += 1
        self._send_vote(
            TimeoutVote(replica=self.replica_address, operation_key=(master_op,))
        )

    # -- ordered votes (identical at every replica) --------------------------

    def on_ordered_vote(self, vote: TimeoutVote, valid_voters) -> WriteResult | None:
        """Process a vote delivered by consensus.

        Returns the WriteResult to synthesize when the majority is
        reached for a still-pending operation, else ``None``. Votes from
        addresses outside ``valid_voters`` are ignored (a Byzantine node
        cannot stuff the ballot by inventing voter identities — each vote
        arrives through its sender's authenticated client).
        """
        (master_op,) = vote.operation_key
        if vote.replica not in valid_voters:
            return None
        item_id = self._armed.get(master_op)
        if item_id is None:
            return None
        voters = self._votes.setdefault(master_op, set())
        voters.add(vote.replica)
        if len(voters) < self.majority:
            return None
        self.disarm(master_op)
        self.stats["synthesized"] += 1
        return WriteResult(
            item_id=item_id,
            op_id=master_op,
            success=False,
            reason="logical timeout: no WriteResult from the frontend",
        )
