"""Proactive recovery (rejuvenation) of SCADA Master replicas.

The intrusion-tolerance literature the paper builds on (Castro & Liskov's
proactive recovery; Veríssimo et al.'s intrusion-tolerant architectures,
the paper's [8] and [14]) periodically restarts replicas from a clean
image so that an adversary must compromise more than ``f`` replicas
*within one rejuvenation window* rather than over the system's lifetime.

This module implements that operational pattern on top of the
reproduction's machinery: rejuvenating a replica tears its ProxyMaster
down and boots a pristine replacement at the same address, which then
state-transfers the whole Master state back in from its peers. A
:class:`RejuvenationScheduler` cycles through the group one replica at a
time (never exceeding the ``f`` simultaneous "faults" the group
tolerates).
"""

from __future__ import annotations

import typing

from repro.core.proxy_master import ProxyMaster

if typing.TYPE_CHECKING:
    from repro.core.system import SmartScadaSystem


def rejuvenate_replica(
    system: "SmartScadaSystem",
    index: int,
    handler_config=None,
    replica_class: type | None = None,
) -> ProxyMaster:
    """Replace one Master replica with a pristine instance.

    The old instance is halted and detached; the new one starts from an
    empty state (fresh service, fresh Master core) and catches up through
    the ordinary state-transfer protocol. ``handler_config`` is a
    ``fn(proxy_master)`` that re-attaches the deployment's handler chains
    (configuration is not replicated state and must be re-applied, just
    as a restarted real replica re-reads its config files).

    ``replica_class`` overrides the BFT-server class of the replacement —
    the chaos engine uses this to model a runtime *compromise*: the same
    machinery that rejuvenates a replica to a clean image swaps it for a
    :mod:`repro.bftsmart.byzantine` behaviour instead (and back).

    Returns the new ProxyMaster (also swapped into
    ``system.proxy_masters``).
    """
    old = system.proxy_masters[index]
    old.replica.halt()
    view = old.replica.view
    # A sharded deployment's handle carries a ShardedScadaConfig; the
    # per-replica tunables live on its ``base``.
    config = getattr(system.config, "base", system.config)
    storage = None
    if system.durable_storage is not None:
        # Rejuvenation reprovisions the machine: the disk is wiped along
        # with everything else (a compromised replica's disk contents are
        # exactly what proactive recovery must not trust).
        storage = system.durable_storage.get(index)
        if storage is not None:
            storage.crash("wiped")
    replacement = ProxyMaster(
        system.sim,
        system.net,
        index,
        config,
        system.keystore,
        group=old.group,
        view=view,
        replica_class=replica_class,
        storage=storage,
        address=old.address,
        shard=old.shard,
    )
    if handler_config is not None:
        handler_config(replacement)
    system.proxy_masters[index] = replacement
    if storage is not None:
        replacement.replica.recover_from_disk()  # wiped: a recorded no-op
    # Fetch state immediately: if this address is the current leader, the
    # group would otherwise stall for a whole request-timeout before the
    # synchronization phase deposed the amnesiac newcomer.
    replacement.replica.state_transfer.bootstrap()
    return replacement


def restart_replica(
    system: "SmartScadaSystem",
    index: int,
    disk_fault: str | None = "intact",
    handler_config=None,
) -> ProxyMaster:
    """Crash one Master replica and reboot it from its durable disk.

    Unlike :func:`rejuvenate_replica`, the replacement keeps the old
    incarnation's :class:`repro.storage.ReplicaStorage`: the crash fault
    model (``disk_fault`` — ``intact``/``torn``/``corrupt``/``wiped``)
    is applied to the disk, then the new incarnation boots through
    ``recover_from_disk`` — newest valid checkpoint + WAL-tail replay —
    and only asks peers for the suffix it missed (a *partial* state
    transfer). Damaged disks are detected by digest verification and
    fall back to the full transfer automatically.

    ``disk_fault=None`` means the crash fault was already applied to the
    device (the chaos engine applies it at crash time, which may be long
    before the reboot).

    Requires a deployment built with ``config.durability``.
    """
    if system.durable_storage is None:
        raise ValueError(
            "restart_replica needs a durable deployment "
            "(SmartScadaConfig(durability=True)); use rejuvenate_replica "
            "for memory-only groups"
        )
    old = system.proxy_masters[index]
    old.replica.halt()
    view = old.replica.view
    config = getattr(system.config, "base", system.config)
    storage = system.durable_storage[index]
    if disk_fault is not None:
        storage.crash(disk_fault)
    replacement = ProxyMaster(
        system.sim,
        system.net,
        index,
        config,
        system.keystore,
        group=old.group,
        view=view,
        storage=storage,
        address=old.address,
        shard=old.shard,
    )
    # Handler chains are configuration, re-applied before recovery so the
    # installed snapshot can restore their state into them.
    if handler_config is not None:
        handler_config(replacement)
    system.proxy_masters[index] = replacement
    replacement.replica.recover_from_disk()
    replacement.replica.state_transfer.bootstrap()
    return replacement


class RejuvenationScheduler:
    """Cycles proactive recovery through the replica group.

    Parameters
    ----------
    system:
        The running deployment.
    period:
        Seconds between consecutive rejuvenations (one replica each).
    handler_config:
        ``fn(proxy_master)`` re-applying handler chains to a fresh
        replica (see :func:`rejuvenate_replica`).
    settle_time:
        How long after a rejuvenation the scheduler verifies the replica
        caught up before moving on (diagnostics only).
    guard:
        Optional zero-arg callable returning a veto reason (string) or
        ``None``. A recovery orchestrator plugs in here so a scheduled
        rejuvenation never overlaps one of its own healing actions.

    A scheduled rejuvenation is *skipped* (logged in :attr:`skip_log`,
    retried next period) whenever another replica is already down,
    unreachable, or mid-state-transfer: rejuvenation deliberately takes
    one replica out, and doing so while the group is already degraded
    would erode the live quorum below 2f+1.
    """

    def __init__(
        self,
        system: "SmartScadaSystem",
        period: float,
        handler_config=None,
        settle_time: float = 2.0,
        guard=None,
    ) -> None:
        if period <= 0:
            raise ValueError("rejuvenation period must be positive")
        self.system = system
        self.period = period
        self.handler_config = handler_config
        self.settle_time = settle_time
        self.guard = guard
        self.rejuvenations = 0
        self.recovered_in_time = 0
        self.skipped = 0
        #: One ``{"time", "target", "reason"}`` dict per skipped slot.
        self.skip_log: list = []
        self._process = None

    def erosion_reason(self, target: int) -> str | None:
        """Why rejuvenating ``target`` now would erode the quorum."""
        net = self.system.net
        target_shard = next(
            (pm.shard for pm in self.system.proxy_masters if pm.index == target), 0
        )
        for pm in self.system.proxy_masters:
            if pm.index == target or pm.shard != target_shard:
                # Only the target's own group loses quorum headroom; a
                # degraded replica in a *different* shard is no reason
                # to postpone this group's rejuvenation slot.
                continue
            if not pm.replica.active:
                return f"{pm.address} is down"
            if net.endpoint(pm.address).down:
                return f"{pm.address} machine is unreachable"
            if pm.replica.state_transfer.in_progress:
                return f"{pm.address} has a state transfer in flight"
        if self.guard is not None:
            return self.guard()
        return None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("scheduler already started")
        self._process = self.system.sim.process(
            self._run(), name="rejuvenation-scheduler"
        )

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def _run(self):
        from repro.sim.process import Interrupted

        sim = self.system.sim
        index = 0
        try:
            while True:
                yield sim.timeout(self.period)
                count = len(self.system.proxy_masters)
                target = index % count
                reason = self.erosion_reason(target)
                if reason is not None:
                    self.skipped += 1
                    self.skip_log.append(
                        {"time": sim.now, "target": target, "reason": reason}
                    )
                    continue
                index += 1
                replacement = rejuvenate_replica(
                    self.system, target, handler_config=self.handler_config
                )
                self.rejuvenations += 1
                yield sim.timeout(self.settle_time)
                peers = [
                    pm.replica
                    for pm in self.system.proxy_masters
                    if pm is not replacement
                    and pm.replica.active
                    and pm.shard == replacement.shard
                ]
                if peers and replacement.replica.last_decided >= min(
                    p.last_decided for p in peers
                ) - 1:
                    self.recovered_in_time += 1
        except Interrupted:
            return
