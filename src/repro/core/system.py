"""Whole-deployment builders for both systems under study.

:func:`build_neoscada` assembles the original three-machine deployment
(Frontend, SCADA Master, HMI); :func:`build_smartscada` assembles the
six-machine replicated one (Frontend + proxy, n ProxyMasters, HMI +
proxy) exactly as §V describes. Both return a handle object exposing the
components, so tests, examples and benchmarks configure items/handlers
and drive traffic uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import (
    DEFAULT_HOP_LATENCY,
    DEFAULT_LOCAL_LATENCY,
    SmartScadaConfig,
    neoscada_costs,
)
from repro.core.proxy_frontend import ProxyFrontend
from repro.core.proxy_hmi import ProxyHMI
from repro.core.proxy_master import ProxyMaster
from repro.crypto import KeyStore
from repro.neoscada.frontend import Frontend
from repro.neoscada.hmi import HMI
from repro.neoscada.master import MasterCosts, ScadaMaster
from repro.net.latency import LanLatency
from repro.net.network import Network
from repro.net.trace import NetworkTrace
from repro.sim.kernel import Simulator


def make_network(
    sim: Simulator,
    hop_latency: float = DEFAULT_HOP_LATENCY,
    trace: bool = False,
    max_hops: int | None = None,
) -> Network:
    """A switched-LAN network like the paper's Gigabit testbed.

    ``max_hops`` bounds hop-trace retention (ring buffer) for long
    campaigns; ``None`` keeps every hop.
    """
    return Network(
        sim,
        latency=LanLatency(
            base=hop_latency,
            jitter=hop_latency / 5,
            rng=sim.rng.stream("net.jitter"),
        ),
        trace=NetworkTrace(enabled=trace, max_hops=max_hops),
    )


@dataclass
class NeoScadaSystem:
    """Handle to an assembled (unreplicated) NeoSCADA deployment."""

    sim: Simulator
    net: Network
    frontends: list
    master: ScadaMaster
    hmi: HMI

    @property
    def frontend(self) -> Frontend:
        return self.frontends[0]

    def start(self) -> None:
        for frontend in self.frontends:
            frontend.start()
        self.master.start()
        self.hmi.start()
        # Let subscriptions and browses settle.
        self.sim.run(until=self.sim.now + 0.05)

    def attach_handlers(self, item_id: str, chain_factory) -> None:
        self.master.attach_handlers(item_id, chain_factory())


def build_neoscada(
    sim: Simulator,
    net: Network | None = None,
    frontend_count: int = 1,
    costs: MasterCosts | None = None,
    workers: int = 4,
    jitter: float = 0.2,
    write_timeout: float | None = 5.0,
    audit_writes: bool = False,
) -> NeoScadaSystem:
    """Assemble the paper's three-machine NeoSCADA deployment."""
    net = net if net is not None else make_network(sim)
    frontends = [
        Frontend(sim, net, f"frontend-{i}") for i in range(frontend_count)
    ]
    master = ScadaMaster(
        sim,
        net,
        "scada-master",
        frontends=[fe.address for fe in frontends],
        costs=costs if costs is not None else neoscada_costs(),
        workers=workers,
        jitter=jitter,
        write_timeout=write_timeout,
        audit_writes=audit_writes,
    )
    hmi = HMI(sim, net, "hmi", master_address="scada-master")
    return NeoScadaSystem(sim=sim, net=net, frontends=frontends, master=master, hmi=hmi)


@dataclass
class SmartScadaSystem:
    """Handle to an assembled SMaRt-SCADA deployment."""

    sim: Simulator
    net: Network
    config: SmartScadaConfig
    keystore: KeyStore
    frontends: list
    proxy_frontends: list
    proxy_masters: list
    proxy_hmi: ProxyHMI
    hmi: HMI
    #: index -> :class:`repro.storage.ReplicaStorage` when the deployment
    #: was built with ``config.durability``; ``None`` otherwise. Disks
    #: outlive replica incarnations — a restart boots from the same one.
    durable_storage: dict | None = None

    @property
    def frontend(self) -> Frontend:
        return self.frontends[0]

    @property
    def masters(self) -> list:
        return [pm.master for pm in self.proxy_masters]

    @property
    def replicas(self) -> list:
        return [pm.replica for pm in self.proxy_masters]

    def start(self) -> None:
        for frontend in self.frontends:
            frontend.start()
        for proxy_frontend in self.proxy_frontends:
            proxy_frontend.start()
        self.proxy_hmi.start()
        self.hmi.start()
        # Let subscriptions, browses and the first consensus settle.
        self.sim.run(until=self.sim.now + 0.2)

    def attach_handlers(self, item_id: str, chain_factory) -> None:
        """Attach an identical handler chain to every Master replica.

        ``chain_factory()`` is called once per replica — handler
        instances hold state and must never be shared between replicas.
        """
        for proxy_master in self.proxy_masters:
            proxy_master.attach_handlers(item_id, chain_factory())

    def state_digests(self) -> list:
        """Per-replica digests of the full Master state (for divergence checks)."""
        from repro.crypto import digest

        return [
            digest(pm.service.snapshot())
            for pm in self.proxy_masters
            if pm.replica.active
        ]

    def update_views(self, view) -> None:
        """Propagate a post-reconfiguration membership to every client.

        BFT-SMaRt clients learn new views from their view storage; this
        plays that role for the deployment's proxies and adapter clients.
        """
        self.proxy_hmi.bft.update_view(view)
        for proxy_frontend in self.proxy_frontends:
            proxy_frontend.bft.update_view(view)
        for proxy_master in self.proxy_masters:
            proxy_master.vote_client.update_view(view)


def build_smartscada(
    sim: Simulator,
    net: Network | None = None,
    config: SmartScadaConfig | None = None,
    frontend_count: int = 1,
    keystore: KeyStore | None = None,
    replica_classes: dict | None = None,
) -> SmartScadaSystem:
    """Assemble the paper's six-machine SMaRt-SCADA deployment.

    One Frontend (+proxy), ``config.n`` ProxyMasters, one HMI (+proxy);
    each component shares a machine with its proxy, modelled as
    loopback-speed links between the pairs. ``replica_classes`` overrides
    the BFT-server class of specific replica indices (Byzantine drills:
    ``{1: SilentReplica}``).
    """
    net = net if net is not None else make_network(sim)
    config = config if config is not None else SmartScadaConfig()
    keystore = keystore if keystore is not None else KeyStore()
    replica_classes = replica_classes or {}
    group = config.group_config()

    frontends = []
    proxy_frontends = []
    for i in range(frontend_count):
        frontend = Frontend(sim, net, f"frontend-{i}")
        proxy = ProxyFrontend(
            sim,
            net,
            f"proxy-frontend-{i}",
            frontend_address=frontend.address,
            config=group,
            keystore=keystore,
            invoke_timeout=config.invoke_timeout,
        )
        net.set_local_pair(frontend.address, proxy.address, DEFAULT_LOCAL_LATENCY)
        frontends.append(frontend)
        proxy_frontends.append(proxy)

    durable_storage = None
    if config.durability:
        from repro.bftsmart.config import replica_address
        from repro.storage import ReplicaStorage

        durable_storage = {
            index: ReplicaStorage(
                replica_address(index),
                fsync_policy=config.fsync_policy,
                fsync_interval=config.fsync_interval,
                checkpoint_retention=config.checkpoint_retention,
            )
            for index in range(config.n)
        }
        storages = dict(durable_storage)
        sim.register_stats_source(
            "storage",
            lambda: {s.address: s.counters() for s in storages.values()},
        )

    proxy_masters = [
        ProxyMaster(
            sim,
            net,
            index,
            config,
            keystore,
            group=group,
            replica_class=replica_classes.get(index),
            storage=durable_storage[index] if durable_storage else None,
        )
        for index in range(config.n)
    ]

    proxy_hmi = ProxyHMI(
        sim,
        net,
        "proxy-hmi",
        config=group,
        keystore=keystore,
        invoke_timeout=config.invoke_timeout,
    )
    hmi = HMI(sim, net, "hmi", master_address="proxy-hmi")
    net.set_local_pair("hmi", "proxy-hmi", DEFAULT_LOCAL_LATENCY)

    return SmartScadaSystem(
        sim=sim,
        net=net,
        config=config,
        keystore=keystore,
        frontends=frontends,
        proxy_frontends=proxy_frontends,
        proxy_masters=proxy_masters,
        proxy_hmi=proxy_hmi,
        hmi=hmi,
        durable_storage=durable_storage,
    )
