"""ProxyHMI: the HMI's transparent gateway into the replicated Master.

"The ProxyHMI receives the HMI messages and sends them via its BFT
client, to the ProxyMaster. [...] In this proxy, we have a DA server and
an AE server which simulate the servers available in the SCADA Master"
(§IV-A). The HMI connects to this proxy exactly as it would to a real
Master — the replication is invisible (challenge a). Inbound
asynchronous messages (ItemUpdate / EventUpdate / WriteResult) arrive as
replica pushes and are delivered to the HMI only after f+1 matching
copies (§IV-D: "the ProxyHMI waits for f+1 matching messages").

Sharded deployments hand the proxy one BFT client *per group* plus the
shard map. Writes and value queries route to the owning group; browse
and ``item_id="*"`` history queries scatter to every group and gather a
merged answer; the per-shard AE push streams pass through the
:class:`~repro.shard.merge.GlobalAeMerger` (deterministic global order)
and the :class:`~repro.shard.correlate.AlarmCorrelator` (cross-shard
incidents) before reaching the HMI's local AE server — so the HMI still
sees exactly one Master with one coherent alarm sequence.
"""

from __future__ import annotations

from repro.bftsmart.client import QuorumDivergence, ServiceProxy
from repro.bftsmart.config import GroupConfig
from repro.bftsmart.view import View
from repro.core.adapter import SCADA_STREAM
from repro.crypto import KeyStore
from repro.neoscada.ae.server import AEServer
from repro.neoscada.da.server import DAServer
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    EventQuery,
    EventQueryReply,
    EventUpdate,
    ItemUpdate,
    Subscribe,
    SubscribeEvents,
    ValueQuery,
    WriteResult,
    WriteValue,
)
from repro.net.network import Network
from repro.shard.correlate import AlarmCorrelator
from repro.shard.map import ShardRouter
from repro.shard.merge import GlobalAeMerger, merge_key
from repro.sim.kernel import Simulator
from repro.wire import DecodeError, decode, encode


class ProxyHMI:
    """The HMI-side proxy of SMaRt-SCADA."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        config: GroupConfig,
        keystore: KeyStore,
        invoke_timeout: float = 1.0,
        groups: list | None = None,
        shard_map=None,
        merge_holdback: float = 0.05,
        correlate_window: float = 1.0,
    ) -> None:
        self.sim = sim
        self.address = address
        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_local_message)

        group_list = list(groups) if groups else [config]
        self.sharded = len(group_list) > 1
        if self.sharded and shard_map is None:
            raise ValueError("a multi-group proxy needs a shard map")
        self.router = ShardRouter(shard_map) if shard_map is not None else None
        self.bft_clients: list = []
        for shard, group in enumerate(group_list):
            client_id = (
                f"{address}-bft" if not self.sharded else f"{address}-bft-s{shard}"
            )
            client = ServiceProxy(
                sim=sim,
                net=net,
                client_id=client_id,
                keystore=keystore,
                view=View(0, group.addresses, group.f),
                invoke_timeout=invoke_timeout,
            )
            client.pushes.set_handler(
                SCADA_STREAM,
                (lambda order, payload, _s=shard: self._on_push(order, payload, _s)),
            )
            self.bft_clients.append(client)
        self.bft = self.bft_clients[0]

        # Local DA/AE servers simulating the Master's, for the HMI side.
        self.da_server = DAServer(self.endpoint.send, on_write=self._on_hmi_write)
        self.ae_server = AEServer(self.endpoint.send)

        # The global AE order + correlation layer (multi-shard only).
        self.merger = (
            GlobalAeMerger(
                sim,
                self._deliver_global,
                holdback=merge_holdback,
                process=f"{address}-merger",
            )
            if self.sharded
            else None
        )
        self.correlator = (
            AlarmCorrelator(
                window=correlate_window,
                min_shards=2,
                sink=self.ae_server.publish,
            )
            if self.sharded
            else None
        )

        #: origin op_id -> HMI reply address for in-flight writes.
        self._write_origins: dict[str, str] = {}
        #: op_id -> open ``proxy.forward`` span (tracer installed only).
        self._write_spans: dict = {}
        #: FIFO of HMI addresses awaiting a BrowseReply (single group).
        self._browse_waiters: list = []
        #: FIFO of in-flight browse gathers (sharded): each entry holds
        #: the origin, the shards still owing a reply, and the items so far.
        self._browse_gathers: list = []
        self.stats = {
            "forwarded_writes": 0,
            "updates_out": 0,
            "events_out": 0,
            "write_results_out": 0,
            "invoke_failures": 0,
            "unordered_reads": 0,
            "ordered_read_fallbacks": 0,
            "scatter_queries": 0,
        }
        #: op_id -> submit instant, feeding the end-to-end write latency
        #: histogram the SLO engine reads. Always on: pure arithmetic.
        self._write_submitted: dict[str, float] = {}
        self._write_latency = sim.metrics.histogram("hmi.write.latency")
        #: Sim instant the last AE event reached the HMI-side AE server.
        self.last_event_delivered: float | None = None
        #: Monotone id for browse scatter traces (browses carry no op id).
        self._browse_seq = 0
        sim.register_stats_source("proxy.hmi", lambda: dict(self.stats))
        self._started = False

    def start(self) -> None:
        """Subscribe this proxy to everything in every replicated Master."""
        if self._started:
            return
        self._started = True
        for client in self.bft_clients:
            self._submit(client, Subscribe(subscriber=client.client_id, item_id="*"))
            self._submit(
                client, SubscribeEvents(subscriber=client.client_id, item_id="*")
            )

    # ------------------------------------------------------------------
    # shard routing
    # ------------------------------------------------------------------

    def _client_for(self, item_id: str) -> ServiceProxy:
        if not self.sharded:
            return self.bft
        return self.bft_clients[self.router.route(item_id)]

    def flush_events(self) -> None:
        """Drain the AE merge buffer (quiescence helper for tests/CLI)."""
        if self.merger is not None:
            self.merger.flush()

    # ------------------------------------------------------------------
    # HMI-facing side
    # ------------------------------------------------------------------

    def _on_local_message(self, message, src: str) -> None:
        if isinstance(message, BrowseRequest):
            self._forward_browse(message)
            return
        if isinstance(message, EventQuery):
            self._forward_event_query(message)
            return
        if isinstance(message, ValueQuery):
            self._forward_value_query(message)
            return
        if self.da_server.dispatch(message, src):
            return
        if self.ae_server.dispatch(message, src):
            return

    def _forward_browse(self, message: BrowseRequest) -> None:
        if not self.sharded:
            self._browse_waiters.append(message.reply_to)
            self._submit(self.bft, BrowseRequest(reply_to=self.bft.client_id))
            return
        self._browse_seq += 1
        tracer = self.sim.tracer
        root = None
        fanout: dict = {}
        trace_id = f"browse:{self._browse_seq}"
        if tracer is not None and tracer.enabled:
            root = tracer.begin(
                "shard.scatter",
                trace_id,
                process=self.address,
                op="browse",
                shards=len(self.bft_clients),
            )
        gather = {
            "origin": message.reply_to,
            "pending": set(range(len(self.bft_clients))),
            "items": [],
            "root": root,
            "fanout": fanout,
        }
        self._browse_gathers.append(gather)
        for shard, client in enumerate(self.bft_clients):
            span = None
            if root is not None:
                span = tracer.begin(
                    "shard.scatter.fanout",
                    trace_id,
                    parent=root,
                    process=self.address,
                    op="browse",
                    shard=shard,
                )
                fanout[shard] = span
            self._submit(
                client, BrowseRequest(reply_to=client.client_id), parent=span
            )

    def _forward_event_query(self, query: EventQuery) -> None:
        """History queries ride the read-only (unordered) library path.

        A query for one item goes straight to the owning group. A
        wildcard query scatters to every group and gathers one reply in
        the global AE order (timestamp, shard, per-reply position) —
        the same rule the live merge applies.
        """
        if self.sharded and query.item_id == "*":
            self._scatter_event_query(query)
            return
        origin = query.reply_to
        span = None
        if self.sharded and query.item_id != "*":
            shard = self.router.route(query.item_id)
            client = self.bft_clients[shard]
            tracer = self.sim.tracer
            if tracer is not None and tracer.enabled:
                span = tracer.point(
                    "shard.route",
                    f"query:{query.query_id}",
                    process=self.address,
                    item=query.item_id,
                    shard=shard,
                    epoch=self.router.map.epoch,
                )
        else:
            client = self.bft if query.item_id == "*" else self._client_for(
                query.item_id
            )
        rewritten = EventQuery(
            query_id=query.query_id,
            reply_to=client.client_id,
            item_id=query.item_id,
            start=query.start,
            end=query.end,
            event_type=query.event_type,
            limit=query.limit,
        )
        event = client.invoke_unordered(encode(rewritten), parent=span)

        def on_done(ev) -> None:
            if not ev.ok:
                ev.defused = True
                self.stats["invoke_failures"] += 1
                return
            self.endpoint.send(origin, decode(ev.value))

        event.add_callback(on_done)

    def _scatter_event_query(self, query: EventQuery) -> None:
        self.stats["scatter_queries"] += 1
        origin = query.reply_to
        shards = len(self.bft_clients)
        gathered: dict[int, tuple] = {}
        remaining = [shards]
        tracer = self.sim.tracer
        trace_id = f"query:{query.query_id}"
        root = None
        if tracer is not None and tracer.enabled:
            root = tracer.begin(
                "shard.scatter",
                trace_id,
                process=self.address,
                op="event-query",
                item=query.item_id,
                shards=shards,
            )

        def finish() -> None:
            tagged = []
            for shard in sorted(gathered):
                for seq, ev in enumerate(gathered[shard]):
                    tagged.append((merge_key(ev.timestamp, shard, seq), ev))
            tagged.sort(key=lambda entry: entry[0])
            merged = tuple(ev for _key, ev in tagged)
            if query.limit is not None:
                merged = merged[: query.limit]
            if root is not None:
                tracer.end(root, events=len(merged))
            self.endpoint.send(
                origin, EventQueryReply(query_id=query.query_id, events=merged)
            )

        for shard, client in enumerate(self.bft_clients):
            rewritten = EventQuery(
                query_id=query.query_id,
                reply_to=client.client_id,
                item_id=query.item_id,
                start=query.start,
                end=query.end,
                event_type=query.event_type,
                limit=query.limit,
            )
            span = None
            if root is not None:
                span = tracer.begin(
                    "shard.scatter.fanout",
                    trace_id,
                    parent=root,
                    process=self.address,
                    op="event-query",
                    shard=shard,
                )

            def on_done(ev, _shard=shard, _span=span) -> None:
                if ev.ok:
                    gathered[_shard] = decode(ev.value).events
                    if _span is not None:
                        tracer.end(_span, events=len(gathered[_shard]))
                else:
                    # Best effort: a failed shard contributes nothing;
                    # the gathered reply still reflects every group that
                    # answered its n-f read quorum.
                    ev.defused = True
                    self.stats["invoke_failures"] += 1
                    if _span is not None:
                        tracer.end(_span, failed=True)
                remaining[0] -= 1
                if remaining[0] == 0:
                    finish()

            client.invoke_unordered(
                encode(rewritten), parent=span
            ).add_callback(on_done)

    def _forward_value_query(self, query: ValueQuery) -> None:
        """Current-value reads ride the unordered path, with a fallback.

        The read is first submitted unordered (n-f matching answers, no
        consensus round). When the read quorum diverges — replicas caught
        mid-catch-up serve different values — the proxy re-issues the same
        query through the total order, which always agrees. Sharded, the
        whole exchange happens against the single owning group.
        """
        origin = query.reply_to
        client = self._client_for(query.item_id)
        rewritten = ValueQuery(
            query_id=query.query_id,
            reply_to=client.client_id,
            item_id=query.item_id,
        )
        operation = encode(rewritten)
        self.stats["unordered_reads"] += 1

        def on_ordered(ev) -> None:
            if not ev.ok:
                ev.defused = True
                self.stats["invoke_failures"] += 1
                return
            self.endpoint.send(origin, decode(ev.value))

        def on_unordered(ev) -> None:
            if ev.ok:
                self.endpoint.send(origin, decode(ev.value))
                return
            ev.defused = True
            if isinstance(ev.exception, QuorumDivergence):
                self.stats["ordered_read_fallbacks"] += 1
                client.invoke_ordered(operation).add_callback(on_ordered)
            else:
                self.stats["invoke_failures"] += 1

        client.invoke_unordered(operation).add_callback(on_unordered)

    def _on_hmi_write(self, message: WriteValue, src: str) -> None:
        """Rewrite the reply path and push the write into the total order."""
        self.stats["forwarded_writes"] += 1
        self._write_origins[message.op_id] = message.reply_to
        self._write_submitted[message.op_id] = self.sim.now
        if self.sharded:
            shard = self.router.route(message.item_id)
            client = self.bft_clients[shard]
        else:
            shard = 0
            client = self.bft
        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin(
                "proxy.forward",
                f"op:{message.op_id}",
                process=self.address,
                op_id=message.op_id,
                item=message.item_id,
            )
            self._write_spans[message.op_id] = span
            if self.sharded:
                tracer.point(
                    "shard.route",
                    f"op:{message.op_id}",
                    parent=span,
                    process=self.address,
                    item=message.item_id,
                    shard=shard,
                    epoch=self.router.map.epoch,
                )
        rewritten = WriteValue(
            item_id=message.item_id,
            value=message.value,
            op_id=message.op_id,
            reply_to=client.client_id,
            operator=message.operator,
        )
        self._submit(client, rewritten, parent=span)

    def _submit(self, client: ServiceProxy, message, parent=None) -> None:
        event = client.invoke_ordered(encode(message), parent=parent)
        event.add_callback(self._on_invoke_done)

    def _on_invoke_done(self, event) -> None:
        if not event.ok:
            event.defused = True
            self.stats["invoke_failures"] += 1

    # ------------------------------------------------------------------
    # replica-facing side: voted pushes
    # ------------------------------------------------------------------

    def _on_push(self, order: tuple, payload: bytes, shard: int = 0) -> None:
        try:
            message = decode(payload)
        except DecodeError:
            return
        if isinstance(message, ItemUpdate):
            self.stats["updates_out"] += 1
            self.da_server.publish(message.item_id, message.value)
        elif isinstance(message, EventUpdate):
            if self.merger is not None:
                self.merger.offer(shard, message.event)
            else:
                self.stats["events_out"] += 1
                self.last_event_delivered = self.sim.now
                self.ae_server.publish(message.event)
        elif isinstance(message, WriteResult):
            origin = self._write_origins.pop(message.op_id, None)
            submitted = self._write_submitted.pop(message.op_id, None)
            if submitted is not None:
                self._write_latency.observe(self.sim.now - submitted)
            span = self._write_spans.pop(message.op_id, None)
            if span is not None and self.sim.tracer is not None:
                self.sim.tracer.end(span, success=message.success)
            if origin is not None:
                self.stats["write_results_out"] += 1
                self.endpoint.send(origin, message)
        elif isinstance(message, BrowseReply):
            if not self.sharded:
                if self._browse_waiters:
                    self.endpoint.send(self._browse_waiters.pop(0), message)
                return
            for gather in self._browse_gathers:
                if shard in gather["pending"]:
                    gather["pending"].discard(shard)
                    gather["items"].extend(message.items)
                    tracer = self.sim.tracer
                    span = gather["fanout"].pop(shard, None)
                    if span is not None and tracer is not None:
                        tracer.end(span, items=len(message.items))
                    if not gather["pending"]:
                        self._browse_gathers.remove(gather)
                        if gather["root"] is not None and tracer is not None:
                            tracer.end(
                                gather["root"], items=len(gather["items"])
                            )
                        self.endpoint.send(
                            gather["origin"],
                            BrowseReply(items=tuple(sorted(gather["items"]))),
                        )
                    return

    def _deliver_global(self, shard: int, event) -> None:
        """Sink of the global merge: publish, then correlate."""
        self.stats["events_out"] += 1
        self.last_event_delivered = self.sim.now
        self.ae_server.publish(event)
        if self.correlator is not None:
            self.correlator.observe(shard, event)
