"""ProxyHMI: the HMI's transparent gateway into the replicated Master.

"The ProxyHMI receives the HMI messages and sends them via its BFT
client, to the ProxyMaster. [...] In this proxy, we have a DA server and
an AE server which simulate the servers available in the SCADA Master"
(§IV-A). The HMI connects to this proxy exactly as it would to a real
Master — the replication is invisible (challenge a). Inbound
asynchronous messages (ItemUpdate / EventUpdate / WriteResult) arrive as
replica pushes and are delivered to the HMI only after f+1 matching
copies (§IV-D: "the ProxyHMI waits for f+1 matching messages").
"""

from __future__ import annotations

from repro.bftsmart.client import QuorumDivergence, ServiceProxy
from repro.bftsmart.config import GroupConfig
from repro.bftsmart.view import View
from repro.core.adapter import SCADA_STREAM
from repro.crypto import KeyStore
from repro.neoscada.ae.server import AEServer
from repro.neoscada.da.server import DAServer
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    EventQuery,
    EventUpdate,
    ItemUpdate,
    Subscribe,
    SubscribeEvents,
    ValueQuery,
    WriteResult,
    WriteValue,
)
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.wire import DecodeError, decode, encode


class ProxyHMI:
    """The HMI-side proxy of SMaRt-SCADA."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        config: GroupConfig,
        keystore: KeyStore,
        invoke_timeout: float = 1.0,
    ) -> None:
        self.sim = sim
        self.address = address
        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_local_message)

        self.bft = ServiceProxy(
            sim=sim,
            net=net,
            client_id=f"{address}-bft",
            keystore=keystore,
            view=View(0, config.addresses, config.f),
            invoke_timeout=invoke_timeout,
        )
        self.bft.pushes.set_handler(SCADA_STREAM, self._on_push)

        # Local DA/AE servers simulating the Master's, for the HMI side.
        self.da_server = DAServer(self.endpoint.send, on_write=self._on_hmi_write)
        self.ae_server = AEServer(self.endpoint.send)

        #: origin op_id -> HMI reply address for in-flight writes.
        self._write_origins: dict[str, str] = {}
        #: op_id -> open ``proxy.forward`` span (tracer installed only).
        self._write_spans: dict = {}
        #: FIFO of HMI addresses awaiting a BrowseReply.
        self._browse_waiters: list = []
        self.stats = {
            "forwarded_writes": 0,
            "updates_out": 0,
            "events_out": 0,
            "write_results_out": 0,
            "invoke_failures": 0,
            "unordered_reads": 0,
            "ordered_read_fallbacks": 0,
        }
        self._started = False

    def start(self) -> None:
        """Subscribe this proxy to everything in the replicated Master."""
        if self._started:
            return
        self._started = True
        self._submit(Subscribe(subscriber=self.bft.client_id, item_id="*"))
        self._submit(SubscribeEvents(subscriber=self.bft.client_id, item_id="*"))

    # ------------------------------------------------------------------
    # HMI-facing side
    # ------------------------------------------------------------------

    def _on_local_message(self, message, src: str) -> None:
        if isinstance(message, BrowseRequest):
            self._browse_waiters.append(message.reply_to)
            self._submit(BrowseRequest(reply_to=self.bft.client_id))
            return
        if isinstance(message, EventQuery):
            self._forward_event_query(message)
            return
        if isinstance(message, ValueQuery):
            self._forward_value_query(message)
            return
        if self.da_server.dispatch(message, src):
            return
        if self.ae_server.dispatch(message, src):
            return

    def _forward_event_query(self, query: EventQuery) -> None:
        """History queries ride the read-only (unordered) library path."""
        origin = query.reply_to
        rewritten = EventQuery(
            query_id=query.query_id,
            reply_to=self.bft.client_id,
            item_id=query.item_id,
            start=query.start,
            end=query.end,
            event_type=query.event_type,
            limit=query.limit,
        )
        event = self.bft.invoke_unordered(encode(rewritten))

        def on_done(ev) -> None:
            if not ev.ok:
                ev.defused = True
                self.stats["invoke_failures"] += 1
                return
            self.endpoint.send(origin, decode(ev.value))

        event.add_callback(on_done)

    def _forward_value_query(self, query: ValueQuery) -> None:
        """Current-value reads ride the unordered path, with a fallback.

        The read is first submitted unordered (n-f matching answers, no
        consensus round). When the read quorum diverges — replicas caught
        mid-catch-up serve different values — the proxy re-issues the same
        query through the total order, which always agrees.
        """
        origin = query.reply_to
        rewritten = ValueQuery(
            query_id=query.query_id,
            reply_to=self.bft.client_id,
            item_id=query.item_id,
        )
        operation = encode(rewritten)
        self.stats["unordered_reads"] += 1

        def on_ordered(ev) -> None:
            if not ev.ok:
                ev.defused = True
                self.stats["invoke_failures"] += 1
                return
            self.endpoint.send(origin, decode(ev.value))

        def on_unordered(ev) -> None:
            if ev.ok:
                self.endpoint.send(origin, decode(ev.value))
                return
            ev.defused = True
            if isinstance(ev.exception, QuorumDivergence):
                self.stats["ordered_read_fallbacks"] += 1
                self.bft.invoke_ordered(operation).add_callback(on_ordered)
            else:
                self.stats["invoke_failures"] += 1

        self.bft.invoke_unordered(operation).add_callback(on_unordered)

    def _on_hmi_write(self, message: WriteValue, src: str) -> None:
        """Rewrite the reply path and push the write into the total order."""
        self.stats["forwarded_writes"] += 1
        self._write_origins[message.op_id] = message.reply_to
        tracer = self.sim.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin(
                "proxy.forward",
                f"op:{message.op_id}",
                process=self.address,
                op_id=message.op_id,
                item=message.item_id,
            )
            self._write_spans[message.op_id] = span
        rewritten = WriteValue(
            item_id=message.item_id,
            value=message.value,
            op_id=message.op_id,
            reply_to=self.bft.client_id,
            operator=message.operator,
        )
        self._submit(rewritten, parent=span)

    def _submit(self, message, parent=None) -> None:
        event = self.bft.invoke_ordered(encode(message), parent=parent)
        event.add_callback(self._on_invoke_done)

    def _on_invoke_done(self, event) -> None:
        if not event.ok:
            event.defused = True
            self.stats["invoke_failures"] += 1

    # ------------------------------------------------------------------
    # replica-facing side: voted pushes
    # ------------------------------------------------------------------

    def _on_push(self, order: tuple, payload: bytes) -> None:
        try:
            message = decode(payload)
        except DecodeError:
            return
        if isinstance(message, ItemUpdate):
            self.stats["updates_out"] += 1
            self.da_server.publish(message.item_id, message.value)
        elif isinstance(message, EventUpdate):
            self.stats["events_out"] += 1
            self.ae_server.publish(message.event)
        elif isinstance(message, WriteResult):
            origin = self._write_origins.pop(message.op_id, None)
            span = self._write_spans.pop(message.op_id, None)
            if span is not None and self.sim.tracer is not None:
                self.sim.tracer.end(span, success=message.success)
            if origin is not None:
                self.stats["write_results_out"] += 1
                self.endpoint.send(origin, message)
        elif isinstance(message, BrowseReply):
            if self._browse_waiters:
                self.endpoint.send(self._browse_waiters.pop(0), message)
