"""The Adapter: SMaRt-SCADA's glue between BFT server and Master core.

Figure 5: each ProxyMaster hosts a BFT server whose delivered operations
flow through the Adapter, which is "responsible for adding information to
each incoming message and to decide to which client the message should be
forwarded, DA or AE" (§IV-A). Concretely, the Adapter here is the
:class:`~repro.bftsmart.service.Service` implementation of the replica:

- every ordered operation carries a serialized NeoSCADA message; the
  Adapter stamps ContextInfo with the consensus-assigned timestamp and
  ordering data (challenge c), then drives the deterministic Master core
  with it — one message at a time through one entry point (challenges a
  and b);
- everything the Master emits (ItemUpdates, EventUpdates, WriteResults,
  forwarded WriteValues) is intercepted from the Master's transport and
  pushed asynchronously to the destination proxy, tagged with a
  deterministic ordering key so f+1 voting works (challenge d);
- forwarded writes arm the logical-timeout protocol (§IV-D).
"""

from __future__ import annotations

from repro.bftsmart.messages import TimeoutVote
from repro.bftsmart.service import MessageContext, Service
from repro.core.context import ContextInfo
from repro.core.timeout import LogicalTimeoutManager
from repro.neoscada.master import ScadaMaster
from repro.neoscada.messages import EventQuery, ValueQuery
from repro.shard.messages import ShardExport, ShardImport
from repro.wire import DecodeError, decode, encode

#: Stream name under which all SCADA pushes travel to the proxies.
SCADA_STREAM = "scada"

#: Messages servable outside the total order (pure reads of Master state).
_READ_ONLY_QUERIES = (EventQuery, ValueQuery)


class ScadaService(Service):
    """The replicated SCADA Master service (Adapter + Master core)."""

    def __init__(
        self,
        master: ScadaMaster,
        context: ContextInfo,
        timeouts: LogicalTimeoutManager | None = None,
        vote_quorum_source=None,
    ) -> None:
        super().__init__()
        if master.workers != 0:
            raise ValueError(
                "the replicated Master must run with workers=0 "
                "(single entry point, sequential execution)"
            )
        self.master = master
        self.context = context
        self.timeouts = timeouts
        #: Callable returning the valid timeout voters (replica addresses).
        self._vote_quorum_source = vote_quorum_source
        self._post_cost = 0.0
        self._decode_cache: tuple | None = None
        master._transport = self._master_transport
        self.stats = {"operations": 0, "pushes": 0, "bad_operations": 0}

    # ------------------------------------------------------------------
    # master transport interception: outbound -> asynchronous pushes
    # ------------------------------------------------------------------

    def _master_transport(self, dst: str, message) -> None:
        """Route a Master-emitted message to its proxy as a voted push."""
        order = self.context.next_order_key()
        self.stats["pushes"] += 1
        self.replica.push(
            client_id=dst,
            stream=SCADA_STREAM,
            order=order,
            payload=encode(message),
        )

    # ------------------------------------------------------------------
    # the ordered execution path
    # ------------------------------------------------------------------

    def _decode_operation(self, operation: bytes):
        if self._decode_cache is not None and self._decode_cache[0] is operation:
            return self._decode_cache[1]
        try:
            message = decode(operation)
        except DecodeError:
            message = None
        self._decode_cache = (operation, message)
        return message

    def cost_of(self, operation: bytes) -> float:
        message = self._decode_operation(operation)
        if message is None or isinstance(message, TimeoutVote):
            return 0.0
        kind = _kind_of(message)
        if kind is None:
            return 0.0  # control plane (subscriptions, browse)
        return self.master.cost_of(kind, getattr(message, "item_id", None))

    def post_cost(self) -> float:
        cost, self._post_cost = self._post_cost, 0.0
        return cost

    def execute(self, operation: bytes, ctx: MessageContext) -> bytes:
        self.stats["operations"] += 1
        message = self._decode_operation(operation)
        if message is None:
            self.stats["bad_operations"] += 1
            return encode(("error", "undecodable operation"))
        if isinstance(message, _READ_ONLY_QUERIES):
            # The ordered fallback for a read whose unordered quorum
            # diverged: consensus placed it in the total order, so every
            # replica answers from the same state — no Master mutation.
            return encode(self._answer_query(message))
        self.context.begin(ctx)
        try:
            if isinstance(message, TimeoutVote):
                self._execute_timeout_vote(message, ctx)
                return encode(("ok", "vote"))
            if isinstance(message, ShardExport):
                # Shard migration, source side: every replica exports the
                # identical bundle at the same point of the total order.
                bundle = self.master.export_items(
                    message.item_ids, detach=message.detach
                )
                return encode(bundle)
            if isinstance(message, ShardImport):
                # Target side: install the bundle in consensus order.
                self.master.install_items(decode(message.payload))
                return encode(("ok", "shard-import"))
            kind = self.master.classify(message, ctx.client_id)
            if kind is None:
                return encode(("ok", "control"))
            outcome = self.master.execute(kind, message, ctx.client_id)
            self._post_cost = self._charge_events(outcome.events)
            self.master.commit_events(outcome.events)
            if self.timeouts is not None:
                if outcome.forwarded:
                    # The Master just sent a WriteValue towards a Frontend
                    # and is now blocked on the result: arm the logical
                    # timeout (§IV-D).
                    self.timeouts.arm(outcome.master_op, outcome.item_id)
                if kind == "write_result":
                    self.timeouts.disarm(message.op_id)
            return encode(("ok", kind))
        finally:
            self.context.end()

    def _execute_timeout_vote(self, vote: TimeoutVote, ctx: MessageContext) -> None:
        if self.timeouts is None:
            return
        if ctx.client_id != f"{vote.replica}-adapter":
            # A Byzantine node may not stuff the ballot with votes in
            # other replicas' names: the vote must arrive through the
            # claimed replica's own (authenticated) adapter client.
            return
        voters = (
            self._vote_quorum_source()
            if self._vote_quorum_source is not None
            else self.replica.view.addresses
        )
        synthesized = self.timeouts.on_ordered_vote(vote, voters)
        if synthesized is not None:
            outcome = self.master.execute(
                "write_result", synthesized, self.master.address
            )
            self._post_cost = self._charge_events(outcome.events)
            self.master.commit_events(outcome.events)

    def _charge_events(self, events: list) -> float:
        """Event routing cost plus any stall at the storage station."""
        if not events:
            return 0.0
        cost = self.master.costs.event_cost(len(events))
        cost += self.master.storage_station.submit(
            self.master.sim.now, len(events)
        )
        return cost

    # ------------------------------------------------------------------
    # read-only path (unordered requests)
    # ------------------------------------------------------------------

    def execute_unordered(self, operation: bytes) -> bytes:
        """Serve read-only queries outside the total order.

        Only genuinely read-only messages are accepted; anything else is
        refused (a client cannot smuggle a state change past consensus).
        The caller (ServiceProxy) demands n-f matching answers, so a
        minority of stale or lying replicas cannot fabricate history.
        """
        message = self._decode_operation(operation)
        if isinstance(message, _READ_ONLY_QUERIES):
            return encode(self._answer_query(message))
        raise ValueError("only read-only queries may execute unordered")

    def _answer_query(self, message):
        if isinstance(message, EventQuery):
            return self.master.answer_event_query(message)
        return self.master.answer_value_query(message)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> bytes:
        subscriptions = _subscriptions_state(self.master)
        return encode((self.master.state_tuple(), subscriptions))

    def install_snapshot(self, data: bytes) -> None:
        master_state, subscriptions = decode(data)
        self.master.install_state(master_state)
        _restore_subscriptions(self.master, subscriptions)


def _kind_of(message) -> str | None:
    """Data-plane kind of a NeoSCADA message (None = control plane)."""
    from repro.neoscada.messages import ItemUpdate, WriteResult, WriteValue

    if isinstance(message, ItemUpdate):
        return "update"
    if isinstance(message, WriteValue):
        return "write"
    if isinstance(message, WriteResult):
        return "write_result"
    return None


def _subscriptions_state(master: ScadaMaster) -> tuple:
    def dump(manager) -> tuple:
        return tuple(
            (item_id, tuple(sorted(subs)))
            for item_id, subs in sorted(manager._by_item.items())
        )

    return (
        dump(master.da_server.subscriptions),
        dump(master.ae_server.subscriptions),
    )


def _restore_subscriptions(master: ScadaMaster, state: tuple) -> None:
    def load(manager, dumped) -> None:
        manager._by_item.clear()
        for item_id, subs in dumped:
            for subscriber in subs:
                manager.subscribe(subscriber, item_id)

    da_state, ae_state = state
    load(master.da_server.subscriptions, da_state)
    load(master.ae_server.subscriptions, ae_state)
