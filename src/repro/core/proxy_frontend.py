"""ProxyFrontend: a Frontend's transparent gateway into the BFT Master.

"The ProxyFrontend [...] employs the BFT client of the library to
transmit all messages that come from the Frontend to the SCADA Master.
When the SCADA Master needs to communicate with the Frontend, the
ProxyFrontend receives messages from the client-side of the library and
forwards them using the DA client" (§IV-A). It also votes f+1 matching
pushed WriteValues before handing them to the Frontend (§IV-D-b).

Sharded deployments hand the proxy one BFT client *per group* plus the
shard map: RTU ingress routes to the owning group by item id (through a
resolve-once router cache, so steady-state routing is one dict hit) and
the Frontend never learns that more than one Master exists — the same
transparency argument the paper makes for replication itself.
"""

from __future__ import annotations

from repro.bftsmart.client import ServiceProxy
from repro.bftsmart.config import GroupConfig
from repro.bftsmart.view import View
from repro.core.adapter import SCADA_STREAM
from repro.crypto import KeyStore
from repro.neoscada.da.client import DAClient
from repro.neoscada.messages import (
    BrowseReply,
    ItemUpdate,
    WriteResult,
    WriteValue,
)
from repro.net.network import Network
from repro.shard.map import ShardRouter
from repro.sim.kernel import Simulator
from repro.wire import DecodeError, decode, encode


class ProxyFrontend:
    """One Frontend's proxy in SMaRt-SCADA."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        frontend_address: str,
        config: GroupConfig,
        keystore: KeyStore,
        invoke_timeout: float = 1.0,
        groups: list | None = None,
        shard_map=None,
    ) -> None:
        self.sim = sim
        self.address = address
        self.frontend_address = frontend_address
        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_local_message)

        group_list = list(groups) if groups else [config]
        self.sharded = len(group_list) > 1
        if self.sharded and shard_map is None:
            raise ValueError("a multi-group proxy needs a shard map")
        self.router = ShardRouter(shard_map) if shard_map is not None else None
        #: One BFT client per group; unsharded keeps the classic id so
        #: existing deployments stay wire-identical.
        self.bft_clients: list = []
        for shard, group in enumerate(group_list):
            client_id = (
                f"{address}-bft" if not self.sharded else f"{address}-bft-s{shard}"
            )
            client = ServiceProxy(
                sim=sim,
                net=net,
                client_id=client_id,
                keystore=keystore,
                view=View(0, group.addresses, group.f),
                invoke_timeout=invoke_timeout,
            )
            client.pushes.set_handler(SCADA_STREAM, self._on_push)
            self.bft_clients.append(client)
        self.bft = self.bft_clients[0]

        self.da_client = DAClient(address, self.endpoint.send)
        self.stats = {
            "updates_in": 0,
            "writes_out": 0,
            "write_results_in": 0,
            "invoke_failures": 0,
        }
        #: Registry counter for routed ingress messages (fleet scoreboard
        #: folds it with the router's own hit/miss cache stats). Only the
        #: sharded shape routes, so only it registers the counter.
        self._routed = (
            sim.metrics.counter(f"shard.ingress.{address}.routed")
            if self.sharded
            else None
        )
        self._started = False

    def start(self) -> None:
        """Subscribe to the Frontend so its updates flow into the order."""
        if self._started:
            return
        self._started = True
        self.da_client.subscribe(self.frontend_address, "*")
        self.da_client.browse(self.frontend_address)

    # ------------------------------------------------------------------
    # shard routing
    # ------------------------------------------------------------------

    def _client_for(self, item_id: str) -> ServiceProxy:
        if not self.sharded:
            return self.bft
        self._routed.inc()
        return self.bft_clients[self.router.route(item_id)]

    # ------------------------------------------------------------------
    # frontend-facing side
    # ------------------------------------------------------------------

    def _on_local_message(self, message, src: str) -> None:
        if isinstance(message, ItemUpdate):
            self.stats["updates_in"] += 1
            self._submit(self._client_for(message.item_id), message)
            return
        if isinstance(message, WriteResult):
            self.stats["write_results_in"] += 1
            self._submit(self._client_for(message.item_id), message)
            return
        if isinstance(message, BrowseReply):
            # Teaches the replicated Master this Frontend's item directory
            # (and therefore which proxy owns which item). Sharded: each
            # group learns exactly the slice of the directory it owns.
            if not self.sharded:
                self._submit(self.bft, message)
                return
            by_shard: dict[int, list] = {}
            for entry in message.items:
                by_shard.setdefault(self.router.route(entry[0]), []).append(entry)
            for shard in sorted(by_shard):
                self._submit(
                    self.bft_clients[shard],
                    BrowseReply(items=tuple(by_shard[shard])),
                )
            return

    def _submit(self, client: ServiceProxy, message) -> None:
        event = client.invoke_ordered(encode(message))
        event.add_callback(self._on_invoke_done)

    def _on_invoke_done(self, event) -> None:
        if not event.ok:
            event.defused = True
            self.stats["invoke_failures"] += 1

    # ------------------------------------------------------------------
    # replica-facing side: voted pushes (WriteValue towards the field)
    # ------------------------------------------------------------------

    def _on_push(self, order: tuple, payload: bytes) -> None:
        try:
            message = decode(payload)
        except DecodeError:
            return
        if isinstance(message, WriteValue):
            self.stats["writes_out"] += 1
            rewritten = WriteValue(
                item_id=message.item_id,
                value=message.value,
                op_id=message.op_id,
                reply_to=self.address,
                operator=message.operator,
            )
            self.endpoint.send(self.frontend_address, rewritten)
