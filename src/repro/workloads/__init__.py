"""Workload generators, metrics and the experiment runner."""

from repro.workloads.generators import UpdateWorkload, WriteWorkload
from repro.workloads.metrics import LatencyRecorder, ThroughputMeter
from repro.workloads.profiler import profile_hot_paths, summary_rows, write_report
from repro.workloads.runner import (
    ALARM_THRESHOLD,
    ExperimentResult,
    run_update_experiment,
    run_write_experiment,
)

__all__ = [
    "ALARM_THRESHOLD",
    "ExperimentResult",
    "LatencyRecorder",
    "ThroughputMeter",
    "UpdateWorkload",
    "WriteWorkload",
    "profile_hot_paths",
    "run_update_experiment",
    "run_write_experiment",
    "summary_rows",
    "write_report",
]
