"""Workload generators, metrics and the experiment runner."""

from repro.workloads.generators import UpdateWorkload, WriteWorkload
from repro.workloads.metrics import LatencyRecorder, ThroughputMeter
from repro.workloads.runner import (
    ALARM_THRESHOLD,
    ExperimentResult,
    run_update_experiment,
    run_write_experiment,
)

__all__ = [
    "ALARM_THRESHOLD",
    "ExperimentResult",
    "LatencyRecorder",
    "ThroughputMeter",
    "UpdateWorkload",
    "WriteWorkload",
    "run_update_experiment",
    "run_write_experiment",
]
