"""Measurement utilities: throughput windows and latency statistics."""

from __future__ import annotations

import math


class ThroughputMeter:
    """Measures a counter's rate over an explicit steady-state window.

    Benchmarks call :meth:`open_window` after warm-up and
    :meth:`close_window` before cool-down; the rate excludes both.
    """

    def __init__(self, sim, sample) -> None:
        self.sim = sim
        self._sample = sample
        self._start_count = None
        self._start_time = None
        self._end_count = None
        self._end_time = None

    def open_window(self) -> None:
        self._start_count = self._sample()
        self._start_time = self.sim.now

    def close_window(self) -> None:
        if self._start_count is None:
            raise RuntimeError(
                "close_window() before open_window(): open the steady-state "
                "window after warm-up first"
            )
        self._end_count = self._sample()
        self._end_time = self.sim.now

    @property
    def count(self) -> int:
        if self._start_count is None or self._end_count is None:
            raise RuntimeError("window was not opened/closed")
        return self._end_count - self._start_count

    @property
    def duration(self) -> float:
        if self._start_time is None or self._end_time is None:
            raise RuntimeError("window was not opened/closed")
        return self._end_time - self._start_time

    @property
    def rate(self) -> float:
        """Operations per second inside the window."""
        if self.duration <= 0:
            return 0.0
        return self.count / self.duration


class LatencyRecorder:
    """Collects latency samples and reports summary statistics."""

    def __init__(self) -> None:
        self.samples: list = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("negative latency")
        self.samples.append(latency)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100].

        Raises ``RuntimeError`` on an empty recorder — a silent ``nan``
        here tends to propagate into reports unnoticed. (The ``p50`` /
        ``p99`` convenience properties keep the ``nan`` convention for
        summary tables.)
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.samples:
            raise RuntimeError("no latency samples recorded")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    @property
    def p50(self) -> float:
        return self.percentile(50) if self.samples else math.nan

    @property
    def p99(self) -> float:
        return self.percentile(99) if self.samples else math.nan

    def summary(self) -> dict:
        return {
            "count": len(self.samples),
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "max": max(self.samples) if self.samples else math.nan,
        }
