"""Kernel-churn microbenchmark: heap kernel vs ring kernel, one process.

The workload is the scheduling pattern the simulation actually stresses:
a standing population of failure-detector timers (armed seconds out,
almost always cancelled and re-armed before firing) churned by a
sub-millisecond tick that also issues fire-and-forget deliveries — i.e.
the retransmission/failure-detector shape from the BFT-SMaRt stack,
reduced to pure kernel operations through the portable
``defer``/``timer``/``cancel_timer`` API both kernels implement.

Both kernels run the *identical* seeded workload; the benchmark asserts
their dispatch/cancel counts match before reporting, so the speedup
number can never come from the kernels doing different work.
``run_kernel_report`` packages the results (plus a tracemalloc
allocation probe and the bft-micro end-to-end wall clock) for the
``kernel`` section of ``BENCH_PERF.json``; ``python -m repro perf
kernel-bench`` and the CI throughput gate are thin wrappers.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager

from repro.perf import PERF

#: Standing failure-detector timer population.
DEFAULT_POPULATION = 20_000
#: Simulated seconds of churn per measured run.
DEFAULT_DURATION = 4.0


@contextmanager
def kernel_override(kernel: str):
    """Select ``kernel`` for every Simulator built inside the block."""
    previous = PERF.kernel
    PERF.kernel = kernel
    try:
        yield
    finally:
        PERF.kernel = previous


def _noop() -> None:
    return None


def _build_churn(sim, population: int):
    """Install the churn workload on ``sim``; returns nothing.

    Per 0.5 ms tick: cancel four standing failure-detector timers and
    re-arm them 2 s out, emit two fire-and-forget "deliveries", and
    reschedule itself — so every tick exercises slot allocation, O(1)
    cancellation, wheel insertion at two distance scales and the
    dispatch path, in a fixed deterministic mix.
    """
    rng = sim.rng.stream("kernelbench")
    timer = sim.timer
    cancel = sim.cancel_timer
    defer = sim.defer
    handles = [timer(1.0 + 4.0 * rng.random(), _noop) for _ in range(population)]
    state = {"pos": 0}

    def tick() -> None:
        pos = state["pos"]
        for _ in range(4):
            cancel(handles[pos])
            handles[pos] = timer(2.0, _noop)
            pos += 1
            if pos == population:
                pos = 0
        state["pos"] = pos
        defer(0.0003, _noop)
        defer(0.0003, _noop)
        defer(0.0005, tick)

    defer(0.0005, tick)


def run_churn(
    kernel: str,
    population: int = DEFAULT_POPULATION,
    duration: float = DEFAULT_DURATION,
    seed: int = 11,
) -> dict:
    """Run the churn microbenchmark on one kernel; returns its metrics.

    ``events_per_s`` counts scheduling *work* retired per wall second:
    dispatches plus cancellations (a cancellation is the operation the
    pattern exists to make cheap; counting dispatches alone would reward
    a kernel for doing cancellation slowly).
    """
    from repro.sim import Simulator

    with kernel_override(kernel):
        sim = Simulator(seed=seed)
    _build_churn(sim, population)
    start = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - start
    stats = sim.stats()
    dispatched = stats["events_dispatched"]
    cancelled = stats["timers_cancelled"]
    return {
        "kernel": kernel,
        "population": population,
        "sim_duration_s": duration,
        "wall_s": wall,
        "dispatched": dispatched,
        "cancelled": cancelled,
        "events_per_s": (dispatched + cancelled) / wall,
        "tombstones_skipped": stats["tombstones_skipped"],
        "heap_peak": stats["heap_peak"],
        # Ring only: cancelled slots physically recycled (None on heap).
        "slots_freed": stats.get("slots_freed"),
    }


def run_allocation_probe(
    kernel: str,
    population: int = 2_000,
    duration: float = 0.5,
    seed: int = 11,
) -> dict:
    """tracemalloc snapshot of a short churn run (blocks/bytes allocated).

    Run separately from the timed benchmark — tracemalloc's hooks are
    far too slow to share a measurement with the wall clock.
    """
    from repro.sim import Simulator

    with kernel_override(kernel):
        sim = Simulator(seed=seed)
    _build_churn(sim, population)
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    sim.run(until=duration)
    after, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stats = sim.stats()
    ops = stats["events_dispatched"] + stats["timers_cancelled"]
    return {
        "kernel": kernel,
        "ops": ops,
        "net_bytes": after - before,
        "peak_bytes": peak,
        "net_bytes_per_op": (after - before) / ops if ops else 0.0,
    }


def run_bft_micro_wall(kernel: str, **kwargs) -> dict:
    """End-to-end §V-B microbenchmark wall clock on one kernel."""
    from repro.workloads.profiler import run_bft_micro

    with kernel_override(kernel):
        start = time.perf_counter()
        result, stats = run_bft_micro(**kwargs)
        wall = time.perf_counter() - start
    return {
        "kernel": kernel,
        "wall_s": wall,
        "result": result,
        "dispatched": stats["events_dispatched"],
    }


def run_kernel_report(
    population: int = DEFAULT_POPULATION,
    duration: float = DEFAULT_DURATION,
    with_bft_micro: bool = True,
    with_allocations: bool = True,
) -> dict:
    """Measure both kernels in one process; returns the ``kernel`` section.

    Raises ``AssertionError`` if the two kernels retired different work
    on the identical seeded workload — the speedup is only meaningful
    over equal work.
    """
    heap = run_churn("heap", population=population, duration=duration)
    ring = run_churn("ring", population=population, duration=duration)
    if (heap["dispatched"], heap["cancelled"]) != (
        ring["dispatched"],
        ring["cancelled"],
    ):
        raise AssertionError(
            f"kernel divergence on identical workload: heap="
            f"{(heap['dispatched'], heap['cancelled'])} ring="
            f"{(ring['dispatched'], ring['cancelled'])}"
        )
    report: dict = {
        "description": (
            "Flat-array ring kernel vs reference heap kernel, measured in "
            "one process on identical seeded workloads. The churn "
            "microbenchmark is the failure-detector/retransmission "
            "pattern (standing timer population, cancel-heavy) driven "
            "through the portable defer/timer/cancel_timer API."
        ),
        "churn_microbench": {
            "heap": heap,
            "ring": ring,
            "speedup": ring["events_per_s"] / heap["events_per_s"],
        },
    }
    if with_allocations:
        report["allocations"] = {
            "heap": run_allocation_probe("heap"),
            "ring": run_allocation_probe("ring"),
        }
    if with_bft_micro:
        heap_e2e = run_bft_micro_wall("heap")
        ring_e2e = run_bft_micro_wall("ring")
        if heap_e2e["result"] != ring_e2e["result"]:
            raise AssertionError(
                "kernels disagree on bft-micro simulation results"
            )
        for entry in (heap_e2e, ring_e2e):
            entry.pop("result")
        report["bft_micro_wall"] = {
            "heap": heap_e2e,
            "ring": ring_e2e,
            "speedup": heap_e2e["wall_s"] / ring_e2e["wall_s"],
        }
    return report


def write_kernel_report(report: dict, path: str | None = None) -> str:
    """Merge ``{"kernel": report}`` into BENCH_PERF.json."""
    from repro.workloads.profiler import REPORT_FILE, write_report

    return write_report({"kernel": report}, path or REPORT_FILE)
