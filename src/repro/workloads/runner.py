"""Experiment runner: builds a system, drives a workload, measures.

This is the shared engine behind the benchmark suite (one bench per
paper table/figure) and several examples. Each ``run_*`` function builds
a fresh deployment for one parameter point and returns an
:class:`ExperimentResult` with the same quantities the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SmartScadaConfig
from repro.core.system import build_neoscada, build_smartscada, make_network
from repro.neoscada.handlers.chain import HandlerChain
from repro.neoscada.handlers.monitor import Monitor
from repro.sim.kernel import Simulator
from repro.workloads.generators import UpdateWorkload, WriteWorkload
from repro.workloads.metrics import LatencyRecorder, ThroughputMeter

#: Threshold used by the Monitor handler in the alarm experiments;
#: UpdateWorkload's alarm_value exceeds it, normal_value does not.
ALARM_THRESHOLD = 500.0


@dataclass
class ExperimentResult:
    """One measured point of an experiment."""

    system: str
    workload: str
    offered_rate: float | None
    throughput: float
    alarm_ratio: float = 0.0
    latency: dict = field(default_factory=dict)
    details: dict = field(default_factory=dict)

    def overhead_vs(self, baseline: "ExperimentResult") -> float:
        """Relative throughput drop vs. a baseline result (0.06 = 6%)."""
        if baseline.throughput <= 0:
            return 0.0
        return 1.0 - self.throughput / baseline.throughput


def _build(
    system: str,
    sim: Simulator,
    item_count: int,
    alarms: bool,
    trace: bool = False,
    config: SmartScadaConfig | None = None,
    hop_latency: float | None = None,
):
    if hop_latency is None:
        net = make_network(sim, trace=trace)
    else:
        net = make_network(sim, hop_latency=hop_latency, trace=trace)
    if system == "neoscada":
        deployment = build_neoscada(sim, net=net)
    elif system == "smartscada":
        deployment = build_smartscada(
            sim, net=net, config=config if config is not None else SmartScadaConfig()
        )
    else:
        raise ValueError(f"unknown system {system!r}")
    frontend = deployment.frontend
    item_ids = [f"rtu.sensor.{i}" for i in range(item_count)]
    for item_id in item_ids:
        frontend.add_item(item_id, initial=0)
    frontend.add_item("rtu.actuator", initial=0, writable=True)
    if alarms:
        for item_id in item_ids:
            deployment.attach_handlers(
                item_id, lambda: HandlerChain([Monitor(high=ALARM_THRESHOLD)])
            )
    deployment.start()
    return deployment, item_ids


def run_update_experiment(
    system: str,
    rate: float = 1000.0,
    alarm_ratio: float = 0.0,
    duration: float = 6.0,
    warmup: float = 1.0,
    item_count: int = 20,
    seed: int = 1,
    config: SmartScadaConfig | None = None,
    hop_latency: float | None = None,
) -> ExperimentResult:
    """The Update-Item workload of §V-A (Figures 8a and 8b).

    Offers ``rate`` ItemUpdates/s at the Frontend and measures how many
    per second reach the HMI during the steady-state window. ``config``
    (smartscada only) and ``hop_latency`` override the deployment for
    ablations; the defaults reproduce the paper's Figure 8 setup.
    """
    sim = Simulator(seed=seed)
    deployment, item_ids = _build(
        system,
        sim,
        item_count,
        alarms=alarm_ratio > 0.0,
        config=config,
        hop_latency=hop_latency,
    )
    # End-to-end update latency: the injected DataValue carries its
    # creation time; handlers preserve it all the way to the HMI.
    latencies = LatencyRecorder()
    recording = {"on": False}

    def on_value(item_id, value) -> None:
        if recording["on"] and value.timestamp > 0:
            latencies.record(sim.now - value.timestamp)

    deployment.hmi.on_value_change = on_value
    workload = UpdateWorkload(
        sim,
        deployment.frontend,
        item_ids,
        rate=rate,
        alarm_ratio=alarm_ratio,
        normal_value=int(ALARM_THRESHOLD) - 400,
        alarm_value=int(ALARM_THRESHOLD) + 400,
    )
    meter = ThroughputMeter(sim, lambda: deployment.hmi.stats["updates"])
    events_meter = ThroughputMeter(sim, lambda: deployment.hmi.stats["events"])
    workload.start(duration=warmup + duration)
    sim.run(until=sim.now + warmup)
    meter.open_window()
    events_meter.open_window()
    recording["on"] = True
    sim.run(until=sim.now + duration)
    meter.close_window()
    events_meter.close_window()
    recording["on"] = False
    return ExperimentResult(
        system=system,
        workload="update",
        offered_rate=rate,
        throughput=meter.rate,
        alarm_ratio=alarm_ratio,
        latency=latencies.summary() if len(latencies) else {},
        details={
            "injected": workload.injected,
            "alarms_injected": workload.alarms_injected,
            "event_rate": events_meter.rate,
            "hmi_updates": deployment.hmi.stats["updates"],
        },
    )


def run_write_experiment(
    system: str,
    duration: float = 4.0,
    warmup: float = 0.5,
    seed: int = 1,
) -> ExperimentResult:
    """The Write-Value workload of §V-B (Figure 8c).

    A closed loop of synchronous writes; throughput is completed writes
    per second in the steady window.
    """
    sim = Simulator(seed=seed)
    deployment, _item_ids = _build(system, sim, item_count=1, alarms=False)
    workload = WriteWorkload(sim, deployment.hmi, "rtu.actuator")
    meter = ThroughputMeter(sim, lambda: workload.completed)
    workload.start(duration=warmup + duration)
    sim.run(until=sim.now + warmup)
    meter.open_window()
    sim.run(until=sim.now + duration)
    meter.close_window()
    sim.run(stop_on=workload.done, until=sim.now + 30)
    return ExperimentResult(
        system=system,
        workload="write",
        offered_rate=None,
        throughput=meter.rate,
        latency=workload.latencies.summary(),
        details={"completed": workload.completed, "failed": workload.failed},
    )
