"""Wall-clock profiler for the hot-path performance pass.

Runs the two heaviest pipelines of the repository — the §V-B BFT-SMaRt
microbenchmark (1 KiB echo under a 25k req/s firehose) and the Figure
8(a) update workload — twice inside one process: once with every
optimisation switch off (:mod:`repro.perf` restores the legacy code
paths) and once with them on. Besides the wall-clock times it collects
the kernel counters (:meth:`repro.sim.Simulator.stats`) and the cache
hit/miss statistics, and asserts that both phases produced *identical*
simulation results — the caching layers must be behaviour-invisible.

``profile_hot_paths`` returns the report as a dict;
``write_report`` dumps it to ``BENCH_PERF.json``. The ``python -m repro
perf`` subcommand and ``benchmarks/test_perf_wallclock.py`` are thin
wrappers around these two functions.
"""

from __future__ import annotations

import json
import time

from repro.perf import PERF, hot_path_optimizations

#: Default output file, at the repository root when run from there.
REPORT_FILE = "BENCH_PERF.json"


def run_bft_micro(
    offered_rate: float = 25_000.0,
    warmup: float = 0.2,
    window: float = 0.6,
    payload_size: int = 1024,
    seed: int = 1,
):
    """The §V-B microbenchmark pipeline (mirrors ``benchmarks/test_bft_micro``).

    Returns ``(result, kernel_stats)`` where ``result`` is the
    ``(rate, replica_stats)`` pair the benchmark asserts on and
    ``kernel_stats`` is the simulator's counter snapshot.
    """
    from repro.bftsmart import EchoService, GroupConfig, build_group, build_proxy
    from repro.crypto import KeyStore
    from repro.net import ConstantLatency, Network
    from repro.sim import Simulator
    from repro.workloads.metrics import ThroughputMeter

    payload = bytes(payload_size)
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.00025))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=500, batch_wait=0.001)
    replicas = build_group(sim, net, config, EchoService, keystore)
    proxy = build_proxy(
        sim, net, "load-client", config, keystore, invoke_timeout=5.0
    )

    def firehose():
        interval = 1.0 / offered_rate
        while True:
            event = proxy.invoke_ordered(payload)
            event.add_callback(lambda ev: setattr(ev, "defused", True))
            yield sim.timeout(interval)

    sim.process(firehose())
    meter = ThroughputMeter(sim, lambda: replicas[0].stats["executed"])
    sim.run(until=warmup)
    meter.open_window()
    sim.run(until=warmup + window)
    meter.close_window()
    return (meter.rate, dict(replicas[0].stats)), sim.stats()


def run_fig8a(rate: float = 1000.0, duration: float = 2.0, seed: int = 1):
    """The Figure 8(a) update pipeline (SMaRt-SCADA, no alarms)."""
    from repro.workloads.runner import run_update_experiment

    result = run_update_experiment(
        "smartscada", rate=rate, alarm_ratio=0.0, duration=duration, seed=seed
    )
    return (result.throughput, result.latency), None


PIPELINES = {
    "bft_micro": run_bft_micro,
    "fig8a_update": run_fig8a,
}


def _measure(fn, enabled: bool) -> dict:
    with hot_path_optimizations(enabled):
        start = time.perf_counter()
        result, kernel = fn()
        wall = time.perf_counter() - start
        cache_stats = PERF.stats_map() if enabled else None
    entry = {"wall_s": wall, "result": result}
    if kernel is not None:
        entry["kernel"] = kernel
    if cache_stats is not None:
        entry["cache_stats"] = cache_stats
    return entry


def profile_hot_paths(pipelines: dict | None = None) -> dict:
    """Measure every pipeline with optimisations off, then on.

    Raises ``AssertionError`` if any pipeline's simulation result differs
    between the two phases: every optimisation must be invisible to the
    simulated behaviour, not just to the tests.
    """
    pipelines = PIPELINES if pipelines is None else pipelines
    report = {
        "description": (
            "Hot-path performance pass: wall-clock seconds per pipeline "
            "with every optimisation switch off (baseline, legacy code "
            "paths) vs on (optimized)."
        ),
        "switches": PERF.enabled_map(),
        "pipelines": {},
    }
    for name, fn in pipelines.items():
        baseline = _measure(fn, enabled=False)
        optimized = _measure(fn, enabled=True)
        if baseline["result"] != optimized["result"]:
            raise AssertionError(
                f"{name}: optimisations changed the simulation result — "
                f"baseline={baseline['result']!r} "
                f"optimized={optimized['result']!r}"
            )
        baseline.pop("result")
        optimized.pop("result")
        report["pipelines"][name] = {
            "baseline": baseline,
            "optimized": optimized,
            "speedup": baseline["wall_s"] / optimized["wall_s"],
            "results_equal": True,
        }
    return report


def write_report(report: dict, path: str = REPORT_FILE) -> str:
    """Write ``report``'s sections into ``path``, merging over the file.

    Top-level keys already present on disk but absent from ``report``
    (e.g. the ``pipeline_ablation`` curve written by a different
    benchmark) are preserved, so the wallclock pass and the ablations can
    update the same BENCH_PERF.json in any order.
    """
    merged: dict = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict):
            merged = existing
    except (OSError, ValueError):
        merged = {}
    merged.update(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def summary_rows(report: dict) -> list:
    """Rows for the paper-style summary table of a profiler report."""
    rows = []
    for name, entry in sorted(report.get("pipelines", {}).items()):
        rows.append(
            [
                name,
                f"{entry['baseline']['wall_s']:.2f}",
                f"{entry['optimized']['wall_s']:.2f}",
                f"{entry['speedup']:.2f}x",
                "yes" if entry.get("results_equal") else "NO",
            ]
        )
    return rows
