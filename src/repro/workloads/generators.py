"""Workload generators reproducing the paper's §V experiments.

The Update-Item workload "emulates a scenario wherein every second 1000
RTUs are updated and then propagate their information to the Frontend"
— with the RTUs removed and the Frontend generating the messages, which
is exactly what :class:`UpdateWorkload` does via
:meth:`~repro.neoscada.frontend.Frontend.inject_update`. The Write-Value
workload is a closed loop of synchronous HMI writes
(:class:`WriteWorkload`).
"""

from __future__ import annotations

from repro.neoscada.frontend import Frontend
from repro.neoscada.hmi import HMI
from repro.sim.kernel import Simulator
from repro.workloads.metrics import LatencyRecorder


class UpdateWorkload:
    """Open-loop item updates injected at the Frontend at a fixed rate.

    Parameters
    ----------
    sim, frontend:
        Where updates are injected.
    item_ids:
        Items updated round-robin (the paper's 1000 RTUs map onto these).
    rate:
        Updates per second, spread evenly.
    alarm_ratio:
        Fraction of updates whose value exceeds the alarm threshold
        configured on the Monitor handler (0.0, 0.5 and 1.0 in Fig. 8).
        The alarm pattern is a deterministic fraction accumulator, so
        exactly ``ratio × n`` of any ``n`` consecutive updates alarm.
    normal_value, alarm_value:
        Values emitted below/above the threshold. A small deterministic
        wobble keeps consecutive values distinct so every injection is a
        real change.
    """

    def __init__(
        self,
        sim: Simulator,
        frontend: Frontend,
        item_ids: list,
        rate: float,
        alarm_ratio: float = 0.0,
        normal_value: int = 100,
        alarm_value: int = 1000,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= alarm_ratio <= 1.0:
            raise ValueError("alarm_ratio must be within [0, 1]")
        if not item_ids:
            raise ValueError("need at least one item")
        self.sim = sim
        self.frontend = frontend
        self.item_ids = list(item_ids)
        self.rate = rate
        self.alarm_ratio = alarm_ratio
        self.normal_value = normal_value
        self.alarm_value = alarm_value
        self.injected = 0
        self.alarms_injected = 0
        self._alarm_accumulator = 0.0
        self._process = None

    def start(self, duration: float | None = None) -> None:
        """Begin injecting; stops after ``duration`` seconds if given."""
        if self._process is not None:
            raise RuntimeError("workload already started")
        self._process = self.sim.process(
            self._run(duration), name="update-workload"
        )

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def _run(self, duration: float | None):
        from repro.sim.process import Interrupted

        interval = 1.0 / self.rate
        deadline = None if duration is None else self.sim.now + duration
        try:
            while deadline is None or self.sim.now < deadline:
                yield self.sim.timeout(interval)
                self._inject_one()
        except Interrupted:
            pass

    def _inject_one(self) -> None:
        item_id = self.item_ids[self.injected % len(self.item_ids)]
        self._alarm_accumulator += self.alarm_ratio
        if self._alarm_accumulator >= 1.0:
            self._alarm_accumulator -= 1.0
            base = self.alarm_value
            self.alarms_injected += 1
        else:
            base = self.normal_value
        # Alternate +/-1 so consecutive injections always differ.
        value = base + (self.injected % 2)
        self.injected += 1
        self.frontend.inject_update(item_id, value)


class WriteWorkload:
    """Closed-loop synchronous writes from the HMI (Fig. 8c).

    "For each write operation, the HMI waits until the operation is
    completed" — one outstanding write at a time, issued back-to-back.
    """

    def __init__(
        self,
        sim: Simulator,
        hmi: HMI,
        item_id: str,
        values: tuple = (0, 1),
    ) -> None:
        self.sim = sim
        self.hmi = hmi
        self.item_id = item_id
        self.values = values
        self.completed = 0
        self.failed = 0
        self.latencies = LatencyRecorder()
        self._process = None

    def start(self, duration: float) -> None:
        if self._process is not None:
            raise RuntimeError("workload already started")
        self._process = self.sim.process(self._run(duration), name="write-workload")

    @property
    def done(self):
        """Event that triggers when the workload finishes."""
        return self._process

    def _run(self, duration: float):
        deadline = self.sim.now + duration
        index = 0
        while self.sim.now < deadline:
            value = self.values[index % len(self.values)]
            index += 1
            started = self.sim.now
            result = yield self.hmi.write(self.item_id, value)
            self.latencies.record(self.sim.now - started)
            if result.success:
                self.completed += 1
            else:
                self.failed += 1
        return self.completed
