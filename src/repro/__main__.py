"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
fig8
    Regenerate the paper's Figure 8 (all three panels) and print the
    paper-vs-measured table. Accepts ``--duration`` to trade accuracy
    for speed.
demo
    Run the quickstart scenario (one update with an alarm, one write)
    against a fresh SMaRt-SCADA deployment and print what happened.
steps
    Replay one item update and one write through both systems and print
    the communication-step flows (Figures 3/4 vs 6/7).
shards
    Run the sharded deployment demo: N independent BFT groups behind
    one item namespace, hash-partitioned shard map, deterministic
    global AE order. ``--split`` exercises a live shard split.
perf
    Print the hot-path performance report (``BENCH_PERF.json``),
    measuring it first if the file does not exist (``--rerun`` forces a
    fresh measurement).
chaos
    Run fault-drill campaigns against SMaRt-SCADA: a named scenario
    (``--list`` shows them), or ``random`` for seeded sampled schedules.
    ``--seeds N`` sweeps N seeds; ``--shrink`` minimizes a failing
    schedule and prints a replayable snippet; ``--json`` emits
    machine-readable verdicts for CI and tooling; ``--trace-dump PATH``
    dumps the span window around the first invariant violation;
    ``--ids`` runs the trace-driven intrusion detector alongside the
    monitors and reports its detections.
ids
    Evaluate the intrusion detector (``repro.ids``): per-behaviour
    attack campaigns report detection latency, precision, recall and F1
    against planted ground truth, plus a benign fault suite that must
    stay detection-free. ``--bench`` writes ``BENCH_IDS.json`` including
    the IDS-on vs tracing-only overhead ratio.
trace
    Trace a seeded workload end to end (``repro.obs``): writes a
    Perfetto-loadable Chrome trace-event file and prints phase-by-phase
    "request autopsies" of the slowest and median requests.
"""

from __future__ import annotations

import argparse
import sys


def _print_table(title: str, header: list, rows: list) -> None:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))


def cmd_fig8(args) -> int:
    from repro.workloads import run_update_experiment, run_write_experiment

    offered = 1000.0
    duration = args.duration
    print(f"running Figure 8 ({duration:.1f}s measurement windows)...")
    rows = []
    for label, ratio, paper in (
        ("8(a) update, no alarms", 0.0, "6%"),
        ("8(b) update, 50% alarms", 0.5, "10%"),
        ("8(b) update, 100% alarms", 1.0, "25%"),
    ):
        neo = run_update_experiment(
            "neoscada", rate=offered, alarm_ratio=ratio, duration=duration
        ).throughput
        smart = run_update_experiment(
            "smartscada", rate=offered, alarm_ratio=ratio, duration=duration
        ).throughput
        rows.append(
            [label, f"{neo:.0f}", f"{smart:.0f}", f"{1 - smart / neo:.1%}", paper]
        )
    neo = run_write_experiment("neoscada", duration=duration).throughput
    smart = run_write_experiment("smartscada", duration=duration).throughput
    rows.append(
        ["8(c) synchronous writes", f"{neo:.0f}", f"{smart:.0f}",
         f"{1 - smart / neo:.1%}", "78%"]
    )
    _print_table(
        "Figure 8 — full reproduction (ops/s)",
        ["experiment", "NeoSCADA", "SMaRt-SCADA", "overhead", "paper"],
        rows,
    )
    return 0


def cmd_demo(args) -> int:
    from repro.core import build_smartscada
    from repro.neoscada import HandlerChain, Monitor
    from repro.sim import Simulator

    sim = Simulator(seed=args.seed)
    system = build_smartscada(sim)
    system.frontend.add_item("plant.temperature", initial=20)
    system.frontend.add_item("plant.valve", initial=0, writable=True)
    system.attach_handlers(
        "plant.temperature", lambda: HandlerChain([Monitor(high=80.0)])
    )
    system.start()

    def scenario():
        system.frontend.inject_update("plant.temperature", 95)
        yield sim.timeout(0.5)
        print(f"HMI temperature : {system.hmi.value_of('plant.temperature')}")
        for alarm in system.hmi.alarms():
            print(f"HMI alarm       : {alarm.event_id}: {alarm.message}")
        result = yield system.hmi.write("plant.valve", 1)
        print(f"valve write     : success={result.success}")
        yield sim.timeout(0.5)
        return True

    sim.run_process(scenario(), until=30)
    identical = len(set(system.state_digests())) == 1
    print(f"replica states identical across n={len(system.proxy_masters)}: {identical}")
    return 0 if identical else 1


def cmd_shards(args) -> int:
    from repro.shard import ShardSplitter, ShardedScadaConfig, build_sharded_scada
    from repro.neoscada import HandlerChain, Monitor
    from repro.sim import Simulator

    sim = Simulator(seed=args.seed, kernel=args.kernel)
    config = ShardedScadaConfig(shards=args.shards)
    system = build_sharded_scada(sim, config=config)
    items = [f"plant.sensor-{i}" for i in range(8)]
    for item in items:
        system.frontend.add_item(item, initial=20)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.frontend.add_item("plant.valve", initial=0, writable=True)
    system.start()

    _print_table(
        f"shard map (hash-partitioned, {args.shards} groups)",
        ["item", "shard", "group addresses"],
        [
            [item, system.shard_of(item),
             ", ".join(system.config.group_config(system.shard_of(item)).addresses)]
            for item in items + ["plant.valve"]
        ],
    )

    def scenario():
        for i, item in enumerate(items):
            system.frontend.inject_update(item, 90 if i % 2 == 0 else 30)
            yield sim.timeout(0.02)
        result = yield system.hmi.write("plant.valve", 1)
        print(f"\nvalve write     : success={result.success}")
        yield sim.timeout(0.5)
        if args.split:
            splitter = ShardSplitter(system)
            target = args.shards - 1
            moved = [it for it in items if system.shard_of(it) != target][:2]
            print(f"splitting {moved} out to shard {target} "
                  f"(growing the target group)...")
            report = yield from splitter.split(moved, target, grow_target=True)
            print(f"split           : status={report.status} "
                  f"moved_items={report.moved_items} "
                  f"moved_events={report.moved_events} epoch={report.epoch}")
            # Give the freshly joined spare time to finish state transfer.
            yield sim.timeout(2.0)
        return True

    sim.run_process(scenario(), until=60)
    system.flush_events()

    alarms = system.hmi.alarms()
    print(f"alarms delivered: {len(alarms)} (globally ordered)")
    for alarm in alarms[:4]:
        print(f"  {alarm.item_id}: {alarm.message}")
    routers = [pf.router for pf in system.proxy_frontends] + [system.proxy_hmi.router]
    routers = [r for r in routers if r is not None]
    if routers:
        totals = {"hits": 0, "misses": 0, "invalidations": 0}
        for r in routers:
            for key in totals:
                totals[key] += r.stats[key]
        print(f"router caches   : hits={totals['hits']} "
              f"misses={totals['misses']} "
              f"invalidations={totals['invalidations']}")
    if system.proxy_hmi.merger is not None:
        stats = system.proxy_hmi.merger.stats
        print(f"global AE merge : offered={stats['offered']} "
              f"released={stats['released']} late={stats['late']}")
    ok = True
    for shard in range(args.shards):
        digests = set(system.state_digests(shard))
        members = len(system.group(shard))
        converged = len(digests) == 1
        ok = ok and converged
        print(f"shard {shard}         : n={members} "
              f"states identical: {converged}")
    return 0 if ok else 1


def _perf_kernel_bench(args) -> int:
    from repro.workloads.kernelbench import run_kernel_report, write_kernel_report

    print("kernel benchmark: heap vs ring on identical seeded workloads...")
    report = run_kernel_report()
    churn = report["churn_microbench"]
    rows = []
    for name in ("heap", "ring"):
        entry = churn[name]
        rows.append(
            [
                name,
                f"{entry['events_per_s']:,.0f}",
                f"{entry['wall_s']:.2f}",
                entry["dispatched"],
                entry["cancelled"],
                entry["tombstones_skipped"],
                entry["slots_freed"] if entry["slots_freed"] is not None else "-",
            ]
        )
    _print_table(
        f"churn microbenchmark — ring is {churn['speedup']:.2f}x the heap kernel",
        ["kernel", "events/s", "wall s", "dispatched", "cancelled",
         "tombstones", "slots recycled"],
        rows,
    )
    allocs = report.get("allocations")
    if allocs:
        _print_table(
            "allocations during churn (tracemalloc, separate short run)",
            ["kernel", "ops", "net bytes", "peak bytes", "net bytes/op"],
            [
                [
                    name,
                    entry["ops"],
                    entry["net_bytes"],
                    entry["peak_bytes"],
                    f"{entry['net_bytes_per_op']:.1f}",
                ]
                for name, entry in sorted(allocs.items())
            ],
        )
    e2e = report.get("bft_micro_wall")
    if e2e:
        _print_table(
            f"bft-micro end-to-end wall — ring is {e2e['speedup']:.2f}x",
            ["kernel", "wall s", "dispatched"],
            [
                [name, f"{e2e[name]['wall_s']:.2f}", e2e[name]["dispatched"]]
                for name in ("heap", "ring")
            ],
        )
    path = write_kernel_report(report, args.output)
    print(f"\nwrote kernel section of {path}")
    return 0


def cmd_perf(args) -> int:
    import json
    import os

    from repro.perf import PERF
    from repro.workloads.profiler import (
        REPORT_FILE,
        profile_hot_paths,
        summary_rows,
        write_report,
    )

    if args.kernel:
        PERF.kernel = args.kernel
    if args.mode == "kernel-bench":
        return _perf_kernel_bench(args)
    path = args.output or REPORT_FILE
    if os.path.exists(path) and not args.rerun:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
        print(f"loaded {path} (use --rerun to remeasure)")
    else:
        print("profiling hot paths (baseline vs optimized, one process)...")
        report = profile_hot_paths()
        write_report(report, path)
        print(f"wrote {path}")
    _print_table(
        "hot-path performance pass — wall-clock seconds",
        ["pipeline", "baseline", "optimized", "speedup", "identical results"],
        summary_rows(report),
    )
    caches = (
        report.get("pipelines", {})
        .get("bft_micro", {})
        .get("optimized", {})
        .get("cache_stats")
    )
    if caches:
        _print_table(
            "cache effectiveness (bft_micro, optimized run)",
            ["cache", "hits", "misses", "hit rate"],
            [
                [name, s["hits"], s["misses"], f"{s['hit_rate']:.1%}"]
                for name, s in sorted(caches.items())
            ],
        )
    return 0


def cmd_steps(args) -> int:
    from repro.core import build_neoscada, build_smartscada, make_network
    from repro.sim import Simulator

    def trace(system_name, operation):
        sim = Simulator(seed=1)
        net = make_network(sim, trace=True)
        builder = build_neoscada if system_name == "neoscada" else build_smartscada
        system = builder(sim, net=net)
        system.frontend.add_item("item", initial=0, writable=True)
        system.start()
        net.trace.clear()
        if operation == "update":
            system.frontend.inject_update("item", 1)
            sim.run(until=sim.now + 1)
        else:

            def op():
                result = yield system.hmi.write("item", 1)
                return result

            sim.run_process(op(), until=sim.now + 10)
        return net.trace

    for operation in ("update", "write"):
        for system_name in ("neoscada", "smartscada"):
            net_trace = trace(system_name, operation)
            stages = []
            for hop in net_trace.hops:
                stage = (hop.kind, hop.src, hop.dst)
                if stage not in stages:
                    stages.append(stage)
            print(f"\n{operation} flow through {system_name} "
                  f"({net_trace.count()} network hops):")
            for kind, src, dst in stages:
                print(f"  {src:24s} -> {dst:24s} {kind}")
    return 0


def cmd_trace(args) -> int:
    from repro.obs.export import (
        autopsy,
        format_autopsy,
        pick_trace,
        validate_chrome_trace,
        write_chrome_trace,
        write_spans_jsonl,
    )
    from repro.obs.trace import install_tracer
    from repro.sim import Simulator

    sim = Simulator(seed=args.seed)
    tracer = install_tracer(sim)

    if args.workload == "scada" and args.shards > 1:
        # Sharded autopsy: the same steady-state workload, but the write
        # and a wildcard event query cross the shard tier — the trace
        # shows ShardRouter resolution, scatter fan-out and the per-group
        # consensus rounds the request actually touched.
        from repro.core.system import make_network
        from repro.shard.config import ShardedScadaConfig
        from repro.shard.deployment import build_sharded_scada

        net = make_network(sim)
        system = build_sharded_scada(
            sim, net=net, config=ShardedScadaConfig(shards=args.shards)
        )
        sensors = [f"plant.s{i}" for i in range(4)]
        for sensor in sensors:
            system.frontend.add_item(sensor, initial=0)
        system.frontend.add_item("plant.actuator", initial=0, writable=True)
        system.start()
        tracer.clear()  # drop subscription churn; trace the steady state

        def update_traffic():
            interval = 1.0 / args.rate
            step = 0
            while True:
                yield sim.timeout(interval)
                step += 1
                for j, sensor in enumerate(sensors):
                    system.frontend.inject_update(
                        sensor, (step * 37 + j * 101) % 700 + 1
                    )

        def operator_write():
            yield sim.timeout(args.duration / 2)
            result = yield system.hmi.write("plant.actuator", 42)
            events = yield system.hmi.query_events("*")
            return result.success and events is not None

        sim.process(update_traffic(), name="trace-updates")
        sim.process(operator_write(), name="trace-write")
        sim.run(until=args.duration)
    elif args.workload == "bft-micro":
        from repro.bftsmart import EchoService, GroupConfig, build_group, build_proxy
        from repro.crypto import KeyStore
        from repro.net import ConstantLatency, Network

        net = Network(sim, latency=ConstantLatency(0.00025))
        keystore = KeyStore()
        group = GroupConfig(n=4, f=1, batch_max=500, batch_wait=0.001)
        build_group(sim, net, group, EchoService, keystore)
        proxy = build_proxy(
            sim, net, "load-client", group, keystore, invoke_timeout=5.0
        )

        def firehose():
            interval = 1.0 / args.rate
            while True:
                event = proxy.invoke_ordered(bytes(256))
                event.add_callback(lambda ev: setattr(ev, "defused", True))
                yield sim.timeout(interval)

        sim.process(firehose(), name="trace-firehose")
        sim.run(until=args.duration)
    else:  # fig8(a)-style SCADA update stream plus one operator write
        from repro.core import build_smartscada, make_network
        from repro.core.config import SmartScadaConfig

        net = make_network(sim)
        system = build_smartscada(
            sim, net=net, config=SmartScadaConfig(durability=True)
        )
        system.frontend.add_item("plant.sensor", initial=0)
        system.frontend.add_item("plant.actuator", initial=0, writable=True)
        system.start()
        tracer.clear()  # drop subscription churn; trace the steady state

        def update_traffic():
            interval = 1.0 / args.rate
            step = 0
            while True:
                yield sim.timeout(interval)
                step += 1
                system.frontend.inject_update("plant.sensor", step % 700 + 1)

        def operator_write():
            yield sim.timeout(args.duration / 2)
            result = yield system.hmi.write("plant.actuator", 42)
            return result.success

        sim.process(update_traffic(), name="trace-updates")
        sim.process(operator_write(), name="trace-write")
        sim.run(until=args.duration)

    data = write_chrome_trace(args.out, tracer.spans, clock=sim.now)
    errors = validate_chrome_trace(data)
    if errors:
        for error in errors:
            print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    print(
        f"wrote {args.out}: {len(tracer.spans)} spans, "
        f"{len(tracer.trace_ids())} traces, {len(data['traceEvents'])} events "
        f"(load in Perfetto / chrome://tracing)"
    )
    if args.jsonl:
        lines = write_spans_jsonl(args.jsonl, tracer.spans)
        print(f"wrote {args.jsonl}: {lines} span lines")
    for which in ("slowest", "median"):
        trace_id = pick_trace(tracer, which)
        report = autopsy(tracer, trace_id) if trace_id is not None else None
        if report is None:
            print(f"no finished request trace to autopsy ({which})")
            continue
        print(f"\n[{which}]")
        print(format_autopsy(report))
    return 0


def cmd_fleet(args) -> int:
    """The fleet observability control plane on a live sharded run.

    Drives a seeded multi-shard deployment with background SCADA
    traffic, samples the :class:`repro.obs.fleet.FleetScoreboard` (plus
    SLO burn-rate engine) on a fixed grid, and optionally injects one
    leader kill to demonstrate the degraded -> recovered transition the
    scoreboard and the availability SLO both flag.
    """
    import json as json_mod

    from repro.core.config import SmartScadaConfig
    from repro.core.system import make_network
    from repro.neoscada import HandlerChain, Monitor
    from repro.net.faults import Drop
    from repro.obs.fleet import FleetScoreboard
    from repro.obs.report import (
        render_scoreboard,
        render_transitions,
        write_html_report,
    )
    from repro.obs.slo import SloEngine
    from repro.obs.trace import install_tracer
    from repro.shard.config import ShardedScadaConfig
    from repro.shard.deployment import build_sharded_scada
    from repro.sim import Simulator

    sim = Simulator(seed=args.seed, kernel=args.kernel)
    tracer = install_tracer(sim) if args.trace else None
    net = make_network(sim)
    # Campaign-style short protocol timeouts so an injected leader kill
    # resolves (leader change + retransmissions) within the run.
    base = SmartScadaConfig(
        request_timeout=1.0,
        sync_timeout=2.0,
        invoke_timeout=0.5,
        logical_timeout=0.8,
    )
    system = build_sharded_scada(
        sim, net=net, config=ShardedScadaConfig(shards=args.shards, base=base)
    )
    sensors = [f"plant.s{i}" for i in range(6)]
    for sensor in sensors:
        system.frontend.add_item(sensor, initial=20)
        system.attach_handlers(
            sensor, lambda: HandlerChain([Monitor(high=80.0)])
        )
    system.frontend.add_item("plant.actuator", initial=0, writable=True)
    system.start()
    # Faults are on the menu: clients must keep probing through them.
    clients = list(system.proxy_hmi.bft_clients)
    for pf in system.proxy_frontends:
        clients.extend(pf.bft_clients)
    for client in clients:
        client.max_attempts = 1000
    for pm in system.proxy_masters:
        pm.vote_client.max_attempts = 1000

    engine = SloEngine(sim=sim)
    scoreboard = FleetScoreboard(system, slo_engine=engine)

    def update_traffic():
        step = 0
        while sim.now < args.duration:
            yield sim.timeout(0.1)
            step += 1
            for j, sensor in enumerate(sensors):
                # Every ~8th sample trips the Monitor: steady AE traffic
                # exercises the global merge (and its holdback buffer).
                high = (step + j) % 8 == 0
                system.frontend.inject_update(sensor, 90 if high else 30)

    writes = {"total": 0, "succeeded": 0}

    def write_traffic():
        number = 0
        while sim.now < args.duration:
            yield sim.timeout(0.4)
            number += 1
            writes["total"] += 1
            event = system.hmi.write("plant.actuator", number % 500 + 1)

            def on_done(ev) -> None:
                if ev.ok and ev.value.success:
                    writes["succeeded"] += 1

            event.add_callback(on_done)

    sim.process(update_traffic(), name="fleet-updates")
    sim.process(write_traffic(), name="fleet-writes")

    # One injected leader kill, chaos-style: both the replica and its
    # adapter go down (inbound) and drop all outbound traffic.
    kill = {"target": None, "rules": [], "at": None, "recovered_at": None}
    kill_at = args.duration / 3.0
    recover_at = 2.0 * args.duration / 3.0

    def kill_leader() -> None:
        leader = ""
        for pm in system.group(0):
            if pm.replica.active:
                leader = pm.replica.leader
                break
        if not leader:
            return
        kill["target"] = leader
        kill["at"] = sim.now
        for addr in (leader, f"{leader}-adapter"):
            net.crash(addr)
            kill["rules"].append(net.faults.add(Drop(src=addr)))

    def recover_leader() -> None:
        if kill["target"] is None:
            return
        for addr in (kill["target"], f"{kill['target']}-adapter"):
            net.recover(addr)
        for rule in kill["rules"]:
            if rule in net.faults.rules:
                net.faults.remove(rule)
        kill["rules"] = []
        kill["recovered_at"] = sim.now

    if args.kill_leader:
        sim.defer(max(kill_at - sim.now, 0.0), kill_leader)
        sim.defer(max(recover_at - sim.now, 0.0), recover_leader)

    # Host-driven sampling loop: the simulation advances in fixed
    # slices and the scoreboard reads (never perturbs) each one.
    live = not args.json
    while sim.now < args.duration:
        sim.run(until=min(sim.now + args.interval, args.duration))
        scoreboard.sample()
        if live:
            print(render_scoreboard(scoreboard))
    system.flush_events()
    sim.run(until=sim.now + 0.2)
    scoreboard.sample()

    summary = scoreboard.to_dict()
    summary["writes"] = dict(writes)
    summary["alarms_delivered"] = len(system.hmi.alarms())
    summary["kill"] = {
        "target": kill["target"],
        "at": kill["at"],
        "recovered_at": kill["recovered_at"],
    }
    statuses = [status for _t, status in scoreboard.statuses()]
    summary["degraded_seen"] = any(s != "ok" for s in statuses)
    summary["recovered"] = statuses[-1] == "ok" if statuses else False

    if args.html:
        write_html_report(
            scoreboard,
            args.html,
            title=f"Fleet report — {args.shards} shards, seed {args.seed}",
        )
    if tracer is not None and args.trace:
        from repro.obs.export import write_chrome_trace

        data = write_chrome_trace(args.trace, tracer.spans, clock=sim.now)
        summary["trace"] = {
            "path": args.trace,
            "spans": len(tracer.spans),
            "events": len(data["traceEvents"]),
        }

    if args.json:
        print(json_mod.dumps(summary, indent=2, default=str))
    else:
        print("\nstatus transitions:")
        print(render_transitions(scoreboard))
        print(f"\nwrites: {writes['succeeded']}/{writes['total']} succeeded, "
              f"{summary['alarms_delivered']} alarms delivered")
        if engine.violations:
            print("SLO violations:")
            for violation in engine.violations:
                shard = (
                    f" shard=s{violation.shard}"
                    if violation.shard is not None else ""
                )
                print(f"  t={violation.time:6.2f}s {violation.slo}"
                      f" burn={violation.burn_rate:.2f}{shard}")
        else:
            print("SLO violations: none")
        if args.html:
            print(f"wrote {args.html}")
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos import (
        get_scenario,
        list_scenarios,
        run_campaign,
        sample_schedule,
        shrink_schedule,
    )
    from repro.chaos.campaign import CampaignConfig

    if args.list:
        if args.json:
            import json

            print(json.dumps([
                {
                    "name": s.name,
                    "expectation": "violation" if s.expect_violation else "pass",
                    "description": s.description,
                    # Config-object overrides (IdsConfig, HealConfig)
                    # serialize as their constructor-valid reprs.
                    "overrides": {
                        key: value
                        if isinstance(value, (bool, int, float, str,
                                              type(None)))
                        else repr(value)
                        for key, value in s.overrides.items()
                    },
                }
                for s in list_scenarios()
            ], indent=2))
            return 0
        _print_table(
            "chaos scenarios",
            ["name", "expects", "description"],
            [
                [s.name, "violation" if s.expect_violation else "pass",
                 s.description]
                for s in list_scenarios()
            ],
        )
        return 0

    if args.scenario is None:
        print("error: name a scenario (or 'random'); see --list", file=sys.stderr)
        return 2

    if args.scenario == "random":
        expect_violation = False

        def build(seed):
            return sample_schedule(seed)

        def config_for(seed):
            return CampaignConfig(seed=seed)
    else:
        scenario = get_scenario(args.scenario)
        expect_violation = scenario.expect_violation

        def build(seed):
            return scenario.schedule()

        def config_for(seed):
            return scenario.config(seed=seed)

    if args.trace_dump is not None or args.ids or args.heal or args.fleet:
        from dataclasses import replace as dc_replace

        base_config_for = config_for
        extra = {}
        if args.trace_dump is not None:
            extra["trace_dump"] = args.trace_dump
        if args.ids:
            extra["ids"] = True
        if args.heal:
            extra["heal"] = True
        if args.fleet:
            extra["fleet"] = True

        def config_for(seed):
            return dc_replace(base_config_for(seed), **extra)

    seeds = range(args.seed, args.seed + args.seeds)
    rows = []
    campaigns = []
    as_expected = True
    failing = None
    for seed in seeds:
        schedule = build(seed)
        report = run_campaign(schedule, config_for(seed))
        verdict = "PASS" if report.ok else "FAIL"
        if report.ok == expect_violation:
            as_expected = False
        if not report.ok and failing is None:
            failing = (schedule, config_for(seed), report)
        rows.append([
            seed,
            verdict,
            len(schedule),
            f"{report.writes_succeeded}+{report.writes_failed_cleanly}f"
            f"/{report.writes_total}",
            report.fault_stats.get("total_fired", 0),
            ", ".join(report.violated_invariants()) or "-",
        ])
        campaigns.append({
            "seed": seed,
            "verdict": verdict,
            "ok": report.ok,
            "actions": len(schedule),
            "writes": {
                "total": report.writes_total,
                "succeeded": report.writes_succeeded,
                "failed_cleanly": report.writes_failed_cleanly,
            },
            "faults_fired": report.fault_stats.get("total_fired", 0),
            "violations": [
                {
                    "time": v.time,
                    "invariant": v.invariant,
                    "detail": v.detail,
                    "span_id": v.span_id,
                }
                for v in report.violations
            ],
            "restarts": report.restarts,
            "recoveries": report.recoveries,
            "rejuvenations": report.rejuvenations,
            "trace_dump": report.trace_dump,
            "trigger_fires": report.trigger_fires,
            "detections": [
                {
                    "time": d.time,
                    "kind": d.kind,
                    "entity": d.entity,
                    "score": d.score,
                    "detector": d.detector,
                }
                for d in report.detections
            ],
            "ids_score": report.ids_score,
            "heal_actions": report.heal_actions,
            "evictions": report.evictions,
            "fleet": report.fleet,
            "slo_violations": report.slo_violations,
            "fingerprint": report.fingerprint(),
        })

    shrunk = None
    if failing is not None and args.shrink:
        _schedule, _config, _report = failing
        if not args.json:
            print("shrinking the failing schedule...")
        result = shrink_schedule(_schedule, _config, pin_heal=args.heal)
        shrunk = result

    if args.json:
        import json

        print(json.dumps({
            "scenario": args.scenario,
            "expectation": "violation" if expect_violation else "pass",
            "as_expected": as_expected,
            "campaigns": campaigns,
            "shrink": None if shrunk is None else {
                "runs": shrunk.runs,
                "removed_actions": shrunk.removed_actions,
                "schedule": shrunk.schedule.describe(),
                "snippet": shrunk.snippet,
            },
        }, indent=2))
        return 0 if as_expected else 1

    _print_table(
        f"chaos campaign: {args.scenario}",
        ["seed", "verdict", "actions", "writes", "faults fired", "violations"],
        rows,
    )
    if args.ids:
        detected = [
            (c["seed"], d) for c in campaigns for d in c["detections"]
        ]
        if detected:
            print("\nintrusion detections:")
            for seed, d in detected:
                print(f"  seed={seed} t={d['time']:6.2f}s {d['kind']:24s} "
                      f"{d['entity']:12s} score={d['score']:.2f} "
                      f"({d['detector']})")
        else:
            print("\nintrusion detections: none")
    if args.heal:
        acted = [
            (c["seed"], a) for c in campaigns for a in c["heal_actions"]
        ]
        if acted:
            print("\nrecovery orchestrator actions:")
            for seed, a in acted:
                print(f"  seed={seed} t={a['time']:6.2f}s {a['kind']:10s} "
                      f"{a['target']:12s} {a['outcome']:12s} {a['detail']}")
        else:
            print("\nrecovery orchestrator actions: none")
    if failing is not None:
        _schedule, _config, report = failing
        print("\nfirst failing campaign:")
        for violation in report.violations:
            print(f"  t={violation.time:6.2f}s  {violation.invariant}: "
                  f"{violation.detail}")
        if shrunk is not None:
            print(f"minimal schedule after {shrunk.runs} runs "
                  f"({shrunk.removed_actions} actions removed):")
            print(shrunk.schedule.describe())
            print("\nreplay snippet:\n")
            print(shrunk.snippet)
    status = "as expected" if as_expected else "NOT as expected"
    print(f"\nexpectation: "
          f"{'violation' if expect_violation else 'pass'} — {status}")
    return 0 if as_expected else 1


#: The IDS evaluation matrix: per-behaviour Byzantine swap campaigns
#: (the equivocation drill compromises the initial leader), the two
#: frontend-side injection attacks, and the benign suite that must stay
#: detection-free.
def _ids_attack_schedules():
    from repro.chaos import (
        InjectWrites,
        Schedule,
        SpoofFrontend,
        SwapByzantine,
    )

    drills = []
    for behaviour in ("silent", "lying", "falsifying", "equivocating",
                      "stuttering"):
        index = 0 if behaviour == "equivocating" else 2
        drills.append((
            behaviour,
            Schedule([
                SwapByzantine(at=1.5, index=index, behaviour=behaviour,
                              duration=3.0),
            ]),
            {},
        ))
    drills.append((
        "write-burst",
        Schedule([InjectWrites(at=2.0, count=24, interval=0.03)]),
        {},
    ))
    drills.append((
        "spoof",
        Schedule([SpoofFrontend(at=2.0, count=30, interval=0.03)]),
        {},
    ))
    return drills


def _ids_benign_schedules():
    from repro.chaos import (
        CrashReplica,
        KillLeader,
        PartitionNet,
        Rejuvenate,
        Schedule,
    )
    from repro.chaos.schedule import CrashRestart

    return [
        ("kill-leader", Schedule([KillLeader(at=1.5, duration=1.5)]), {}),
        ("crash-recover", Schedule([CrashReplica(at=1.2, index=1, duration=2.0)]),
         {}),
        ("crash-restart",
         Schedule([CrashRestart(at=1.5, index=2, duration=1.0)]),
         {"durability": True}),
        ("rejuvenation", Schedule([Rejuvenate(at=2.0, index=2)]), {}),
        ("partition-split",
         Schedule([PartitionNet(at=1.5, duration=1.0, groups=((0, 1), (2, 3)))]),
         {}),
    ]


def cmd_ids(args) -> int:
    import json
    import time
    from dataclasses import replace as dc_replace

    from repro.chaos import run_campaign
    from repro.chaos.campaign import CampaignConfig

    base = CampaignConfig(ids=True)
    seeds = range(args.seed, args.seed + args.seeds)

    attack_rows = []
    behaviours_out = {}
    for label, schedule, overrides in _ids_attack_schedules():
        recalls, precisions, f1s, latencies = [], [], [], []
        episodes = detected = false_positives = 0
        for seed in seeds:
            report = run_campaign(
                schedule, dc_replace(base, seed=seed, **overrides)
            )
            entry = report.ids_score["behaviours"].get(label)
            if entry is None:
                entry = {"episodes": 0, "detected": 0, "recall": 0.0,
                         "precision": 0.0, "f1": 0.0, "mean_latency": None}
            episodes += entry["episodes"]
            detected += entry["detected"]
            recalls.append(entry["recall"])
            precisions.append(entry["precision"])
            f1s.append(entry["f1"])
            if entry["mean_latency"] is not None:
                latencies.append(entry["mean_latency"])
            false_positives += report.ids_score["false_positive_count"]
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
        summary = {
            "episodes": episodes,
            "detected": detected,
            "recall": round(mean(recalls), 4),
            "precision": round(mean(precisions), 4),
            "f1": round(mean(f1s), 4),
            "mean_latency": round(mean(latencies), 4) if latencies else None,
            "false_positives": false_positives,
        }
        behaviours_out[label] = summary
        attack_rows.append([
            label, episodes, detected,
            f"{summary['recall']:.2f}", f"{summary['precision']:.2f}",
            f"{summary['f1']:.2f}",
            f"{summary['mean_latency']:.2f}s" if latencies else "-",
            false_positives,
        ])

    benign_rows = []
    benign_out = {}
    benign_total = 0
    for label, schedule, overrides in _ids_benign_schedules():
        detections = 0
        for seed in seeds:
            report = run_campaign(
                schedule, dc_replace(base, seed=seed, **overrides)
            )
            detections += len(report.detections)
        benign_out[label] = detections
        benign_total += detections
        benign_rows.append([label, len(seeds), detections,
                            "clean" if detections == 0 else "FALSE POSITIVES"])

    # Overhead: the same campaign with tracing only vs tracing + IDS
    # (two timed runs each, best-of to damp scheduler noise).
    _, overhead_schedule, _ = _ids_attack_schedules()[1]  # lying drill

    def _best_wall(config) -> float:
        walls = []
        for _ in range(3):
            started = time.perf_counter()
            run_campaign(overhead_schedule, config)
            walls.append(time.perf_counter() - started)
        return min(walls)

    trace_wall = _best_wall(dc_replace(base, seed=args.seed, ids=False,
                                       trace_spans=True))
    ids_wall = _best_wall(dc_replace(base, seed=args.seed))
    overhead = ids_wall / trace_wall if trace_wall > 0 else 1.0

    _print_table(
        "intrusion detection vs planted ground truth "
        f"({len(seeds)} seeds per drill)",
        ["drill", "episodes", "detected", "recall", "precision", "f1",
         "latency", "FPs"],
        attack_rows,
    )
    _print_table(
        "benign fault suite (must stay detection-free)",
        ["drill", "runs", "detections", "verdict"],
        benign_rows,
    )
    print(f"\nIDS overhead vs tracing-only baseline: {overhead:.2f}x "
          f"({ids_wall:.2f}s vs {trace_wall:.2f}s wall)")

    if args.bench:
        payload = {
            "seeds": list(seeds),
            "behaviours": behaviours_out,
            "benign": {
                "drills": benign_out,
                "false_positives": benign_total,
            },
            "overhead": {
                "ids_wall_s": round(ids_wall, 4),
                "trace_wall_s": round(trace_wall, 4),
                "ratio": round(overhead, 4),
            },
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    core = ("silent", "lying", "falsifying")
    ok = (
        all(behaviours_out[b]["f1"] >= 0.9 for b in core)
        and benign_total == 0
    )
    print(f"\nacceptance (F1>=0.9 for {', '.join(core)}; benign clean): "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def cmd_heal(args) -> int:
    """Closed-loop recovery evaluation: evict drills, benign suite, guard."""
    import json
    from dataclasses import replace as dc_replace

    from repro.chaos import (
        AvailabilityMonitor,
        MttrMonitor,
        Schedule,
        SwapByzantine,
        run_campaign,
        run_scenario,
    )
    from repro.chaos.campaign import CampaignConfig
    from repro.chaos.monitors import default_monitors
    from repro.heal import HealConfig

    seeds = range(args.seed, args.seed + args.seeds)
    attack_at = 1.2
    #: Dense operator writes give the availability series enough
    #: resolution to compare throughput before / during / after healing.
    base = CampaignConfig(
        heal=True,
        heal_config=HealConfig.zero_trust(),
        write_interval=0.25,
    )

    attack_rows = []
    behaviours_out = {}
    attacks_ok = True
    for behaviour in ("silent", "stuttering", "lying", "falsifying",
                      "equivocating"):
        index = 0 if behaviour == "equivocating" else 2
        schedule = Schedule([
            SwapByzantine(at=attack_at, index=index, behaviour=behaviour),
        ])
        evictions = 0
        green = True
        detect_lat, heal_lat, recovered = [], [], []
        for seed in seeds:
            mttr = MttrMonitor()
            avail = AvailabilityMonitor()
            report = run_campaign(
                schedule,
                dc_replace(base, seed=seed),
                monitors=default_monitors() + [mttr, avail],
            )
            green = green and report.ok
            evictions += report.evictions
            for m in mttr.measurements:
                if m["detect_latency"] is not None:
                    detect_lat.append(m["detect_latency"])
                if m["heal_latency"] is not None:
                    heal_lat.append(m["heal_latency"])
            healed_at = max(
                (a["completed_at"] for a in report.heal_actions
                 if a["outcome"] == "completed"
                 and a["completed_at"] is not None),
                default=None,
            )
            if healed_at is not None and avail.samples:
                pre = avail.rate(0.2, attack_at)
                end = avail.samples[-1][0]
                post = avail.rate(healed_at + 0.3, end)
                if pre > 0:
                    recovered.append(post / pre)
        mean = lambda xs: sum(xs) / len(xs) if xs else None  # noqa: E731
        summary = {
            "runs": len(seeds),
            "evictions": evictions,
            "monitors_green": green,
            "mean_detect_latency": (
                round(mean(detect_lat), 4) if detect_lat else None
            ),
            "mean_heal_latency": (
                round(mean(heal_lat), 4) if heal_lat else None
            ),
            "throughput_recovered": (
                round(mean(recovered), 4) if recovered else None
            ),
        }
        behaviours_out[behaviour] = summary
        row_ok = (
            green
            and evictions == len(seeds)
            and (not recovered or mean(recovered) >= 0.9)
        )
        attacks_ok = attacks_ok and row_ok
        attack_rows.append([
            behaviour,
            evictions,
            "green" if green else "VIOLATED",
            f"{summary['mean_detect_latency']:.2f}s"
            if detect_lat else "-",
            f"{summary['mean_heal_latency']:.2f}s" if heal_lat else "-",
            f"{mean(recovered) * 100:.0f}%" if recovered else "-",
            "PASS" if row_ok else "FAIL",
        ])

    benign_rows = []
    benign_out = {}
    benign_actions = 0
    benign_base = dc_replace(base, heal_config=HealConfig())
    for label, schedule, overrides in _ids_benign_schedules():
        actions = evictions = 0
        green = True
        for seed in seeds:
            report = run_campaign(
                schedule, dc_replace(benign_base, seed=seed, **overrides)
            )
            green = green and report.ok
            actions += len(report.heal_actions)
            evictions += report.evictions
        benign_out[label] = {"heal_actions": actions, "evictions": evictions}
        benign_actions += actions
        benign_rows.append([
            label, len(seeds), actions, evictions,
            "clean" if actions == 0 and green else "UNEXPECTED ACTIONS",
        ])

    # The quorum-guard drill: a double fault where every action must be
    # refused and the orchestrator must escalate to an operator alarm
    # without ever eroding the quorum.
    guard = run_scenario("heal-quorum-guard", seed=args.seed)
    guard_blocked = sum(
        1 for a in guard.heal_actions if a["outcome"] == "blocked"
    )
    guard_alarms = sum(
        1 for a in guard.heal_actions if a["outcome"] == "raised"
    )
    guard_ok = (
        guard.ok
        and guard.evictions == 0
        and guard_blocked > 0
        and guard_alarms > 0
    )
    guard_out = {
        "ok": guard.ok,
        "evictions": guard.evictions,
        "blocked": guard_blocked,
        "alarms": guard_alarms,
    }

    _print_table(
        f"closed-loop recovery under attack ({len(seeds)} seeds per drill)",
        ["behaviour", "evicted", "monitors", "detect", "heal",
         "ops recovered", "verdict"],
        attack_rows,
    )
    _print_table(
        "benign fault suite (orchestrator must stay idle)",
        ["drill", "runs", "heal actions", "evictions", "verdict"],
        benign_rows,
    )
    print(f"\nquorum guard drill: blocked={guard_blocked} "
          f"alarms={guard_alarms} evictions={guard.evictions} "
          f"monitors={'green' if guard.ok else 'VIOLATED'} "
          f"-> {'PASS' if guard_ok else 'FAIL'}")

    if args.bench:
        payload = {
            "seeds": list(seeds),
            "behaviours": behaviours_out,
            "benign": {
                "drills": benign_out,
                "heal_actions": benign_actions,
            },
            "quorum_guard": guard_out,
        }
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                merged = json.load(fh)
        except (OSError, ValueError):
            merged = {}
        merged.update(payload)
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    ok = attacks_ok and benign_actions == 0 and guard_ok
    print(f"\nacceptance (all five behaviours evicted with monitors green "
          f"and ops recovered; benign idle; guard safe): "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMaRt-SCADA reproduction (Nogueira et al., DSN 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig8 = subparsers.add_parser("fig8", help="regenerate the paper's Figure 8")
    fig8.add_argument("--duration", type=float, default=2.0,
                      help="measurement window per point, seconds (default 2)")
    fig8.set_defaults(func=cmd_fig8)

    demo = subparsers.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=cmd_demo)

    steps = subparsers.add_parser(
        "steps", help="print the message-flow steps (Figures 3/4/6/7)"
    )
    steps.set_defaults(func=cmd_steps)

    shards = subparsers.add_parser(
        "shards", help="run the sharded deployment demo (N BFT groups, "
                       "one namespace, global AE order)"
    )
    shards.add_argument("--shards", type=int, default=2,
                        help="number of independent replica groups (default 2)")
    shards.add_argument("--seed", type=int, default=42)
    shards.add_argument("--kernel", choices=["heap", "ring"], default="heap",
                        help="event kernel (default heap)")
    shards.add_argument("--split", action="store_true",
                        help="also perform a live shard split mid-run "
                             "(moves two items, grows the target group)")
    shards.set_defaults(func=cmd_shards)

    perf = subparsers.add_parser(
        "perf", help="print (or regenerate) the BENCH_PERF.json summary"
    )
    perf.add_argument(
        "mode", nargs="?", choices=["report", "kernel-bench"], default="report",
        help="'report' prints the hot-path pass; 'kernel-bench' measures "
             "the heap vs ring event kernels side by side",
    )
    perf.add_argument("--output", default=None,
                      help="report file (default BENCH_PERF.json)")
    perf.add_argument("--rerun", action="store_true",
                      help="remeasure even if the report file exists")
    perf.add_argument("--kernel", choices=["heap", "ring"], default=None,
                      help="event kernel for the profiled runs "
                           "(default: REPRO_KERNEL or heap)")
    perf.set_defaults(func=cmd_perf)

    chaos = subparsers.add_parser(
        "chaos", help="run fault-drill campaigns (see chaos --list)"
    )
    chaos.add_argument("scenario", nargs="?", default=None,
                       help="scenario name, or 'random' for sampled schedules")
    chaos.add_argument("--list", action="store_true",
                       help="list the scenario library and exit")
    chaos.add_argument("--seed", type=int, default=0,
                       help="first campaign seed (default 0)")
    chaos.add_argument("--seeds", type=int, default=1,
                       help="number of consecutive seeds to sweep (default 1)")
    chaos.add_argument("--shrink", action="store_true",
                       help="minimize the first failing schedule")
    chaos.add_argument("--json", action="store_true",
                       help="emit machine-readable verdicts on stdout "
                            "(for CI and tooling)")
    chaos.add_argument("--trace-dump", default=None, metavar="PATH",
                       help="install the span tracer and, on the first "
                            "invariant violation, dump the surrounding "
                            "span window as Chrome trace JSON to PATH")
    chaos.add_argument("--ids", action="store_true",
                       help="run the online intrusion detector alongside "
                            "the campaign and report any detections")
    chaos.add_argument("--heal", action="store_true",
                       help="close the loop: run the recovery orchestrator "
                            "on the detector's verdicts and report its "
                            "action log")
    chaos.add_argument("--fleet", action="store_true",
                       help="sample the fleet health scoreboard + SLO "
                            "burn-rate engine alongside the campaign "
                            "(passive: fingerprints are unchanged)")
    chaos.set_defaults(func=cmd_chaos)

    ids = subparsers.add_parser(
        "ids", help="evaluate the trace-driven intrusion detector"
    )
    ids.add_argument("--seed", type=int, default=0,
                     help="first seed of the sweep (default 0)")
    ids.add_argument("--seeds", type=int, default=2,
                     help="seeds per drill (default 2)")
    ids.add_argument("--bench", action="store_true",
                     help="write the benchmark summary JSON")
    ids.add_argument("--output", default="BENCH_IDS.json",
                     help="bench output path (default BENCH_IDS.json)")
    ids.set_defaults(func=cmd_ids)

    heal = subparsers.add_parser(
        "heal", help="evaluate closed-loop self-healing (IDS -> recovery)"
    )
    heal.add_argument("--seed", type=int, default=0,
                      help="first seed of the sweep (default 0)")
    heal.add_argument("--seeds", type=int, default=1,
                      help="seeds per drill (default 1)")
    heal.add_argument("--bench", action="store_true",
                      help="write the benchmark summary JSON")
    heal.add_argument("--output", default="BENCH_MTTR.json",
                      help="bench output path (default BENCH_MTTR.json)")
    heal.set_defaults(func=cmd_heal)

    trace = subparsers.add_parser(
        "trace", help="trace a seeded workload and print request autopsies"
    )
    trace.add_argument("--workload", choices=("scada", "bft-micro"),
                       default="scada",
                       help="fig8(a)-style SCADA updates + one operator "
                            "write (default), or the §V-B BFT echo "
                            "microbenchmark")
    trace.add_argument("--duration", type=float, default=1.0,
                       help="simulated seconds to trace (default 1.0)")
    trace.add_argument("--rate", type=float, default=50.0,
                       help="offered request rate per second (default 50)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event output file "
                            "(default trace.json)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also write one span per line as JSONL")
    trace.add_argument("--shards", type=int, default=1,
                       help="BFT groups for the scada workload; >1 traces "
                            "cross-shard routing, scatter-gather and the "
                            "global AE merge (default 1)")
    trace.set_defaults(func=cmd_trace)

    fleet = subparsers.add_parser(
        "fleet",
        help="live fleet health scoreboard + SLO burn rates on a "
             "sharded deployment",
    )
    fleet.add_argument("--shards", type=int, default=2,
                       help="BFT groups to deploy (default 2)")
    fleet.add_argument("--seed", type=int, default=42)
    fleet.add_argument("--duration", type=float, default=6.0,
                       help="simulated seconds to run (default 6.0)")
    fleet.add_argument("--interval", type=float, default=0.25,
                       help="scoreboard sampling interval in simulated "
                            "seconds (default 0.25)")
    fleet.add_argument("--kernel", choices=("heap", "ring"), default=None,
                       help="event kernel (default: REPRO_KERNEL or heap)")
    fleet.add_argument("--kill-leader", action="store_true",
                       help="crash shard 0's leader at t=duration/3 and "
                            "recover it at 2*duration/3")
    fleet.add_argument("--json", action="store_true",
                       help="print one JSON summary instead of the live "
                            "ASCII board")
    fleet.add_argument("--html", default=None, metavar="PATH",
                       help="also write a static HTML fleet report")
    fleet.add_argument("--trace", default=None, metavar="PATH",
                       help="install the span tracer and export a Perfetto "
                            "trace of the run")
    fleet.set_defaults(func=cmd_fleet)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
