"""Binary tag-length-value codec.

The codec handles ``None``, booleans, ints of any size, floats, strings,
bytes, lists, tuples, dicts (string keys not required), registered enums
and registered dataclasses. Encoding is canonical: equal values produce
identical bytes, so content digests of encoded messages are well-defined —
that property is what reply voting and PROPOSE hashing rely on.

Hot-path layout
---------------
``_encode`` dispatches on the *exact* class of the value through a
per-codec table instead of walking an ``isinstance`` chain; dataclass and
enum encoders are built once per class with their type-id prefix bytes
precomputed and the field list pre-resolved from the registry.
``encode_into`` appends to a caller-owned buffer, skipping the final
``bytes(bytearray)`` copy, and :func:`encode_cached` memoizes whole-message
encodings of immutable (frozen-dataclass) messages on the message object
itself, wrapped in :class:`EncodedMessage` so the payload's content digest
is computed at most once. All caching is behaviour-invisible: the memoized
path returns byte-identical output to a fresh encode (see
``tests/test_wire_codec_caching.py``).
"""

from __future__ import annotations

import dataclasses
import enum
import operator
import struct

from repro.perf import PERF
from repro.wire.errors import DecodeError, EncodeError
from repro.wire.registry import GLOBAL_REGISTRY, TypeRegistry

_NONE = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT = 0x03
_FLOAT = 0x04
_STR = 0x05
_BYTES = 0x06
_LIST = 0x07
_TUPLE = 0x08
_DICT = 0x09
_DATACLASS = 0x0A
_ENUM = 0x0B

_FLOAT_STRUCT = struct.Struct(">d")


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0x80:
        out.append(value)
        return
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def uvarint_size(value: int) -> int:
    """Encoded length in bytes of ``value`` as an unsigned varint."""
    if value < 0x80:
        return 1
    return (value.bit_length() + 6) // 7


#: str -> its full TLV chunk (tag + length varint + UTF-8 bytes).
#: Bounded, insert-while-under-limit; protocol strings are low-cardinality.
_STR_ENC_CACHE: dict[str, bytes] = {}
_STR_ENC_CACHE_LIMIT = 4096


def _read_uvarint(data, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DecodeError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 4096:
            # Arbitrary-size ints are supported, but a wire value that
            # claims more than 4096 bits is an attack, not a number.
            raise DecodeError("varint too long")


class Codec:
    """Encoder/decoder bound to a type registry."""

    def __init__(self, registry: TypeRegistry | None = None) -> None:
        self.registry = registry if registry is not None else GLOBAL_REGISTRY
        # Reusable encode buffers (see encode()). Bounded so a one-off
        # giant message cannot pin memory: oversized buffers are dropped.
        self._scratch: list[bytearray] = []
        # Exact-type encoder dispatch. Scalar/container entries are
        # installed eagerly; dataclass and enum encoders are built on
        # first use (and on-the-fly for late registrations).
        self._encoders: dict[type, object] = {
            type(None): self._enc_none,
            bool: self._enc_bool,
            int: self._enc_int,
            float: self._enc_float,
            str: self._enc_str,
            bytes: self._enc_bytes,
            bytearray: self._enc_bytes,
            memoryview: self._enc_bytes,
            list: self._enc_list,
            tuple: self._enc_tuple,
            dict: self._enc_dict,
        }
        # Per-dataclass constructors for decode (built on first use).
        self._constructors: dict[type, object] = {}

    # -- public API ---------------------------------------------------------

    def encode(self, value) -> bytes:
        # Steady-state encoding reuses a pooled bytearray (already grown
        # to working-set size) instead of allocating and growing a fresh
        # one per message; only the final immutable bytes() is new.
        if PERF.codec_scratch:
            scratch = self._scratch
            out = scratch.pop() if scratch else bytearray()
            try:
                self._encode(out, value)
                return bytes(out)
            finally:
                if len(scratch) < 8 and len(out) <= 65536:
                    del out[:]
                    scratch.append(out)
        out = bytearray()
        self._encode(out, value)
        return bytes(out)

    def encode_into(self, out: bytearray, value) -> None:
        """Append the canonical encoding of ``value`` to ``out``.

        The fast path for callers assembling larger buffers (signing
        payloads, framing): no intermediate ``bytes`` copy is made.
        """
        self._encode(out, value)

    def decode(self, data):
        """Decode one complete value from ``data``.

        Accepts ``bytes``, ``bytearray`` or ``memoryview``: mutable
        buffers are read through a ``memoryview`` window, so a frame
        sitting inside a larger receive buffer decodes without being
        copied out first (string/bytes payloads are materialized from
        the buffer directly).
        """
        if data.__class__ is not bytes:
            data = memoryview(data)
        value, pos = self._decode(data, 0)
        if pos != len(data):
            raise DecodeError(f"{len(data) - pos} trailing bytes after value")
        return value

    def decode_from(self, data, pos: int = 0) -> tuple:
        """Decode one value starting at ``pos``; returns ``(value, end)``.

        The cursor API for consuming concatenated values from one buffer
        (batch payloads, framed streams) with no per-value slicing:
        ``end`` is the offset one past the value just decoded. Trailing
        bytes are the caller's business, unlike :meth:`decode`.
        """
        if data.__class__ is not bytes:
            data = memoryview(data)
        return self._decode(data, pos)

    # -- encoding -----------------------------------------------------------

    def _encode(self, out: bytearray, value) -> None:
        encoder = self._encoders.get(value.__class__)
        if encoder is None:
            encoder = self._resolve_encoder(value)
        encoder(out, value)

    def _resolve_encoder(self, value):
        """Build (and install) the encoder for a class seen for the first time.

        The checks mirror the original ``isinstance`` chain, in the same
        order, so subclasses keep encoding exactly as they always did.
        """
        cls = value.__class__
        if isinstance(value, bool):
            encoder = self._enc_bool
        elif isinstance(value, int):
            encoder = self._enc_int
        elif isinstance(value, float):
            encoder = self._enc_float
        elif isinstance(value, str):
            encoder = self._enc_str
        elif isinstance(value, (bytes, bytearray, memoryview)):
            encoder = self._enc_bytes
        elif isinstance(value, list):
            encoder = self._enc_list
        elif isinstance(value, tuple):
            encoder = self._enc_tuple
        elif isinstance(value, dict):
            encoder = self._enc_dict
        elif isinstance(value, enum.Enum):
            encoder = self._make_enum_encoder(cls)
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            encoder = self._make_dataclass_encoder(cls)
        else:
            raise EncodeError(f"cannot encode {cls.__name__}: {value!r}")
        self._encoders[cls] = encoder
        return encoder

    # Scalar/container encoders -------------------------------------------

    @staticmethod
    def _enc_none(out: bytearray, value) -> None:
        out.append(_NONE)

    @staticmethod
    def _enc_bool(out: bytearray, value) -> None:
        out.append(_TRUE if value else _FALSE)

    @staticmethod
    def _enc_int(out: bytearray, value) -> None:
        out.append(_INT)
        # Sign-and-magnitude varint: supports arbitrary-size ints. The
        # common small non-negative case is a single inlined byte.
        if 0 <= value < 0x40:
            out.append(value << 1)
        elif value < 0:
            _write_uvarint(out, ((-value) << 1) | 1)
        else:
            _write_uvarint(out, value << 1)

    @staticmethod
    def _enc_float(out: bytearray, value) -> None:
        out.append(_FLOAT)
        out += _FLOAT_STRUCT.pack(value)

    @staticmethod
    def _enc_str(out: bytearray, value) -> None:
        if PERF.codec_cache:
            # Protocol strings (addresses, client ids) repeat massively;
            # memoize the full TLV chunk per distinct string, content-keyed
            # so the bytes are identical to the uncached path.
            try:
                out += _STR_ENC_CACHE[value]
                return
            except KeyError:
                pass
            encoded = value.encode("utf-8")
            piece = bytearray((_STR,))
            _write_uvarint(piece, len(encoded))
            piece += encoded
            chunk = bytes(piece)
            if len(_STR_ENC_CACHE) < _STR_ENC_CACHE_LIMIT:
                _STR_ENC_CACHE[value] = chunk
            out += chunk
            return
        encoded = value.encode("utf-8")
        out.append(_STR)
        _write_uvarint(out, len(encoded))
        out += encoded

    @staticmethod
    def _enc_bytes(out: bytearray, value) -> None:
        out.append(_BYTES)
        length = len(value)
        if length < 0x80:
            out.append(length)
        else:
            _write_uvarint(out, length)
        out += value

    def _enc_list(self, out: bytearray, value) -> None:
        out.append(_LIST)
        _write_uvarint(out, len(value))
        encode_item = self._encode
        for item in value:
            encode_item(out, item)

    def _enc_tuple(self, out: bytearray, value) -> None:
        out.append(_TUPLE)
        _write_uvarint(out, len(value))
        encode_item = self._encode
        for item in value:
            encode_item(out, item)

    def _enc_dict(self, out: bytearray, value) -> None:
        out.append(_DICT)
        _write_uvarint(out, len(value))
        encode_item = self._encode
        for key, item in value.items():
            encode_item(out, key)
            encode_item(out, item)

    # Registered-type encoders --------------------------------------------

    def _make_enum_encoder(self, cls: type):
        prefix = bytearray([_ENUM])
        _write_uvarint(prefix, self.registry.id_of(cls))
        prefix = bytes(prefix)
        encode_inner = self._encode

        def enc(out: bytearray, value) -> None:
            out += prefix
            encode_inner(out, value.value)

        return enc

    def _make_dataclass_encoder(self, cls: type):
        prefix = bytearray([_DATACLASS])
        _write_uvarint(prefix, self.registry.id_of(cls))
        fields = self.registry.fields_of(cls)
        _write_uvarint(prefix, len(fields))
        prefix = bytes(prefix)
        names = tuple(field.name for field in fields)
        # attrgetter fetches every field in one C call, and the per-field
        # encoder dispatch is inlined (same dict the _encode wrapper uses,
        # so the encoding is identical — this just drops a Python frame
        # per field on the hottest loop in the codec).
        get_fields = (
            operator.attrgetter(*names) if len(names) > 1 else None
        )
        encoders = self._encoders
        resolve = self._resolve_encoder
        encode_inner = self._encode

        if get_fields is None:

            def enc(out: bytearray, value) -> None:
                out += prefix
                if names:
                    encode_inner(out, getattr(value, names[0]))

            return enc

        def enc(out: bytearray, value) -> None:
            out += prefix
            for item in get_fields(value):
                encoder = encoders.get(item.__class__)
                if encoder is None:
                    encoder = resolve(item)
                encoder(out, item)

        return enc

    # -- decoding -----------------------------------------------------------

    def _decode(self, data, pos: int):
        # The branch order is by decoded-value frequency in protocol
        # traffic (strings/ints/bytes inside dataclass messages), and the
        # common one-byte varint is inlined — this function runs several
        # times per field of every message a simulation delivers.
        # ``data`` is bytes or a memoryview; every read below (indexing,
        # str()/bytes() construction, unpack_from) is buffer-polymorphic,
        # so a memoryview input is never copied into an intermediate
        # bytes object on the way to the decoded values.
        n = len(data)
        if pos >= n:
            raise DecodeError("truncated input")
        tag = data[pos]
        pos += 1
        if tag == _STR:
            if pos >= n:
                raise DecodeError("truncated varint")
            length = data[pos]
            if length < 0x80:
                pos += 1
            else:
                length, pos = _read_uvarint(data, pos)
            if pos + length > n:
                raise DecodeError("truncated string")
            try:
                # str(buffer, "utf-8") decodes straight from the buffer —
                # no intermediate bytes slice.
                return str(data[pos : pos + length], "utf-8"), pos + length
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8: {exc}")
        if tag == _INT:
            if pos >= n:
                raise DecodeError("truncated varint")
            raw = data[pos]
            if raw < 0x80:
                pos += 1
            else:
                raw, pos = _read_uvarint(data, pos)
            magnitude = raw >> 1
            return (-magnitude if raw & 1 else magnitude), pos
        if tag == _BYTES:
            if pos >= n:
                raise DecodeError("truncated varint")
            length = data[pos]
            if length < 0x80:
                pos += 1
            else:
                length, pos = _read_uvarint(data, pos)
            if pos + length > n:
                raise DecodeError("truncated bytes")
            # bytes(x) is a no-op for a bytes slice and materializes a
            # memoryview slice; decoded values are always real bytes.
            return bytes(data[pos : pos + length]), pos + length
        if tag == _DATACLASS:
            type_id, pos = _read_uvarint(data, pos)
            cls = self.registry.type_of(type_id)
            count, pos = _read_uvarint(data, pos)
            fields = self.registry.fields_of(cls)
            if count != len(fields):
                if count > len(fields):
                    raise DecodeError(
                        f"{cls.__name__}: expected {len(fields)} fields, got {count}"
                    )
                # Backward compatibility: a frame written before trailing
                # default fields were added (e.g. ClientRequest.trace_id)
                # decodes by filling the missing tail from the defaults.
                tail = self._default_tail(cls, count)
            else:
                tail = None
            decode_inner = self._decode
            values = []
            append = values.append
            for _ in range(count):
                value, pos = decode_inner(data, pos)
                append(value)
            if tail is not None:
                for kind, default in tail:
                    append(default() if kind else default)
            construct = self._constructors.get(cls)
            if construct is None:
                construct = self._make_constructor(cls)
            try:
                return construct(values), pos
            except (TypeError, ValueError) as exc:
                raise DecodeError(f"cannot construct {cls.__name__}: {exc}")
        if tag == _NONE:
            return None, pos
        if tag == _TRUE:
            return True, pos
        if tag == _FALSE:
            return False, pos
        if tag == _FLOAT:
            if pos + 8 > n:
                raise DecodeError("truncated float")
            return _FLOAT_STRUCT.unpack_from(data, pos)[0], pos + 8
        if tag in (_LIST, _TUPLE):
            count, pos = _read_uvarint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._decode(data, pos)
                items.append(item)
            return (tuple(items) if tag == _TUPLE else items), pos
        if tag == _DICT:
            count, pos = _read_uvarint(data, pos)
            result = {}
            for _ in range(count):
                key, pos = self._decode(data, pos)
                value, pos = self._decode(data, pos)
                result[key] = value
            return result, pos
        if tag == _ENUM:
            type_id, pos = _read_uvarint(data, pos)
            cls = self.registry.type_of(type_id)
            raw, pos = self._decode(data, pos)
            try:
                return cls(raw), pos
            except ValueError as exc:
                raise DecodeError(f"invalid enum value for {cls.__name__}: {exc}")
        raise DecodeError(f"unknown tag byte {tag:#04x}")

    def _default_tail(self, cls: type, count: int) -> list:
        """Defaults for the trailing fields a short frame omitted.

        Returns ``[(is_factory, default_or_factory), ...]`` for the
        fields past ``count``; raises :class:`DecodeError` when any of
        them has no default (the frame is then genuinely malformed).
        """
        fields = self.registry.fields_of(cls)
        tail = []
        for field in fields[count:]:
            if field.default is not dataclasses.MISSING:
                tail.append((False, field.default))
            elif field.default_factory is not dataclasses.MISSING:
                tail.append((True, field.default_factory))
            else:
                raise DecodeError(
                    f"{cls.__name__}: expected {len(fields)} fields, got "
                    f"{count}, and field {field.name!r} has no default"
                )
        return tail

    def _make_constructor(self, cls: type):
        """Build (and install) the decode-side constructor for ``cls``.

        Plain generated-``__init__`` dataclasses without ``__post_init__``
        or ``__slots__`` are built via ``__new__`` + a direct ``__dict__``
        fill, skipping the frozen-dataclass ``object.__setattr__`` walk.
        Anything fancier falls back to calling the class, preserving the
        original semantics (including ``__post_init__`` validation).
        """
        fields = self.registry.fields_of(cls)
        params = getattr(cls, "__dataclass_params__", None)
        plain = (
            params is not None
            and params.init
            and "__slots__" not in cls.__dict__
            and not hasattr(cls, "__post_init__")
            and all(field.init for field in fields)
        )
        if plain:
            names = tuple(field.name for field in fields)
            new = cls.__new__

            def construct(values, _cls=cls, _names=names, _new=new):
                obj = _new(_cls)
                obj.__dict__.update(zip(_names, values))
                return obj

        else:

            def construct(values, _cls=cls):
                return _cls(*values)

        self._constructors[cls] = construct
        return construct


#: Codec over the global registry; what the protocol stacks use.
DEFAULT_CODEC = Codec()


def encode(value) -> bytes:
    """Encode ``value`` with the default (global-registry) codec."""
    return DEFAULT_CODEC.encode(value)


def decode(data):
    """Decode ``data`` with the default (global-registry) codec."""
    return DEFAULT_CODEC.decode(data)


def decode_from(data, pos: int = 0) -> tuple:
    """Cursor decode with the default codec; returns ``(value, end)``."""
    return DEFAULT_CODEC.decode_from(data, pos)


# -- memoized whole-message encoding ----------------------------------------


class EncodedMessage:
    """A message together with its canonical encoding and lazy digest.

    Broadcast paths pass one :class:`EncodedMessage` around instead of
    re-encoding per receiver; the truncated content digest (what PROPOSE
    hashing and reply voting compare) is computed on first access only.
    """

    __slots__ = ("message", "payload", "_digest")

    def __init__(self, message, payload: bytes) -> None:
        self.message = message
        self.payload = payload
        self._digest: bytes | None = None

    @property
    def digest(self) -> bytes:
        if self._digest is None:
            from repro.crypto.digest import digest as _content_digest

            self._digest = _content_digest(self.payload)
        return self._digest

    def __len__(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        return (
            f"<EncodedMessage {type(self.message).__name__} "
            f"{len(self.payload)} bytes>"
        )


#: Attribute under which a frozen message memoizes its own encoding. The
#: memo lives exactly as long as the object, so the paths that genuinely
#: re-encode one object — client retransmissions, duplicate-request reply
#: resends, leader-change re-proposals — always hit, with no shared cache
#: to churn or evict. (A global id-keyed LRU here was measurably dead: the
#: per-send traffic between two encodes of the same long-lived object
#: evicted it every time — 0 hits against ~100k misses per benchmark run.)
_MEMO_ATTR = "_encoded_memo"
_ENCODE_STATS = PERF.stats["codec_encode"]

#: Classes whose instances cannot take the memo attribute (``__slots__``).
_UNMEMOIZABLE: set[type] = set()

#: Per-class eligibility for memoization (only frozen dataclasses, whose
#: identity pins their content).
_FROZEN_CLASS: dict[type, bool] = {}


def _is_frozen_dataclass(cls: type) -> bool:
    frozen = _FROZEN_CLASS.get(cls)
    if frozen is None:
        params = getattr(cls, "__dataclass_params__", None)
        frozen = bool(params is not None and params.frozen)
        _FROZEN_CLASS[cls] = frozen
    return frozen


def encode_cached(message) -> EncodedMessage:
    """Encode ``message`` (default codec), memoizing immutable messages.

    Only frozen-dataclass instances are memoized — their immutability pins
    their content — and the memo is stored on the message object itself,
    so the payload is byte-identical to a fresh encode by construction and
    the memo's lifetime is exactly the object's.
    """
    if not PERF.codec_cache or not _is_frozen_dataclass(message.__class__):
        return EncodedMessage(message, DEFAULT_CODEC.encode(message))
    memo = getattr(message, "__dict__", None)
    cached = memo.get(_MEMO_ATTR) if memo is not None else None
    if cached is not None:
        _ENCODE_STATS.hits += 1
        return cached
    _ENCODE_STATS.misses += 1
    encoded = EncodedMessage(message, DEFAULT_CODEC.encode(message))
    if message.__class__ not in _UNMEMOIZABLE:
        try:
            # Frozen dataclasses block plain setattr; going through
            # object.__setattr__ stores the memo without touching any
            # wire field (dataclass __eq__/__repr__/fields ignore it).
            object.__setattr__(message, _MEMO_ATTR, encoded)
        except AttributeError:
            _UNMEMOIZABLE.add(message.__class__)
    return encoded


def clear_encode_cache() -> None:
    # Encodings are memoized on the message objects themselves now, so
    # there is no global encode table left to drop — clearing for a cold
    # measurement is a per-object affair handled by using fresh messages.
    _STR_ENC_CACHE.clear()
