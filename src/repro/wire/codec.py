"""Binary tag-length-value codec.

The codec handles ``None``, booleans, ints of any size, floats, strings,
bytes, lists, tuples, dicts (string keys not required), registered enums
and registered dataclasses. Encoding is canonical: equal values produce
identical bytes, so content digests of encoded messages are well-defined —
that property is what reply voting and PROPOSE hashing rely on.
"""

from __future__ import annotations

import dataclasses
import enum
import struct

from repro.wire.errors import DecodeError, EncodeError
from repro.wire.registry import GLOBAL_REGISTRY, TypeRegistry

_NONE = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT = 0x03
_FLOAT = 0x04
_STR = 0x05
_BYTES = 0x06
_LIST = 0x07
_TUPLE = 0x08
_DICT = 0x09
_DATACLASS = 0x0A
_ENUM = 0x0B

_FLOAT_STRUCT = struct.Struct(">d")


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DecodeError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 4096:
            # Arbitrary-size ints are supported, but a wire value that
            # claims more than 4096 bits is an attack, not a number.
            raise DecodeError("varint too long")


class Codec:
    """Encoder/decoder bound to a type registry."""

    def __init__(self, registry: TypeRegistry | None = None) -> None:
        self.registry = registry if registry is not None else GLOBAL_REGISTRY

    # -- public API ---------------------------------------------------------

    def encode(self, value) -> bytes:
        out = bytearray()
        self._encode(out, value)
        return bytes(out)

    def decode(self, data: bytes):
        value, pos = self._decode(data, 0)
        if pos != len(data):
            raise DecodeError(f"{len(data) - pos} trailing bytes after value")
        return value

    # -- encoding -----------------------------------------------------------

    def _encode(self, out: bytearray, value) -> None:
        if value is None:
            out.append(_NONE)
        elif value is True:
            out.append(_TRUE)
        elif value is False:
            out.append(_FALSE)
        elif isinstance(value, int):
            out.append(_INT)
            # Sign-and-magnitude varint: supports arbitrary-size ints.
            negative = value < 0
            magnitude = -value if negative else value
            _write_uvarint(out, (magnitude << 1) | (1 if negative else 0))
        elif isinstance(value, float):
            out.append(_FLOAT)
            out += _FLOAT_STRUCT.pack(value)
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            out.append(_STR)
            _write_uvarint(out, len(encoded))
            out += encoded
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            out.append(_BYTES)
            _write_uvarint(out, len(raw))
            out += raw
        elif isinstance(value, list):
            out.append(_LIST)
            _write_uvarint(out, len(value))
            for item in value:
                self._encode(out, item)
        elif isinstance(value, tuple):
            out.append(_TUPLE)
            _write_uvarint(out, len(value))
            for item in value:
                self._encode(out, item)
        elif isinstance(value, dict):
            out.append(_DICT)
            _write_uvarint(out, len(value))
            for key, item in value.items():
                self._encode(out, key)
                self._encode(out, item)
        elif isinstance(value, enum.Enum):
            out.append(_ENUM)
            _write_uvarint(out, self.registry.id_of(type(value)))
            self._encode(out, value.value)
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            out.append(_DATACLASS)
            cls = type(value)
            _write_uvarint(out, self.registry.id_of(cls))
            fields = self.registry.fields_of(cls)
            _write_uvarint(out, len(fields))
            for field in fields:
                self._encode(out, getattr(value, field.name))
        else:
            raise EncodeError(f"cannot encode {type(value).__name__}: {value!r}")

    # -- decoding -----------------------------------------------------------

    def _decode(self, data: bytes, pos: int):
        if pos >= len(data):
            raise DecodeError("truncated input")
        tag = data[pos]
        pos += 1
        if tag == _NONE:
            return None, pos
        if tag == _TRUE:
            return True, pos
        if tag == _FALSE:
            return False, pos
        if tag == _INT:
            raw, pos = _read_uvarint(data, pos)
            magnitude = raw >> 1
            return (-magnitude if raw & 1 else magnitude), pos
        if tag == _FLOAT:
            if pos + 8 > len(data):
                raise DecodeError("truncated float")
            return _FLOAT_STRUCT.unpack_from(data, pos)[0], pos + 8
        if tag == _STR:
            length, pos = _read_uvarint(data, pos)
            if pos + length > len(data):
                raise DecodeError("truncated string")
            try:
                return data[pos : pos + length].decode("utf-8"), pos + length
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8: {exc}")
        if tag == _BYTES:
            length, pos = _read_uvarint(data, pos)
            if pos + length > len(data):
                raise DecodeError("truncated bytes")
            return data[pos : pos + length], pos + length
        if tag in (_LIST, _TUPLE):
            count, pos = _read_uvarint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._decode(data, pos)
                items.append(item)
            return (tuple(items) if tag == _TUPLE else items), pos
        if tag == _DICT:
            count, pos = _read_uvarint(data, pos)
            result = {}
            for _ in range(count):
                key, pos = self._decode(data, pos)
                value, pos = self._decode(data, pos)
                result[key] = value
            return result, pos
        if tag == _ENUM:
            type_id, pos = _read_uvarint(data, pos)
            cls = self.registry.type_of(type_id)
            raw, pos = self._decode(data, pos)
            try:
                return cls(raw), pos
            except ValueError as exc:
                raise DecodeError(f"invalid enum value for {cls.__name__}: {exc}")
        if tag == _DATACLASS:
            type_id, pos = _read_uvarint(data, pos)
            cls = self.registry.type_of(type_id)
            count, pos = _read_uvarint(data, pos)
            fields = self.registry.fields_of(cls)
            if count != len(fields):
                raise DecodeError(
                    f"{cls.__name__}: expected {len(fields)} fields, got {count}"
                )
            values = []
            for _ in range(count):
                value, pos = self._decode(data, pos)
                values.append(value)
            try:
                return cls(*values), pos
            except (TypeError, ValueError) as exc:
                raise DecodeError(f"cannot construct {cls.__name__}: {exc}")
        raise DecodeError(f"unknown tag byte {tag:#04x}")


#: Codec over the global registry; what the protocol stacks use.
DEFAULT_CODEC = Codec()


def encode(value) -> bytes:
    """Encode ``value`` with the default (global-registry) codec."""
    return DEFAULT_CODEC.encode(value)


def decode(data: bytes):
    """Decode ``data`` with the default (global-registry) codec."""
    return DEFAULT_CODEC.decode(data)
