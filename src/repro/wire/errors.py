"""Codec error types."""


class WireError(Exception):
    """Base class for serialization failures."""


class EncodeError(WireError):
    """Raised when a value cannot be serialized."""


class DecodeError(WireError):
    """Raised when bytes cannot be parsed back into a value."""
