"""Canonical binary codec and wire-type registry for protocol messages."""

from repro.wire.codec import (
    DEFAULT_CODEC,
    Codec,
    EncodedMessage,
    decode,
    decode_from,
    encode,
    encode_cached,
    uvarint_size,
)
from repro.wire.errors import DecodeError, EncodeError, WireError
from repro.wire.registry import GLOBAL_REGISTRY, TypeRegistry, wire_type

__all__ = [
    "DEFAULT_CODEC",
    "GLOBAL_REGISTRY",
    "Codec",
    "DecodeError",
    "EncodeError",
    "EncodedMessage",
    "TypeRegistry",
    "WireError",
    "decode",
    "decode_from",
    "encode",
    "encode_cached",
    "uvarint_size",
    "wire_type",
]
