"""Registry of serializable message types.

Protocol messages are frozen dataclasses (and a few enums). Each class is
registered under a stable numeric id; the codec serializes instances as
``(type_id, field values in declaration order)``. Registration is explicit
— the decoder only ever instantiates classes that were registered, which
is the property that makes deserialization of attacker-controlled bytes
safe (unlike Java serialization, which the original systems used).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.wire.errors import DecodeError, EncodeError


class TypeRegistry:
    """Maps numeric ids to dataclass/enum types and back."""

    def __init__(self) -> None:
        self._by_id: dict[int, type] = {}
        self._by_type: dict[type, int] = {}
        #: Pre-resolved dataclass field tuples: ``dataclasses.fields`` walks
        #: the class dict on every call, which is measurable on the encode
        #: hot path, so it is done once at registration.
        self._fields: dict[type, tuple] = {}

    def register(self, type_id: int):
        """Class decorator registering a dataclass or Enum under ``type_id``."""

        def decorator(cls: type) -> type:
            if not (dataclasses.is_dataclass(cls) or issubclass(cls, enum.Enum)):
                raise TypeError(
                    f"only dataclasses and enums are serializable, got {cls!r}"
                )
            existing = self._by_id.get(type_id)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"type id {type_id} already registered to {existing.__name__}"
                )
            self._by_id[type_id] = cls
            self._by_type[cls] = type_id
            if dataclasses.is_dataclass(cls):
                self._fields[cls] = tuple(dataclasses.fields(cls))
            return cls

        return decorator

    def id_of(self, cls: type) -> int:
        try:
            return self._by_type[cls]
        except KeyError:
            raise EncodeError(f"{cls.__name__} is not a registered wire type")

    def type_of(self, type_id: int) -> type:
        try:
            return self._by_id[type_id]
        except KeyError:
            raise DecodeError(f"unknown wire type id {type_id}")

    def fields_of(self, cls: type) -> tuple:
        fields = self._fields.get(cls)
        if fields is None:
            fields = tuple(dataclasses.fields(cls))
            self._fields[cls] = fields
        return fields


#: The process-wide registry all protocol modules register into.
GLOBAL_REGISTRY = TypeRegistry()

#: Convenience alias used as ``@wire_type(ID)`` on message dataclasses.
wire_type = GLOBAL_REGISTRY.register
