"""Hot-path optimisation switches and cache accounting.

The caching layers introduced by the performance pass (codec memoization,
HMAC templates, digest LRU, serialize-once broadcast with precomputed
envelope sizes, shared decode of multicast payloads) are all
*behaviour-invisible*: with a fixed seed, a run produces byte-identical
encodings, digests and event orders whether they are on or off. This
module is the single place that can disable them, which is what the
wall-clock profiler (:mod:`repro.workloads.profiler`) uses to measure the
un-optimised baseline and the optimised pipeline inside one process.

Each switch also carries hit/miss counters so ``BENCH_PERF.json`` can
report how effective every cache was during a measured run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager


class CacheStats:
    """Hit/miss counters for one cache."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


class PerfSwitches:
    """Global on/off switches for every hot-path optimisation.

    All switches default to on. ``set_all(False)`` restores the
    un-optimised code paths (fresh encodes per receiver, per-message key
    schedules, per-send envelope sizing encodes, per-receiver decodes).
    """

    __slots__ = (
        "codec_cache",
        "mac_templates",
        "mac_memo",
        "digest_cache",
        "serialize_once",
        "size_hints",
        "decode_share",
        "signing_cache",
        "fast_delivery",
        "codec_scratch",
        "kernel",
        "stats",
    )

    def __init__(self) -> None:
        self.codec_cache = True
        self.mac_templates = True
        self.mac_memo = True
        self.digest_cache = True
        self.serialize_once = True
        self.size_hints = True
        self.decode_share = True
        self.signing_cache = True
        self.fast_delivery = True
        self.codec_scratch = True
        #: Which event-kernel implementation ``Simulator(...)`` builds:
        #: ``"heap"`` (the reference binary-heap kernel) or ``"ring"``
        #: (the flat-array timer-wheel kernel, ``repro.sim.fastkernel``).
        #: Seeded from ``REPRO_KERNEL`` so a whole test run can be
        #: switched from the environment (the CI kernel-parity job).
        #: Deliberately *not* part of ``set_all``/``enabled_map``: it
        #: selects an implementation, it is not an on/off cache, and the
        #: baseline-vs-optimised profiler toggling must not swap kernels
        #: mid-comparison.
        self.kernel = os.environ.get("REPRO_KERNEL", "heap")
        self.stats: dict[str, CacheStats] = {
            "codec_encode": CacheStats(),
            "digest": CacheStats(),
            "mac": CacheStats(),
            "decode_share": CacheStats(),
            "signing_payload": CacheStats(),
        }

    def set_all(self, enabled: bool) -> None:
        self.codec_cache = enabled
        self.mac_templates = enabled
        self.mac_memo = enabled
        self.digest_cache = enabled
        self.serialize_once = enabled
        self.size_hints = enabled
        self.decode_share = enabled
        self.signing_cache = enabled
        self.fast_delivery = enabled
        self.codec_scratch = enabled

    def enabled_map(self) -> dict:
        return {
            "codec_cache": self.codec_cache,
            "mac_templates": self.mac_templates,
            "mac_memo": self.mac_memo,
            "digest_cache": self.digest_cache,
            "serialize_once": self.serialize_once,
            "size_hints": self.size_hints,
            "decode_share": self.decode_share,
            "signing_cache": self.signing_cache,
            "fast_delivery": self.fast_delivery,
            "codec_scratch": self.codec_scratch,
        }

    def reset_stats(self) -> None:
        for stats in self.stats.values():
            stats.reset()

    def stats_map(self) -> dict:
        return {name: stats.as_dict() for name, stats in self.stats.items()}


#: Process-wide switch instance consulted by every optimised hot path.
PERF = PerfSwitches()


def set_hot_path_optimizations(enabled: bool) -> None:
    """Turn every hot-path optimisation on or off, and clear the caches.

    Clearing on every transition keeps measurements honest: an
    "optimised" run starts cold and pays its own cache fills.
    """
    PERF.set_all(enabled)
    clear_hot_path_caches()


def clear_hot_path_caches() -> None:
    """Drop every memoized encoding/digest/decode and reset counters."""
    # Imported lazily: the cache owners import this module for PERF.
    from repro.crypto.digest import clear_digest_cache
    from repro.crypto.mac import clear_mac_cache
    from repro.crypto.signatures import clear_signature_cache
    from repro.wire.codec import clear_encode_cache

    clear_encode_cache()
    clear_digest_cache()
    clear_mac_cache()
    clear_signature_cache()
    try:
        from repro.bftsmart import channel as channel_mod

        channel_mod.clear_decode_cache()
    except ImportError:  # pragma: no cover - bftsmart always present
        pass
    try:
        from repro.bftsmart import replica as replica_mod

        replica_mod.clear_signing_payload_cache()
    except ImportError:  # pragma: no cover
        pass
    PERF.reset_stats()


@contextmanager
def hot_path_optimizations(enabled: bool):
    """Context manager toggling every switch, restoring the previous state."""
    previous = PERF.enabled_map()
    set_hot_path_optimizations(enabled)
    try:
        yield PERF
    finally:
        for name, value in previous.items():
            setattr(PERF, name, value)
        clear_hot_path_caches()
