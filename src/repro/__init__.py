"""SMaRt-SCADA reproduction (Nogueira et al., DSN 2018).

A Byzantine fault-tolerant SCADA system built from scratch in Python:

- :mod:`repro.sim` — deterministic discrete-event simulation kernel;
- :mod:`repro.net` — simulated network with latency and fault injection;
- :mod:`repro.crypto` / :mod:`repro.wire` — authentication and codec;
- :mod:`repro.bftsmart` — BFT-SMaRt-style state machine replication;
- :mod:`repro.neoscada` — Eclipse-NeoSCADA-style SCADA construction kit;
- :mod:`repro.core` — SMaRt-SCADA: the BFT SCADA Master integration;
- :mod:`repro.workloads` — workload generators and measurement harness.
"""

__version__ = "1.0.0"
