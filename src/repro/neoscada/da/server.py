"""Data Access server: the publishing side of the DA interface.

A DA server lives inside a component that *owns* items (Frontend, SCADA
Master, ProxyHMI). It accepts subscriptions, fans ItemUpdates out to
subscribers, and hands incoming WriteValue messages to the owner's write
callback.
"""

from __future__ import annotations

from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    ItemUpdate,
    Subscribe,
    Unsubscribe,
    WriteValue,
)
from repro.neoscada.da.subscription import SubscriptionManager
from repro.neoscada.values import DataValue


class DAServer:
    """Server side of the Data Access interface.

    Parameters
    ----------
    send:
        ``fn(dst_address, message)`` — the owning component's transport.
    on_write:
        ``fn(message: WriteValue, src)`` invoked for incoming writes.
    browse_source:
        Zero-argument callable returning ``[(item_id, writable), ...]``
        for BrowseRequest answers.
    on_subscribe:
        Optional ``fn(subscriber, item_id)`` hook (the Frontend uses it
        to send initial values to new subscribers).
    """

    def __init__(self, send, on_write=None, browse_source=None, on_subscribe=None) -> None:
        self._send = send
        self._on_write = on_write
        self._browse_source = browse_source
        self._on_subscribe = on_subscribe
        self.subscriptions = SubscriptionManager()
        self.published = 0

    # -- inbound ---------------------------------------------------------------

    def dispatch(self, message, src: str) -> bool:
        """Handle a DA message; returns False if it is not DA-server traffic."""
        if isinstance(message, Subscribe):
            self.subscriptions.subscribe(message.subscriber, message.item_id)
            if self._on_subscribe is not None:
                self._on_subscribe(message.subscriber, message.item_id)
            return True
        if isinstance(message, Unsubscribe):
            self.subscriptions.unsubscribe(message.subscriber, message.item_id)
            return True
        if isinstance(message, WriteValue):
            if self._on_write is not None:
                self._on_write(message, src)
            return True
        if isinstance(message, BrowseRequest):
            items = tuple(self._browse_source() if self._browse_source else ())
            self._send(message.reply_to, BrowseReply(items=items))
            return True
        return False

    # -- outbound ----------------------------------------------------------------

    def publish(self, item_id: str, value: DataValue, exclude: str | None = None) -> int:
        """Send an ItemUpdate to every subscriber; returns the fan-out."""
        update = ItemUpdate(item_id=item_id, value=value)
        count = 0
        for subscriber in self.subscriptions.subscribers_for(item_id):
            if subscriber == exclude:
                continue
            self._send(subscriber, update)
            count += 1
        self.published += count
        return count

    def send_to(self, subscriber: str, item_id: str, value: DataValue) -> None:
        """Send one targeted ItemUpdate (initial value on subscribe)."""
        self._send(subscriber, ItemUpdate(item_id=item_id, value=value))
