"""Data Access (DA) interface: read/update values, perform writes."""

from repro.neoscada.da.client import DAClient
from repro.neoscada.da.server import DAServer
from repro.neoscada.da.subscription import SubscriptionManager

__all__ = ["DAClient", "DAServer", "SubscriptionManager"]
