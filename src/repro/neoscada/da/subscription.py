"""Subscription bookkeeping shared by the DA and AE servers."""

from __future__ import annotations


class SubscriptionManager:
    """Tracks which subscriber addresses want which item ids.

    ``"*"`` subscribes to everything — the SCADA Master subscribes to all
    of a Frontend's items this way, and the HMI typically does the same
    towards the Master.
    """

    def __init__(self) -> None:
        self._by_item: dict[str, set] = {}

    def subscribe(self, subscriber: str, item_id: str) -> None:
        self._by_item.setdefault(item_id, set()).add(subscriber)

    def unsubscribe(self, subscriber: str, item_id: str) -> None:
        subscribers = self._by_item.get(item_id)
        if subscribers is not None:
            subscribers.discard(subscriber)
            if not subscribers:
                del self._by_item[item_id]

    def drop_subscriber(self, subscriber: str) -> None:
        """Remove a subscriber from every item (session teardown)."""
        for item_id in list(self._by_item):
            self.unsubscribe(subscriber, item_id)

    def subscribers_for(self, item_id: str) -> list:
        """Deterministically ordered subscribers for one item."""
        exact = self._by_item.get(item_id, set())
        wildcard = self._by_item.get("*", set())
        return sorted(exact | wildcard)

    def is_subscribed(self, subscriber: str, item_id: str) -> bool:
        return subscriber in self._by_item.get(item_id, set()) or (
            subscriber in self._by_item.get("*", set())
        )
