"""Data Access client: the consuming side of the DA interface.

A DA client lives inside components that *mirror* items from elsewhere
(the SCADA Master towards Frontends, the HMI towards the Master). It
subscribes, receives ItemUpdates, and issues WriteValue operations whose
WriteResults are correlated by operation id.
"""

from __future__ import annotations

from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    ItemUpdate,
    Subscribe,
    Unsubscribe,
    WriteResult,
    WriteValue,
)


class DAClient:
    """Client side of the Data Access interface.

    Parameters
    ----------
    address:
        The owning component's network address (used as subscriber id
        and reply-to).
    send:
        ``fn(dst_address, message)`` transport.
    on_update:
        ``fn(message: ItemUpdate, src)`` invoked for incoming updates.
    on_browse:
        Optional ``fn(message: BrowseReply, src)``.
    """

    def __init__(self, address: str, send, on_update=None, on_browse=None) -> None:
        self.address = address
        self._send = send
        self._on_update = on_update
        self._on_browse = on_browse
        #: op_id -> fn(WriteResult) for outstanding writes.
        self._pending_writes: dict[str, object] = {}
        self._op_counter = 0
        self.updates_received = 0

    # -- subscriptions ------------------------------------------------------------

    def subscribe(self, server: str, item_id: str = "*") -> None:
        self._send(server, Subscribe(subscriber=self.address, item_id=item_id))

    def unsubscribe(self, server: str, item_id: str = "*") -> None:
        self._send(server, Unsubscribe(subscriber=self.address, item_id=item_id))

    def browse(self, server: str) -> None:
        self._send(server, BrowseRequest(reply_to=self.address))

    # -- writes ---------------------------------------------------------------------

    def next_op_id(self) -> str:
        self._op_counter += 1
        return f"{self.address}:op{self._op_counter}"

    def write(
        self,
        server: str,
        item_id: str,
        value,
        on_result,
        operator: str = "",
        op_id: str | None = None,
    ) -> str:
        """Issue a write; ``on_result(WriteResult)`` fires on completion."""
        op_id = op_id if op_id is not None else self.next_op_id()
        self._pending_writes[op_id] = on_result
        self._send(
            server,
            WriteValue(
                item_id=item_id,
                value=value,
                op_id=op_id,
                reply_to=self.address,
                operator=operator,
            ),
        )
        return op_id

    def pending_write_count(self) -> int:
        return len(self._pending_writes)

    # -- inbound ---------------------------------------------------------------------

    def dispatch(self, message, src: str) -> bool:
        """Handle a DA message; returns False if not DA-client traffic."""
        if isinstance(message, ItemUpdate):
            self.updates_received += 1
            if self._on_update is not None:
                self._on_update(message, src)
            return True
        if isinstance(message, WriteResult):
            callback = self._pending_writes.pop(message.op_id, None)
            if callback is not None:
                callback(message)
            return True
        if isinstance(message, BrowseReply):
            if self._on_browse is not None:
                self._on_browse(message, src)
            return True
        return False
