"""An Eclipse-NeoSCADA-style SCADA construction kit.

Implements the functional subset of NeoSCADA the paper exercises (and a
little more): items with quality/timestamps, the DA and AE communication
interfaces, the default handler set (Scale, Override, Monitor, Block),
event storage, the SCADA Master with its concurrent worker pool, the
Frontend protocol translator with a Modbus-style field protocol,
simulated RTUs with physical process models, and the HMI.
"""

from repro.neoscada.ae import AEClient, AEServer, EventRecord, Severity
from repro.neoscada.archive import TrendBucket, TrendRecorder, ValueArchive
from repro.neoscada.da import DAClient, DAServer, SubscriptionManager
from repro.neoscada.frontend import Frontend
from repro.neoscada.handlers import (
    Block,
    Handler,
    HandlerChain,
    HandlerContext,
    HandlerResult,
    Monitor,
    Override,
    Scale,
)
from repro.neoscada.hmi import HMI
from repro.neoscada.items import Item, ItemRegistry
from repro.neoscada.master import ExecutionOutcome, MasterCosts, ScadaMaster
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    EventUpdate,
    ItemUpdate,
    Subscribe,
    SubscribeEvents,
    Unsubscribe,
    UnsubscribeEvents,
    WriteResult,
    WriteValue,
)
from repro.neoscada.rtu import RTU
from repro.neoscada.rtu104 import Iec104RTU
from repro.neoscada.storage import EventStorage
from repro.neoscada.values import DataValue, Quality

__all__ = [
    "AEClient",
    "AEServer",
    "Block",
    "BrowseReply",
    "BrowseRequest",
    "DAClient",
    "DAServer",
    "DataValue",
    "EventRecord",
    "EventStorage",
    "EventUpdate",
    "ExecutionOutcome",
    "Frontend",
    "HMI",
    "Handler",
    "HandlerChain",
    "HandlerContext",
    "HandlerResult",
    "Iec104RTU",
    "Item",
    "ItemRegistry",
    "ItemUpdate",
    "MasterCosts",
    "Monitor",
    "Override",
    "Quality",
    "RTU",
    "ScadaMaster",
    "Scale",
    "Severity",
    "Subscribe",
    "SubscribeEvents",
    "SubscriptionManager",
    "TrendBucket",
    "TrendRecorder",
    "Unsubscribe",
    "UnsubscribeEvents",
    "ValueArchive",
    "WriteResult",
    "WriteValue",
]
