"""Event storage: the Master's persistent event/alarm log.

Every event a handler creates is "saved in the storage" (paper §II-A)
before being forwarded to AE subscribers. The store keeps a bounded,
time-ordered log with query support, and exposes its content in a
canonical form so replicated Masters can include it in snapshots.
"""

from __future__ import annotations

from collections import deque

from repro.neoscada.ae.events import EventRecord


class StorageStation:
    """Closed-form timing model of the storage writer thread.

    The writer persists events one at a time at ``service_time`` seconds
    each, buffering up to ``buffer_size`` submissions. :meth:`submit`
    returns how long the *producer* must stall: zero while the backlog
    fits the buffer, and the overflow drain time once it does not. This
    reproduces the saturation behaviour of a real bounded-queue writer
    without simulating a process per write.
    """

    def __init__(self, service_time: float, buffer_size: int) -> None:
        if service_time < 0 or buffer_size < 1:
            raise ValueError("invalid storage station parameters")
        self.service_time = service_time
        self.buffer_size = buffer_size
        self.busy_until = 0.0
        self.submitted = 0

    def submit(self, now: float, count: int) -> float:
        """Enqueue ``count`` writes at time ``now``; returns producer stall."""
        if count <= 0:
            return 0.0
        start = max(now, self.busy_until)
        self.busy_until = start + count * self.service_time
        self.submitted += count
        headroom = self.buffer_size * self.service_time
        return max(0.0, self.busy_until - now - headroom)


class EventStorage:
    """Bounded, append-ordered event log."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque()
        #: Total events ever written (survives rotation).
        self.total_written = 0

    def __len__(self) -> int:
        return len(self._events)

    def append(self, event: EventRecord) -> None:
        """Persist one event, rotating out the oldest beyond capacity."""
        self._events.append(event)
        self.total_written += 1
        while len(self._events) > self.capacity:
            self._events.popleft()

    def query(
        self,
        item_id: str = "*",
        start: float = float("-inf"),
        end: float = float("inf"),
        event_type: str | None = None,
        limit: int | None = None,
    ) -> list:
        """Events matching the filters, oldest first."""
        results = []
        for event in self._events:
            if not event.matches(item_id):
                continue
            if not start <= event.timestamp <= end:
                continue
            if event_type is not None and event.event_type != event_type:
                continue
            results.append(event)
            if limit is not None and len(results) >= limit:
                break
        return results

    def latest(self, count: int = 1) -> list:
        """The most recent ``count`` events, oldest first."""
        if count <= 0:
            return []
        return list(self._events)[-count:]

    def to_tuple(self) -> tuple:
        """Canonical content for snapshots and digests."""
        return tuple(self._events)

    def restore(self, events, total_written: int | None = None) -> None:
        """Replace contents (snapshot installation)."""
        self._events = deque(events)
        while len(self._events) > self.capacity:
            self._events.popleft()
        self.total_written = (
            len(self._events) if total_written is None else total_written
        )
