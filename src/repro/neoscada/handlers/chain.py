"""Handler chains: the per-item processing pipeline of the Master."""

from __future__ import annotations

from repro.neoscada.handlers.base import Handler, HandlerContext, HandlerResult
from repro.neoscada.values import DataValue


class HandlerChain:
    """An ordered list of handlers applied to each item message.

    The chain feeds each handler the previous handler's output value,
    accumulates every event raised along the way, and short-circuits on
    the first blocking handler (writes only reach the Frontend if no
    handler blocked them — paper §II-B-b).
    """

    def __init__(self, handlers: list | None = None) -> None:
        self.handlers: list[Handler] = list(handlers or [])

    def add(self, handler: Handler) -> "HandlerChain":
        self.handlers.append(handler)
        return self

    @property
    def cost(self) -> float:
        """Total simulated CPU cost of one trip through the chain."""
        return sum(handler.cost for handler in self.handlers)

    def process(self, value: DataValue, ctx: HandlerContext) -> HandlerResult:
        events: list = []
        current = value
        for handler in self.handlers:
            result = handler.process(current, ctx)
            events.extend(result.events)
            current = result.value
            if result.blocked:
                return HandlerResult(
                    value=current,
                    events=events,
                    blocked=True,
                    block_reason=result.block_reason,
                )
        return HandlerResult(value=current, events=events)

    def state(self) -> tuple:
        return tuple(handler.state() for handler in self.handlers)

    def restore(self, state: tuple) -> None:
        if len(state) != len(self.handlers):
            raise ValueError("handler chain shape changed since snapshot")
        for handler, handler_state in zip(self.handlers, state):
            handler.restore(handler_state)
