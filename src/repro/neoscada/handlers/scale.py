"""Scale handler: linear transformation of numeric values.

NeoSCADA's default ``Scale`` handler "scales the value of an item"
(paper §II-A) — typically converting raw RTU register integers into
engineering units (e.g. ``volts = register * 0.1``).
"""

from __future__ import annotations

from repro.neoscada.handlers.base import Handler, HandlerContext, HandlerResult
from repro.neoscada.values import DataValue


class Scale(Handler):
    """Applies ``value * factor + offset`` to numeric values.

    Non-numeric and non-good-quality values pass through untouched.
    """

    cost = 0.000002

    def __init__(self, factor: float = 1.0, offset: float = 0.0) -> None:
        self.factor = factor
        self.offset = offset

    def process(self, value: DataValue, ctx: HandlerContext) -> HandlerResult:
        raw = value.value
        if not value.is_good or not isinstance(raw, (int, float)) or isinstance(raw, bool):
            return HandlerResult(value=value)
        scaled = raw * self.factor + self.offset
        return HandlerResult(value=value.with_value(scaled))

    def __repr__(self) -> str:
        return f"Scale(factor={self.factor}, offset={self.offset})"
