"""Override handler: force an item to a fixed value.

NeoSCADA's ``Override`` handler "overrides the current value of an item
with a predefined value" (paper §II-A) — operators use it to pin a
reading while a sensor is under maintenance. The overridden value is
marked BLOCKED quality so downstream consumers can tell.
"""

from __future__ import annotations

from repro.neoscada.ae.events import Severity
from repro.neoscada.handlers.base import Handler, HandlerContext, HandlerResult
from repro.neoscada.values import DataValue, Quality


class Override(Handler):
    """Replaces incoming values with a fixed one while active."""

    cost = 0.000002

    def __init__(self, value=None, active: bool = False) -> None:
        self.value = value
        self.active = active

    def activate(self, value) -> None:
        self.value = value
        self.active = True

    def deactivate(self) -> None:
        self.active = False

    def process(self, value: DataValue, ctx: HandlerContext) -> HandlerResult:
        if not self.active:
            return HandlerResult(value=value)
        overridden = DataValue(
            value=self.value, quality=Quality.BLOCKED, timestamp=ctx.now
        )
        event = ctx.make_event(
            event_type="override",
            severity=Severity.INFO,
            value=self.value,
            message=f"value overridden to {self.value!r}",
        )
        return HandlerResult(value=overridden, events=[event])

    def state(self) -> tuple:
        return (self.value, self.active)

    def restore(self, state: tuple) -> None:
        self.value, self.active = state

    def __repr__(self) -> str:
        return f"Override(value={self.value!r}, active={self.active})"
