"""Block handler: write authorization.

NeoSCADA's ``Block`` handler "blocks an operation while it waits for
some condition to be verified" (paper §II-A). When it denies a write,
the Master answers the operator with *two* messages: a failed
WriteResult over DA, and an EventUpdate over AE carrying the reason
(paper §II-B-b) — the Master logic implements that double reply; this
handler provides the decision and the logged event.
"""

from __future__ import annotations

from repro.neoscada.ae.events import Severity
from repro.neoscada.handlers.base import Handler, HandlerContext, HandlerResult
from repro.neoscada.values import DataValue


class Block(Handler):
    """Denies write operations according to a policy.

    Parameters
    ----------
    allowed_operators:
        If given, only these operator identities may write.
    predicate:
        Optional ``fn(value, ctx) -> (allowed: bool, reason: str)`` for
        arbitrary conditions (interlocks, value ranges...). Must be a
        deterministic function of its arguments.
    blocked:
        If True, every write is denied (maintenance lock).
    """

    cost = 0.000003

    def __init__(
        self,
        allowed_operators: tuple | None = None,
        predicate=None,
        blocked: bool = False,
    ) -> None:
        self.allowed_operators = allowed_operators
        self.predicate = predicate
        self.blocked = blocked

    def process(self, value: DataValue, ctx: HandlerContext) -> HandlerResult:
        if not ctx.is_write:
            return HandlerResult(value=value)
        reason = self._deny_reason(value, ctx)
        if reason is None:
            return HandlerResult(value=value)
        event = ctx.make_event(
            event_type="write-denied",
            severity=Severity.WARNING,
            value=value.value,
            message=reason,
        )
        return HandlerResult(
            value=value, events=[event], blocked=True, block_reason=reason
        )

    def _deny_reason(self, value: DataValue, ctx: HandlerContext) -> str | None:
        if self.blocked:
            return "item is locked for maintenance"
        if (
            self.allowed_operators is not None
            and ctx.operator not in self.allowed_operators
        ):
            return f"operator {ctx.operator!r} is not authorized"
        if self.predicate is not None:
            allowed, reason = self.predicate(value, ctx)
            if not allowed:
                return reason or "write rejected by policy"
        return None

    def state(self) -> tuple:
        return (self.blocked,)

    def restore(self, state: tuple) -> None:
        (self.blocked,) = state

    def __repr__(self) -> str:
        return f"Block(blocked={self.blocked})"
