"""Monitor handler: threshold alarms.

NeoSCADA's ``Monitor`` handler "checks whether a value passes a certain
threshold" (paper §II-A); when it does, an alarm event is created, saved
in storage and propagated to AE subscribers. This is the handler the
paper adds for the Figure 8(b) alarm experiments.
"""

from __future__ import annotations

from repro.neoscada.ae.events import Severity
from repro.neoscada.handlers.base import Handler, HandlerContext, HandlerResult
from repro.neoscada.values import DataValue


class Monitor(Handler):
    """Raises an alarm event whenever the value is out of bounds.

    Parameters
    ----------
    high, low:
        Alarm if ``value > high`` or ``value < low`` (either optional).
    severity:
        Severity of the raised events.
    edge_triggered:
        If True, only the transitions into/out of the alarm state raise
        events; if False (default, and what the Figure 8(b) experiment
        needs), every out-of-bounds update raises one.
    """

    cost = 0.000004

    def __init__(
        self,
        high: float | None = None,
        low: float | None = None,
        severity: Severity = Severity.ALARM,
        edge_triggered: bool = False,
    ) -> None:
        if high is None and low is None:
            raise ValueError("Monitor needs at least one bound")
        self.high = high
        self.low = low
        self.severity = severity
        self.edge_triggered = edge_triggered
        self.in_alarm = False

    def _violates(self, raw) -> str | None:
        if not isinstance(raw, (int, float)) or isinstance(raw, bool):
            return None
        if self.high is not None and raw > self.high:
            return f"value {raw} above high limit {self.high}"
        if self.low is not None and raw < self.low:
            return f"value {raw} below low limit {self.low}"
        return None

    def process(self, value: DataValue, ctx: HandlerContext) -> HandlerResult:
        if not value.is_good:
            return HandlerResult(value=value)
        violation = self._violates(value.value)
        events = []
        if violation is not None:
            if not (self.edge_triggered and self.in_alarm):
                events.append(
                    ctx.make_event(
                        event_type="alarm",
                        severity=self.severity,
                        value=value.value,
                        message=violation,
                    )
                )
            self.in_alarm = True
        else:
            if self.edge_triggered and self.in_alarm:
                events.append(
                    ctx.make_event(
                        event_type="alarm-cleared",
                        severity=Severity.INFO,
                        value=value.value,
                        message="value back within limits",
                    )
                )
            self.in_alarm = False
        return HandlerResult(value=value, events=events)

    def state(self) -> tuple:
        return (self.in_alarm,)

    def restore(self, state: tuple) -> None:
        (self.in_alarm,) = state

    def __repr__(self) -> str:
        return f"Monitor(high={self.high}, low={self.low})"
