"""NeoSCADA's default item handlers: Scale, Override, Monitor, Block."""

from repro.neoscada.handlers.base import Handler, HandlerContext, HandlerResult
from repro.neoscada.handlers.block import Block
from repro.neoscada.handlers.chain import HandlerChain
from repro.neoscada.handlers.monitor import Monitor
from repro.neoscada.handlers.override import Override
from repro.neoscada.handlers.scale import Scale

__all__ = [
    "Block",
    "Handler",
    "HandlerChain",
    "HandlerContext",
    "HandlerResult",
    "Monitor",
    "Override",
    "Scale",
]
