"""Handler framework.

Handlers are attached to the SCADA Master's items "to obtain enhanced
functionalities" (paper §II-A): they can transform a value, raise
events, and block write operations. A handler must be deterministic
given its inputs and the :class:`HandlerContext` — the context is where
all environmental information (the clock, the event-id source) comes
from, which is exactly the seam the replicated Master uses to feed
deterministic timestamps (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.neoscada.ae.events import EventRecord, Severity
from repro.neoscada.values import DataValue


@dataclass
class HandlerContext:
    """Environment for one handler invocation.

    Attributes
    ----------
    item_id:
        The item being processed.
    now:
        The timestamp to stamp on derived events. In the original Master
        this is the wall clock; in the replicated Master it comes from
        ContextInfo (identical across replicas).
    event_id_source:
        Zero-argument callable returning a fresh, deterministic event id.
    is_write:
        True when processing a WriteValue rather than an ItemUpdate.
    operator:
        Operator identity for authorization decisions (writes only).
    previous:
        The item's value before this message.
    """

    item_id: str
    now: float
    event_id_source: object
    is_write: bool = False
    operator: str = ""
    previous: DataValue | None = None

    def make_event(
        self,
        event_type: str,
        severity: Severity,
        value,
        message: str,
    ) -> EventRecord:
        """Build an event stamped with the context's deterministic data."""
        return EventRecord(
            event_id=self.event_id_source(),
            item_id=self.item_id,
            event_type=event_type,
            severity=severity,
            value=value,
            message=message,
            timestamp=self.now,
        )


@dataclass
class HandlerResult:
    """Outcome of one handler invocation.

    ``value`` is the (possibly transformed) value passed to the next
    handler; ``events`` are appended to the chain's event list;
    ``blocked`` (with ``block_reason``) aborts a write operation.
    """

    value: DataValue
    events: list = field(default_factory=list)
    blocked: bool = False
    block_reason: str = ""


class Handler:
    """Base class for item handlers."""

    #: Simulated CPU cost of one invocation (seconds); cost models add
    #: these up to price a message's trip through the chain.
    cost: float = 0.0

    def process(self, value: DataValue, ctx: HandlerContext) -> HandlerResult:
        raise NotImplementedError

    def state(self) -> tuple:
        """Canonical internal state for snapshots (default: stateless)."""
        return ()

    def restore(self, state: tuple) -> None:
        """Restore internal state from :meth:`state` output."""
