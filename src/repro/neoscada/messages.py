"""DA and AE wire messages (wire ids 52–69).

These mirror the operations of NeoSCADA's two communication interfaces:
Data Access (subscribe / ItemUpdate / WriteValue / WriteResult) and
Alarms & Events (subscribe / EventUpdate), plus browse for discovery.
The names and payloads follow the paper's Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.neoscada.values import DataValue
from repro.wire import wire_type


# -- Data Access (DA) ---------------------------------------------------------


@wire_type(52)
@dataclass(frozen=True)
class Subscribe:
    """Subscribe ``subscriber`` to value updates of ``item_id``.

    ``item_id`` may be ``"*"`` to subscribe to every item (what the
    SCADA Master does towards each Frontend).
    """

    subscriber: str
    item_id: str


@wire_type(53)
@dataclass(frozen=True)
class Unsubscribe:
    subscriber: str
    item_id: str


@wire_type(54)
@dataclass(frozen=True)
class ItemUpdate:
    """A new value for an item — ``ItemUpdate(ID, val)`` in the paper."""

    item_id: str
    value: DataValue


@wire_type(55)
@dataclass(frozen=True)
class WriteValue:
    """Request to change an item — ``WriteValue(ID, val)`` in the paper.

    ``op_id`` correlates the eventual :class:`WriteResult`;
    ``reply_to`` is where the result must be routed; ``operator`` is the
    human identity for the Block handler's authorization decision.
    """

    item_id: str
    value: object
    op_id: str
    reply_to: str
    operator: str = ""


@wire_type(56)
@dataclass(frozen=True)
class WriteResult:
    """Outcome of a write — ``WriteResult(ID)`` in the paper."""

    item_id: str
    op_id: str
    success: bool
    reason: str = ""


@wire_type(57)
@dataclass(frozen=True)
class BrowseRequest:
    """Ask a component for its item directory."""

    reply_to: str


@wire_type(58)
@dataclass(frozen=True)
class BrowseReply:
    """Item directory: tuple of (item_id, writable) pairs."""

    items: tuple


# -- Alarms & Events (AE) -----------------------------------------------------


@wire_type(59)
@dataclass(frozen=True)
class SubscribeEvents:
    """Subscribe ``subscriber`` to events of ``item_id`` (or ``"*"``)."""

    subscriber: str
    item_id: str


@wire_type(60)
@dataclass(frozen=True)
class UnsubscribeEvents:
    subscriber: str
    item_id: str


@wire_type(61)
@dataclass(frozen=True)
class EventUpdate:
    """An alarm/event notification — ``EventUpdate(ID)`` in the paper."""

    event: object  # EventRecord


@wire_type(64)
@dataclass(frozen=True)
class EventQuery:
    """Read-only query of the Master's event history.

    Served from the event storage; in the replicated deployment this
    travels the *unordered* (read-only) path of the replication library
    and the client accepts n-f matching answers.
    """

    query_id: str
    reply_to: str
    item_id: str = "*"
    start: float = float("-inf")
    end: float = float("inf")
    event_type: str | None = None
    limit: int | None = 100


@wire_type(65)
@dataclass(frozen=True)
class EventQueryReply:
    """Answer to an :class:`EventQuery`: matching events, oldest first."""

    query_id: str
    events: tuple


@wire_type(66)
@dataclass(frozen=True)
class ValueQuery:
    """Read-only query of an item's current value.

    Like :class:`EventQuery` this is served from Master state without a
    state change; in the replicated deployment it travels the library's
    unordered path (n-f matching answers), falling back to ordered
    execution when the read quorum diverges.
    """

    query_id: str
    reply_to: str
    item_id: str


@wire_type(67)
@dataclass(frozen=True)
class ValueQueryReply:
    """Answer to a :class:`ValueQuery`.

    ``value`` is the item's current :class:`DataValue`, or ``None`` when
    the Master has never seen the item.
    """

    query_id: str
    item_id: str
    value: DataValue | None
