"""The SCADA Master: NeoSCADA's central server.

The Master mirrors the Frontends' items, runs the handler chains,
persists events, and serves the HMI over DA and AE (paper Figure 2).

The class is split into a *deterministic core* and a *concurrency
shell*, because that split is exactly what the paper's port to BFT
replication required:

- The core (:meth:`classify` / :meth:`execute` / :meth:`commit_events`)
  mutates state synchronously and takes every environmental input —
  clock, event ids, message transport — through injected callables.
  Given the same message sequence and the same injected inputs, two core
  instances evolve identically. SMaRt-SCADA's Adapter drives this core
  directly (one message at a time, in consensus order, with
  ContextInfo-supplied clock and event ids).

- The shell (the worker pool started by :meth:`start`) reproduces the
  original NeoSCADA behaviour: ``workers`` concurrent threads pull
  messages off a shared queue and processing times carry seeded jitter,
  so the order in which state changes land is *not* the arrival order —
  the multi-threading nondeterminism of challenge §III-B(b), which the
  divergence tests demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.neoscada.ae.events import Severity
from repro.neoscada.ae.server import AEServer
from repro.neoscada.da.client import DAClient
from repro.neoscada.da.server import DAServer
from repro.neoscada.handlers.base import HandlerContext
from repro.neoscada.handlers.chain import HandlerChain
from repro.neoscada.items import ItemRegistry
from repro.neoscada.messages import (
    BrowseReply,
    EventQuery,
    EventQueryReply,
    ItemUpdate,
    ValueQuery,
    ValueQueryReply,
    WriteResult,
    WriteValue,
)
from repro.neoscada.storage import EventStorage, StorageStation
from repro.neoscada.values import DataValue, Quality
from repro.net.network import Network
from repro.sim.channels import Channel
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class MasterCosts:
    """Simulated CPU costs of the Master's data-plane operations.

    The absolute values are calibrated so that the benchmark suite
    reproduces the *relative* results of the paper's Figure 8 (see
    EXPERIMENTS.md); they model the Java processing costs of the
    original testbed.
    """

    #: One ItemUpdate through the DA + AE subsystems.
    update_processing: float = 0.00055
    #: One WriteValue or WriteResult leg through the DA subsystem.
    write_processing: float = 0.00070
    #: Creating and routing one event (beyond the handler chain itself).
    event_processing: float = 0.00008
    #: Service time of the storage writer per persisted event. Storage is
    #: a single serial station: producers only block once its buffer is
    #: exhausted, so its cost is invisible at low event rates and becomes
    #: the bottleneck as the event rate approaches ``1/storage_service_time``
    #: — the mechanism behind the paper's 100%-alarms result (Fig. 8b).
    storage_service_time: float = 0.0008
    #: Events the storage station buffers before producers block.
    storage_buffer: int = 64
    #: Extra serialization cost per message (the replicated deployment
    #: sets this > 0: single-entry-point marshalling, §VII-b).
    serialization: float = 0.0

    def event_cost(self, count: int) -> float:
        return count * self.event_processing


@dataclass
class ExecutionOutcome:
    """What one core execution produced."""

    kind: str
    events: list = field(default_factory=list)
    #: For writes: whether the operation was forwarded / answered.
    blocked: bool = False
    forwarded: bool = False
    #: The Master-side op id of a forwarded write (for timeout tracking).
    master_op: str | None = None
    #: The item a forwarded write targets.
    item_id: str | None = None


class ScadaMaster:
    """NeoSCADA's SCADA Master.

    Parameters
    ----------
    sim, net, address:
        Simulation attachment. ``transport`` overrides the network send
        (the replicated deployment passes the Adapter here).
    frontends:
        Addresses of the Frontends to mirror.
    workers:
        Size of the concurrent worker pool; 0 disables the shell
        entirely (external drivers call the core directly).
    jitter:
        Relative processing-time jitter (e.g. 0.2 = ±20%), the source of
        scheduling nondeterminism. Ignored when ``workers == 0``.
    clock:
        Zero-argument callable giving event timestamps. Defaults to the
        simulation clock — the OS-clock nondeterminism of §III-B(c).
    event_id_source:
        Zero-argument callable producing event ids; defaults to a local
        counter (``"<address>:e<N>"``), which is *not* replica-safe.
    write_timeout:
        Seconds after which a forwarded write is answered with a failed
        WriteResult if the Frontend never responds (None = block forever,
        the behaviour §IV-D warns about).
    audit_writes:
        If True, successful write completions also raise an event.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        frontends: list,
        costs: MasterCosts | None = None,
        workers: int = 4,
        jitter: float = 0.2,
        clock=None,
        event_id_source=None,
        write_timeout: float | None = 5.0,
        audit_writes: bool = False,
        storage_capacity: int = 100_000,
        transport=None,
    ) -> None:
        self.sim = sim
        self.address = address
        self.frontends = list(frontends)
        self.costs = costs if costs is not None else MasterCosts()
        self.workers = workers
        self.jitter = jitter
        self.write_timeout = write_timeout
        self.audit_writes = audit_writes

        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_network_message)
        self._transport = transport if transport is not None else self.endpoint.send

        self.clock = clock if clock is not None else (lambda: sim.now)
        self._event_counter = 0
        self.event_id_source = (
            event_id_source if event_id_source is not None else self._next_event_id
        )

        self.items = ItemRegistry()
        self.chains: dict[str, HandlerChain] = {}
        self.item_frontend: dict[str, str] = {}
        self.storage = EventStorage(capacity=storage_capacity)
        self.storage_station = StorageStation(
            service_time=self.costs.storage_service_time,
            buffer_size=self.costs.storage_buffer,
        )
        #: master-op-id -> (origin_reply_to, origin_op_id, item_id, operator)
        self.pending_writes: dict[str, tuple] = {}
        self._op_counter = 0

        self.da_server = DAServer(
            self._send,
            on_write=None,  # writes are data-plane; classified below
            browse_source=lambda: [
                (item.item_id, item.writable) for item in self.items
            ],
        )
        self.ae_server = AEServer(self._send)
        self.da_client = DAClient(
            address, self._send, on_update=None, on_browse=None
        )

        self._queue = Channel(sim, name=f"master-queue:{address}")
        self._jitter_rng = sim.rng.stream(f"master.{address}.jitter")
        self.stats = {
            "updates": 0,
            "writes": 0,
            "write_results": 0,
            "events": 0,
            "blocked_writes": 0,
            "timeouts": 0,
        }
        self._started = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _send(self, dst: str, message) -> None:
        self._transport(dst, message)

    def _next_event_id(self) -> str:
        self._event_counter += 1
        return f"{self.address}:e{self._event_counter}"

    def next_op_id(self) -> str:
        self._op_counter += 1
        return f"{self.address}:w{self._op_counter}"

    def attach_handlers(self, item_id: str, chain: HandlerChain) -> None:
        """Associate a handler chain with an item (``"*"`` = default)."""
        self.chains[item_id] = chain

    def chain_for(self, item_id: str) -> HandlerChain | None:
        return self.chains.get(item_id) or self.chains.get("*")

    def start(self) -> None:
        """Subscribe to the Frontends and start the worker pool."""
        if self._started:
            return
        self._started = True
        for frontend in self.frontends:
            self.da_client.subscribe(frontend, "*")
            self.da_client.browse(frontend)
        for index in range(self.workers):
            self.sim.process(self._worker(), name=f"master-worker:{self.address}:{index}")

    # ------------------------------------------------------------------
    # inbound: classification (control plane now, data plane queued)
    # ------------------------------------------------------------------

    def _on_network_message(self, message, src: str) -> None:
        kind = self.classify(message, src)
        if kind is not None:
            self._queue.put((kind, message, src))

    def classify(self, message, src: str) -> str | None:
        """Sort a message into a data-plane kind, or handle it inline.

        Control-plane traffic (subscriptions, browse) is processed
        immediately; data-plane traffic returns a kind for ordered
        execution: ``"update"``, ``"write"``, ``"write_result"``.
        """
        if isinstance(message, ItemUpdate):
            return "update"
        if isinstance(message, WriteValue):
            return "write"
        if isinstance(message, WriteResult):
            return "write_result"
        if isinstance(message, BrowseReply):
            self._learn_browse(message, src)
            return None
        if isinstance(message, EventQuery):
            # Read-only history query: answered inline from storage. (The
            # replicated deployment never routes these here — they travel
            # the library's unordered path instead; see ScadaService.)
            self._send(message.reply_to, self.answer_event_query(message))
            return None
        if isinstance(message, ValueQuery):
            # Read-only current-value query: same inline treatment.
            self._send(message.reply_to, self.answer_value_query(message))
            return None
        if self.da_server.dispatch(message, src):
            return None
        if self.ae_server.dispatch(message, src):
            return None
        return None

    def answer_event_query(self, query: EventQuery) -> EventQueryReply:
        """Run a history query against the event storage."""
        events = self.storage.query(
            item_id=query.item_id,
            start=query.start,
            end=query.end,
            event_type=query.event_type,
            limit=query.limit,
        )
        return EventQueryReply(query_id=query.query_id, events=tuple(events))

    def answer_value_query(self, query: ValueQuery) -> ValueQueryReply:
        """Read an item's current value off the Master state."""
        item = self.items.try_get(query.item_id)
        return ValueQueryReply(
            query_id=query.query_id,
            item_id=query.item_id,
            value=item.value if item is not None else None,
        )

    def _learn_browse(self, message: BrowseReply, src: str) -> None:
        for item_id, writable in message.items:
            item = self.items.ensure(item_id)
            item.writable = bool(writable)
            self.item_frontend.setdefault(item_id, src)

    # ------------------------------------------------------------------
    # the concurrency shell (original NeoSCADA behaviour)
    # ------------------------------------------------------------------

    def _worker(self):
        while True:
            kind, message, src = yield self._queue.get()
            cost = self.cost_of(kind, getattr(message, "item_id", None))
            if self.jitter > 0:
                cost *= 1.0 + self.jitter * self._jitter_rng.uniform(-1.0, 1.0)
            if cost > 0:
                yield self.sim.timeout(cost)
            outcome = self.execute(kind, message, src)
            if outcome.events:
                cost = self.costs.event_cost(len(outcome.events))
                cost += self.storage_station.submit(
                    self.sim.now, len(outcome.events)
                )
                if cost > 0:
                    yield self.sim.timeout(cost)
                self.commit_events(outcome.events)

    # ------------------------------------------------------------------
    # the deterministic core
    # ------------------------------------------------------------------

    def cost_of(self, kind: str, item_id: str | None = None) -> float:
        """Pre-execution CPU cost of one data-plane message."""
        if kind == "update":
            base = self.costs.update_processing
        else:
            base = self.costs.write_processing
        chain = self.chain_for(item_id) if item_id is not None else None
        chain_cost = chain.cost if chain is not None else 0.0
        return base + chain_cost + self.costs.serialization

    def execute(self, kind: str, message, src: str) -> ExecutionOutcome:
        """Apply one data-plane message to the Master state.

        Deterministic given (kind, message, src) and the injected clock /
        event-id source. Publishes DA traffic via the transport; returns
        the events for the caller to commit (after charging their cost).
        """
        if kind == "update":
            return self._execute_update(message, src)
        if kind == "write":
            return self._execute_write(message, src)
        if kind == "write_result":
            return self._execute_write_result(message, src)
        raise ValueError(f"unknown execution kind {kind!r}")

    def commit_events(self, events: list) -> None:
        """Persist and publish events produced by an execution."""
        for event in events:
            self.storage.append(event)
            self.stats["events"] += 1
            self.ae_server.publish(event)

    # -- update flow (paper Figure 3) -----------------------------------------

    def _execute_update(self, message: ItemUpdate, src: str) -> ExecutionOutcome:
        self.stats["updates"] += 1
        item = self.items.ensure(message.item_id)
        if src != self.address:
            self.item_frontend.setdefault(message.item_id, src)
        ctx = HandlerContext(
            item_id=message.item_id,
            now=self.clock(),
            event_id_source=self.event_id_source,
            is_write=False,
            previous=item.value,
        )
        chain = self.chain_for(message.item_id)
        if chain is not None:
            result = chain.process(message.value, ctx)
            value, events = result.value, result.events
        else:
            value, events = message.value, []
        item.value = value
        self.da_server.publish(message.item_id, value)
        return ExecutionOutcome(kind="update", events=events)

    # -- write flow (paper Figure 4) --------------------------------------------

    def _execute_write(self, message: WriteValue, src: str) -> ExecutionOutcome:
        self.stats["writes"] += 1
        item = self.items.try_get(message.item_id)
        ctx = HandlerContext(
            item_id=message.item_id,
            now=self.clock(),
            event_id_source=self.event_id_source,
            is_write=True,
            operator=message.operator,
            previous=item.value if item is not None else None,
        )
        if item is None or not item.writable:
            reason = (
                f"unknown item {message.item_id!r}"
                if item is None
                else f"item {message.item_id!r} is not writable"
            )
            self._send(
                message.reply_to,
                WriteResult(
                    item_id=message.item_id,
                    op_id=message.op_id,
                    success=False,
                    reason=reason,
                ),
            )
            return ExecutionOutcome(kind="write", blocked=True)

        value = DataValue(message.value, Quality.GOOD, ctx.now)
        chain = self.chain_for(message.item_id)
        events: list = []
        if chain is not None:
            result = chain.process(value, ctx)
            events = result.events
            if result.blocked:
                # The Block handler denied the write: the operator gets a
                # failed WriteResult over DA *and* the reason as an event
                # over AE (paper §II-B-b).
                self.stats["blocked_writes"] += 1
                self._send(
                    message.reply_to,
                    WriteResult(
                        item_id=message.item_id,
                        op_id=message.op_id,
                        success=False,
                        reason=result.block_reason,
                    ),
                )
                return ExecutionOutcome(kind="write", events=events, blocked=True)
            value = result.value

        frontend = self.item_frontend.get(message.item_id)
        if frontend is None:
            self._send(
                message.reply_to,
                WriteResult(
                    item_id=message.item_id,
                    op_id=message.op_id,
                    success=False,
                    reason=f"no frontend owns item {message.item_id!r}",
                ),
            )
            return ExecutionOutcome(kind="write", events=events, blocked=True)

        master_op = self.next_op_id()
        self.pending_writes[master_op] = (
            message.reply_to,
            message.op_id,
            message.item_id,
            message.operator,
        )
        self._send(
            frontend,
            WriteValue(
                item_id=message.item_id,
                value=message.value,
                op_id=master_op,
                reply_to=self.address,
                operator=message.operator,
            ),
        )
        if self.write_timeout is not None and self.workers > 0:
            self.sim.defer(self.write_timeout, self._local_write_timeout, master_op)
        return ExecutionOutcome(
            kind="write",
            events=events,
            forwarded=True,
            master_op=master_op,
            item_id=message.item_id,
        )

    def _local_write_timeout(self, master_op: str) -> None:
        """Unreplicated fallback when a Frontend never answers a write.

        The replicated deployment disables this (workers == 0) and uses
        the distributed logical-timeout protocol instead (§IV-D).
        """
        pending = self.pending_writes.pop(master_op, None)
        if pending is None:
            return
        reply_to, origin_op, item_id, _operator = pending
        self.stats["timeouts"] += 1
        self._send(
            reply_to,
            WriteResult(
                item_id=item_id,
                op_id=origin_op,
                success=False,
                reason="write timed out waiting for the frontend",
            ),
        )

    def _execute_write_result(self, message: WriteResult, src: str) -> ExecutionOutcome:
        pending = self.pending_writes.pop(message.op_id, None)
        if pending is None:
            return ExecutionOutcome(kind="write_result")
        self.stats["write_results"] += 1
        reply_to, origin_op, item_id, operator = pending
        events: list = []
        if not message.success or self.audit_writes:
            ctx = HandlerContext(
                item_id=item_id,
                now=self.clock(),
                event_id_source=self.event_id_source,
                is_write=True,
                operator=operator,
            )
            events.append(
                ctx.make_event(
                    event_type="write-completed" if message.success else "write-failed",
                    severity=Severity.INFO if message.success else Severity.WARNING,
                    value=None,
                    message=(
                        f"write by {operator!r} "
                        + ("succeeded" if message.success else f"failed: {message.reason}")
                    ),
                )
            )
        self._send(
            reply_to,
            WriteResult(
                item_id=item_id,
                op_id=origin_op,
                success=message.success,
                reason=message.reason,
            ),
        )
        return ExecutionOutcome(kind="write_result", events=events)

    # ------------------------------------------------------------------
    # item migration (shard splits)
    # ------------------------------------------------------------------

    def export_items(self, item_ids, detach: bool = True) -> tuple:
        """Export the state of ``item_ids`` for migration to another group.

        Returns a canonical bundle: the items (value + writable flag),
        their owning-frontend entries, and their slice of the event log
        in commit order. ``detach=True`` removes all of it from this
        Master, so after the shard map switches ownership the history is
        held exactly once. Deterministic: driven through the ordered
        path, every replica exports the identical bundle.
        """
        wanted = set(item_ids)
        items = tuple(
            (item.item_id, item.value, item.writable)
            for item in self.items
            if item.item_id in wanted
        )
        ownership = tuple(
            sorted(
                (item_id, frontend)
                for item_id, frontend in self.item_frontend.items()
                if item_id in wanted
            )
        )
        events = tuple(
            event for event in self.storage.to_tuple() if event.item_id in wanted
        )
        if detach:
            for item_id, _value, _writable in items:
                self.items.remove(item_id)
            for item_id, _frontend in ownership:
                self.item_frontend.pop(item_id, None)
            if events:
                kept = [
                    event
                    for event in self.storage.to_tuple()
                    if event.item_id not in wanted
                ]
                self.storage.restore(kept, total_written=self.storage.total_written)
        return (items, ownership, events)

    def install_items(self, bundle: tuple) -> None:
        """Install an :meth:`export_items` bundle into this Master.

        Items this Master already re-created from post-switch traffic
        keep their live value (it is fresher than the migrated one);
        the import supplies the writable flag, the frontend ownership
        and the migrated event history either way.
        """
        items, ownership, events = bundle
        for item_id, value, writable in items:
            item = self.items.try_get(item_id)
            if item is None:
                item = self.items.ensure(item_id)
                item.value = value
            item.writable = writable
        for item_id, frontend in ownership:
            self.item_frontend[item_id] = frontend
        for event in events:
            self.storage.append(event)

    # ------------------------------------------------------------------
    # state (snapshots for the replicated deployment)
    # ------------------------------------------------------------------

    def state_tuple(self) -> tuple:
        """Canonical full state, for snapshots and divergence checks."""
        return (
            tuple(
                (item.item_id, item.value, item.writable) for item in self.items
            ),
            tuple(sorted(self.item_frontend.items())),
            self.storage.to_tuple(),
            self.storage.total_written,
            tuple(sorted(self.pending_writes.items())),
            self._op_counter,
            self._event_counter,
            tuple(
                (item_id, chain.state()) for item_id, chain in sorted(self.chains.items())
            ),
        )

    def install_state(self, state: tuple) -> None:
        """Restore from :meth:`state_tuple` output."""
        (
            items,
            item_frontend,
            events,
            total_written,
            pending,
            op_counter,
            event_counter,
            chain_states,
        ) = state
        self.items = ItemRegistry()
        for item_id, value, writable in items:
            item = self.items.ensure(item_id)
            item.value = value
            item.writable = writable
        self.item_frontend = dict(item_frontend)
        self.storage.restore(list(events), total_written=total_written)
        self.pending_writes = dict(pending)
        self._op_counter = op_counter
        self._event_counter = event_counter
        chains = dict(chain_states)
        for item_id, chain in self.chains.items():
            if item_id in chains:
                chain.restore(chains[item_id])
