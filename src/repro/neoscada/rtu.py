"""Remote Terminal Units: field devices exposing registers over Modbus.

An RTU "aggregates data from sensors located in the field, and executes
commands in the actuators" (paper §I). Here a seeded field-process model
plays the sensors/actuators, stepped periodically; the register map is
served to Frontends through the Modbus-style protocol.
"""

from __future__ import annotations

from repro.neoscada.field.process import FieldProcess
from repro.neoscada.protocols.modbus import (
    ILLEGAL_ADDRESS,
    ILLEGAL_VALUE,
    ExceptionReply,
    ReadRegisters,
    ReadReply,
    WriteRegister,
    WriteReply,
    check_register_value,
)
from repro.net.network import Network
from repro.sim.kernel import Simulator


class RTU:
    """One remote terminal unit."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        process: FieldProcess | None = None,
        step_interval: float = 0.5,
        writable_registers: tuple = (),
    ) -> None:
        self.sim = sim
        self.address = address
        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_message)
        self.process_model = process
        self.step_interval = step_interval
        self.writable_registers = set(writable_registers)
        self.registers: dict[int, int] = {}
        self._rng = sim.rng.stream(f"rtu.{address}")
        self.stats = {"reads": 0, "writes": 0, "errors": 0}
        if process is not None:
            self.registers.update(process.initial_registers())
            sim.process(self._stepper(), name=f"rtu-step:{address}")

    # -- physics -----------------------------------------------------------

    def _stepper(self):
        while True:
            yield self.sim.timeout(self.step_interval)
            updates = self.process_model.step(
                self.step_interval, self._rng, self.registers
            )
            self.registers.update(updates)

    def set_register(self, register: int, value: int) -> None:
        """Directly set a register (tests and manual scenarios)."""
        self.registers[register] = value

    # -- Modbus server --------------------------------------------------------

    def _on_message(self, message, src: str) -> None:
        if isinstance(message, ReadRegisters):
            self._handle_read(message)
        elif isinstance(message, WriteRegister):
            self._handle_write(message)

    def _handle_read(self, message: ReadRegisters) -> None:
        self.stats["reads"] += 1
        if message.count < 1:
            self._error(message, ILLEGAL_VALUE)
            return
        missing = [
            r
            for r in range(message.start, message.start + message.count)
            if r not in self.registers
        ]
        if missing:
            self._error(message, ILLEGAL_ADDRESS)
            return
        values = tuple(
            self.registers[r]
            for r in range(message.start, message.start + message.count)
        )
        self.endpoint.send(
            message.reply_to,
            ReadReply(req_id=message.req_id, start=message.start, values=values),
        )

    def _handle_write(self, message: WriteRegister) -> None:
        self.stats["writes"] += 1
        if message.register not in self.registers:
            self._error(message, ILLEGAL_ADDRESS)
            return
        if message.register not in self.writable_registers:
            self._error(message, ILLEGAL_ADDRESS)
            return
        if not check_register_value(message.value):
            self._error(message, ILLEGAL_VALUE)
            return
        self.registers[message.register] = message.value
        if self.process_model is not None:
            self.process_model.on_write(message.register, message.value, self.registers)
        self.endpoint.send(
            message.reply_to,
            WriteReply(
                req_id=message.req_id, register=message.register, value=message.value
            ),
        )

    def _error(self, message, code: int) -> None:
        self.stats["errors"] += 1
        self.endpoint.send(
            message.reply_to, ExceptionReply(req_id=message.req_id, code=code)
        )
