"""The Frontend: protocol translator between RTUs and the SCADA Master.

A Frontend owns *source* items mapped to RTU registers, polls the RTUs
over the Modbus-style protocol, publishes changed values as ItemUpdates
to its DA subscribers, and translates WriteValue operations into
register writes (paper Figure 2).

For workload generation the paper "simplified this experiment by
removing the RTUs, as the Frontend generate[s] the messages" — the
:meth:`inject_update` method provides exactly that path.
"""

from __future__ import annotations

from repro.neoscada.da.server import DAServer
from repro.neoscada.items import ItemRegistry
from repro.neoscada.messages import WriteResult, WriteValue
from repro.neoscada.protocols.iec104 import Iec104Client
from repro.neoscada.protocols.modbus import (
    ExceptionReply,
    ModbusClient,
    ReadReply,
    WriteReply,
    check_register_value,
)
from repro.neoscada.values import DataValue, Quality
from repro.net.network import Network
from repro.sim.kernel import Simulator


class Frontend:
    """One protocol-translating Frontend."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        poll_interval: float = 0.5,
        write_timeout: float = 2.0,
    ) -> None:
        self.sim = sim
        self.address = address
        self.poll_interval = poll_interval
        self.write_timeout = write_timeout

        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_message)

        self.items = ItemRegistry()
        #: item_id -> (rtu_address, register); items without a mapping are
        #: workload-injected only.
        self.mapping: dict[str, tuple] = {}
        self._reverse: dict[tuple, str] = {}

        self.da_server = DAServer(
            self.endpoint.send,
            on_write=self._on_write,
            browse_source=lambda: [
                (item.item_id, item.writable) for item in self.items
            ],
            on_subscribe=self._on_subscribe,
        )
        self.modbus = ModbusClient(address, self.endpoint.send)
        self.iec104 = Iec104Client(address, self.endpoint.send)
        self.iec104.on_spontaneous = self._on_spontaneous
        #: item_id -> (rtu_address, information object address).
        self.iec104_mapping: dict[str, tuple] = {}
        self._iec104_reverse: dict[tuple, str] = {}
        self.stats = {"published": 0, "writes": 0, "write_failures": 0, "polls": 0}
        self._started = False

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def add_item(
        self,
        item_id: str,
        rtu: str | None = None,
        register: int | None = None,
        writable: bool = False,
        initial=None,
    ):
        """Declare an item, optionally backed by an RTU register."""
        item = self.items.register(item_id, initial=initial, writable=writable)
        if rtu is not None:
            if register is None:
                raise ValueError("an RTU-backed item needs a register number")
            self.mapping[item_id] = (rtu, register)
            self._reverse[(rtu, register)] = item_id
        return item

    def add_iec104_item(
        self,
        item_id: str,
        rtu: str,
        ioa: int,
        writable: bool = False,
        initial=None,
    ):
        """Declare an item backed by an IEC-104 information object.

        Unlike Modbus items these are *not* polled: the substation pushes
        spontaneous updates, and the frontend interrogates once at start.
        """
        item = self.items.register(item_id, initial=initial, writable=writable)
        self.iec104_mapping[item_id] = (rtu, ioa)
        self._iec104_reverse[(rtu, ioa)] = item_id
        return item

    def start(self) -> None:
        """Start the RTU polling loop and the IEC-104 sessions."""
        if self._started:
            return
        self._started = True
        if self.mapping:
            self.sim.process(self._poll_loop(), name=f"frontend-poll:{self.address}")
        for rtu in {rtu for rtu, _ioa in self.iec104_mapping.values()}:
            self.iec104.start_data_transfer(rtu)
            self.iec104.interrogate(rtu, self._make_interrogation_handler(rtu))

    # ------------------------------------------------------------------
    # IEC-104 (RTU pushes, Frontend translates)
    # ------------------------------------------------------------------

    def _make_interrogation_handler(self, rtu: str):
        def on_reply(reply) -> None:
            for ioa, value, _timestamp in reply.points:
                item_id = self._iec104_reverse.get((rtu, ioa))
                if item_id is not None:
                    self._publish(item_id, value)

        return on_reply

    def _on_spontaneous(self, rtu: str, update) -> None:
        item_id = self._iec104_reverse.get((rtu, update.ioa))
        if item_id is None:
            return
        item = self.items.get(item_id)
        if item.value.value != update.value or not item.value.is_good:
            self._publish(item_id, update.value)

    # ------------------------------------------------------------------
    # polling (RTU -> Frontend -> subscribers)
    # ------------------------------------------------------------------

    def _poll_loop(self):
        while True:
            yield self.sim.timeout(self.poll_interval)
            self.stats["polls"] += 1
            tracer = self.sim.tracer
            if tracer is not None and tracer.enabled:
                # One marker per poll round: the intrusion detector
                # learns the frontend's cadence from these.
                tracer.point(
                    "rtu.poll",
                    f"poll:{self.address}",
                    process=self.address,
                    round=self.stats["polls"],
                )
            for rtu, runs in self._register_runs().items():
                for start, count in runs:
                    self.modbus.read(
                        rtu, start, count, self._make_read_handler(rtu, start)
                    )

    def _register_runs(self) -> dict:
        """Contiguous register runs to poll, grouped per RTU."""
        per_rtu: dict[str, list] = {}
        for rtu, register in self.mapping.values():
            per_rtu.setdefault(rtu, []).append(register)
        runs: dict[str, list] = {}
        for rtu, registers in per_rtu.items():
            registers.sort()
            grouped = []
            start = prev = registers[0]
            for register in registers[1:]:
                if register == prev + 1:
                    prev = register
                    continue
                grouped.append((start, prev - start + 1))
                start = prev = register
            grouped.append((start, prev - start + 1))
            runs[rtu] = grouped
        return runs

    def _make_read_handler(self, rtu: str, start: int):
        def on_reply(reply) -> None:
            if isinstance(reply, ExceptionReply):
                return
            assert isinstance(reply, ReadReply)
            for offset, raw in enumerate(reply.values):
                item_id = self._reverse.get((rtu, start + offset))
                if item_id is None:
                    continue
                item = self.items.get(item_id)
                if item.value.value != raw or not item.value.is_good:
                    self._publish(item_id, raw)

        return on_reply

    def _publish(self, item_id: str, raw) -> None:
        value = DataValue(raw, Quality.GOOD, self.sim.now)
        self.items.update(item_id, value)
        self.stats["published"] += 1
        self.da_server.publish(item_id, value)

    def inject_update(self, item_id: str, raw) -> None:
        """Produce an update without an RTU (the paper's workload path)."""
        if item_id not in self.items:
            self.items.register(item_id)
        self._publish(item_id, raw)

    # ------------------------------------------------------------------
    # writes (Master -> Frontend -> RTU)
    # ------------------------------------------------------------------

    def _on_write(self, message: WriteValue, src: str) -> None:
        self.stats["writes"] += 1
        item = self.items.try_get(message.item_id)
        if item is None or not item.writable:
            self._write_failed(
                message,
                f"unknown item {message.item_id!r}"
                if item is None
                else f"item {message.item_id!r} is not writable",
            )
            return
        iec104_mapping = self.iec104_mapping.get(message.item_id)
        if iec104_mapping is not None:
            self._write_via_iec104(message, iec104_mapping)
            return
        mapping = self.mapping.get(message.item_id)
        if mapping is None:
            # Injected (RTU-less) item: apply locally and confirm — this is
            # the write path of the paper's RTU-less evaluation setup.
            self._publish(message.item_id, message.value)
            self.endpoint.send(
                message.reply_to,
                WriteResult(
                    item_id=message.item_id,
                    op_id=message.op_id,
                    success=True,
                ),
            )
            return
        if not check_register_value(message.value):
            self._write_failed(message, f"value {message.value!r} does not fit a register")
            return
        rtu, register = mapping
        done = {"answered": False}

        def on_reply(reply) -> None:
            if done["answered"]:
                return
            done["answered"] = True
            if isinstance(reply, WriteReply):
                self._publish(message.item_id, reply.value)
                self.endpoint.send(
                    message.reply_to,
                    WriteResult(
                        item_id=message.item_id, op_id=message.op_id, success=True
                    ),
                )
            else:
                self._write_failed(message, f"modbus exception {reply.code}")

        def on_timeout() -> None:
            if done["answered"]:
                return
            done["answered"] = True
            self._write_failed(message, "RTU did not answer")

        self.modbus.write(rtu, register, message.value, on_reply)
        self.sim.defer(self.write_timeout, on_timeout)

    def _write_via_iec104(self, message: WriteValue, mapping: tuple) -> None:
        rtu, ioa = mapping
        if not check_register_value(message.value):
            self._write_failed(
                message, f"value {message.value!r} does not fit an information object"
            )
            return
        done = {"answered": False}

        def on_confirm(confirm) -> None:
            if done["answered"]:
                return
            done["answered"] = True
            if confirm.ok:
                self._publish(message.item_id, message.value)
                self.endpoint.send(
                    message.reply_to,
                    WriteResult(
                        item_id=message.item_id, op_id=message.op_id, success=True
                    ),
                )
            else:
                self._write_failed(message, confirm.reason)

        def on_timeout() -> None:
            if done["answered"]:
                return
            done["answered"] = True
            self._write_failed(message, "substation did not confirm the command")

        self.iec104.command(rtu, ioa, message.value, on_confirm)
        self.sim.defer(self.write_timeout, on_timeout)

    def _write_failed(self, message: WriteValue, reason: str) -> None:
        self.stats["write_failures"] += 1
        self.endpoint.send(
            message.reply_to,
            WriteResult(
                item_id=message.item_id,
                op_id=message.op_id,
                success=False,
                reason=reason,
            ),
        )

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------

    def _on_subscribe(self, subscriber: str, item_id: str) -> None:
        """Send current values to a new subscriber (initial sync)."""
        if item_id == "*":
            for item in self.items:
                if item.value.value is not None:
                    self.da_server.send_to(subscriber, item.item_id, item.value)
        else:
            item = self.items.try_get(item_id)
            if item is not None and item.value.value is not None:
                self.da_server.send_to(subscriber, item_id, item.value)

    def _on_message(self, message, src: str) -> None:
        if self.da_server.dispatch(message, src):
            return
        if self.modbus.dispatch(message, src):
            return
        if self.iec104.dispatch(message, src):
            return
