"""A medium-voltage feeder model for power-grid scenarios.

The paper motivates BFT SCADA with power-grid deployments (its workload
was validated against a country-scale electrical utility); this model
gives the examples and tests a realistic feeder: voltage and current
readings that fluctuate with load, plus a circuit-breaker actuator that
drops the feeder when opened.

Registers
---------
0: voltage in decivolts (e.g. 2304 = 230.4 V after a ×0.1 Scale handler)
1: current in deciamps
2: active power in watts (derived)
3: breaker position (0 = open, 1 = closed) — writable actuator
"""

from __future__ import annotations

import math
import random

from repro.neoscada.field.process import FieldProcess, clamp_register

VOLTAGE = 0
CURRENT = 1
POWER = 2
BREAKER = 3


class PowerFeeder(FieldProcess):
    """One feeder with daily-load shape, noise and a breaker."""

    def __init__(
        self,
        nominal_voltage: float = 230.0,
        base_current: float = 40.0,
        load_swing: float = 0.3,
        noise: float = 0.01,
        day_length: float = 120.0,
    ) -> None:
        self.nominal_voltage = nominal_voltage
        self.base_current = base_current
        self.load_swing = load_swing
        self.noise = noise
        self.day_length = day_length
        self._elapsed = 0.0

    def initial_registers(self) -> dict:
        return {
            VOLTAGE: clamp_register(self.nominal_voltage * 10),
            CURRENT: clamp_register(self.base_current * 10),
            POWER: clamp_register(self.nominal_voltage * self.base_current),
            BREAKER: 1,
        }

    def step(self, dt: float, rng: random.Random, registers: dict) -> dict:
        self._elapsed += dt
        if registers.get(BREAKER, 1) == 0:
            return {VOLTAGE: 0, CURRENT: 0, POWER: 0}
        phase = 2 * math.pi * self._elapsed / self.day_length
        load_factor = 1.0 + self.load_swing * math.sin(phase)
        jitter = 1.0 + rng.gauss(0.0, self.noise)
        current = max(0.0, self.base_current * load_factor * jitter)
        # Voltage sags slightly under load.
        voltage = self.nominal_voltage * (1.0 - 0.02 * (load_factor - 1.0)) * (
            1.0 + rng.gauss(0.0, self.noise / 4)
        )
        return {
            VOLTAGE: clamp_register(voltage * 10),
            CURRENT: clamp_register(current * 10),
            POWER: clamp_register(voltage * current),
        }

    def on_write(self, register: int, value: int, registers: dict) -> None:
        if register == BREAKER and value == 1 and registers.get(BREAKER) != 1:
            # Re-closing the breaker restores readings on the next step.
            registers[VOLTAGE] = clamp_register(self.nominal_voltage * 10)
