"""Field process models driving RTU registers."""

from repro.neoscada.field.process import FieldProcess, clamp_register
from repro.neoscada.field.powergrid import PowerFeeder
from repro.neoscada.field.watertank import WaterTank

__all__ = ["FieldProcess", "PowerFeeder", "WaterTank", "clamp_register"]
