"""Field process models: the physics behind the RTU registers.

A :class:`FieldProcess` evolves a set of register values over time and
reacts to actuator writes. RTUs step their process periodically and
expose the resulting registers over Modbus. Models must draw randomness
only from the RNG they are given, so runs stay reproducible.
"""

from __future__ import annotations

import random


class FieldProcess:
    """Base class for simulated physical processes."""

    def initial_registers(self) -> dict:
        """Register map at time zero: ``{register_number: int_value}``."""
        raise NotImplementedError

    def step(self, dt: float, rng: random.Random, registers: dict) -> dict:
        """Advance the physics by ``dt`` seconds.

        Receives the current register map (including any actuator writes
        applied since the last step) and returns the registers to update.
        """
        raise NotImplementedError

    def on_write(self, register: int, value: int, registers: dict) -> None:
        """Hook invoked when the SCADA side writes an actuator register."""


def clamp_register(value: float) -> int:
    """Round and clamp a model output into the 16-bit register range."""
    return max(0, min(0xFFFF, int(round(value))))
