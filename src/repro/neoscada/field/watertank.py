"""A water-tank model for water-supply scenarios.

Registers
---------
0: level in millimetres
1: inflow in decilitres/second
2: pump state (0 = off, 1 = on) — writable actuator
3: valve opening percent (0–100) — writable actuator
"""

from __future__ import annotations

import random

from repro.neoscada.field.process import FieldProcess, clamp_register

LEVEL = 0
INFLOW = 1
PUMP = 2
VALVE = 3


class WaterTank(FieldProcess):
    """A tank filled by a pump and drained through a valve."""

    def __init__(
        self,
        capacity_mm: float = 5000.0,
        initial_level_mm: float = 2500.0,
        pump_rate_mm_s: float = 25.0,
        drain_rate_mm_s: float = 20.0,
        noise: float = 0.05,
    ) -> None:
        self.capacity_mm = capacity_mm
        self.level = initial_level_mm
        self.pump_rate = pump_rate_mm_s
        self.drain_rate = drain_rate_mm_s
        self.noise = noise

    def initial_registers(self) -> dict:
        return {
            LEVEL: clamp_register(self.level),
            INFLOW: 0,
            PUMP: 1,
            VALVE: 50,
        }

    def step(self, dt: float, rng: random.Random, registers: dict) -> dict:
        pump_on = registers.get(PUMP, 0) == 1
        valve_pct = registers.get(VALVE, 0) / 100.0
        inflow = self.pump_rate * (1.0 + rng.gauss(0.0, self.noise)) if pump_on else 0.0
        outflow = self.drain_rate * valve_pct * (1.0 + rng.gauss(0.0, self.noise))
        self.level = min(self.capacity_mm, max(0.0, self.level + (inflow - outflow) * dt))
        return {
            LEVEL: clamp_register(self.level),
            INFLOW: clamp_register(inflow * 10),
        }
