"""Historical data: NeoSCADA's value-archive subsystem, in miniature.

Eclipse NeoSCADA ships an HD (historical data) module that records item
values at multiple aggregation levels so operators can pull trends. This
module provides that: a :class:`ValueArchive` keeps, per item, a bounded
raw series plus downsampled levels (min/max/mean buckets), and a
:class:`TrendRecorder` wires an archive to a running HMI's value stream.

The archive is a *client-side* (HMI) concern here: recording what the
operator sees introduces no determinism questions for the replicated
Master.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.neoscada.values import DataValue


@dataclass
class TrendBucket:
    """One aggregation bucket of a downsampled series."""

    start: float
    count: int = 0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    total: float = 0.0
    last: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.total += value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Level:
    """One downsampling level for one item."""

    def __init__(self, resolution: float, capacity: int) -> None:
        self.resolution = resolution
        self.capacity = capacity
        self.buckets: deque = deque()

    def record(self, timestamp: float, value: float) -> None:
        start = (timestamp // self.resolution) * self.resolution
        if not self.buckets or self.buckets[-1].start != start:
            if self.buckets and start < self.buckets[-1].start:
                return  # out-of-order stragglers are dropped
            self.buckets.append(TrendBucket(start=start))
            while len(self.buckets) > self.capacity:
                self.buckets.popleft()
        self.buckets[-1].add(value)

    def query(self, start: float, end: float) -> list:
        return [b for b in self.buckets if start <= b.start <= end]


class ValueArchive:
    """Bounded raw + downsampled storage of item value histories.

    Parameters
    ----------
    resolutions:
        Bucket sizes (seconds) of the downsampled levels, smallest first.
    raw_capacity:
        Raw samples retained per item.
    level_capacity:
        Buckets retained per item per level.
    """

    def __init__(
        self,
        resolutions: tuple = (1.0, 10.0, 60.0),
        raw_capacity: int = 10_000,
        level_capacity: int = 1_000,
    ) -> None:
        if not resolutions or any(r <= 0 for r in resolutions):
            raise ValueError("resolutions must be positive")
        if list(resolutions) != sorted(resolutions):
            raise ValueError("resolutions must be ascending")
        self.resolutions = tuple(resolutions)
        self.raw_capacity = raw_capacity
        self.level_capacity = level_capacity
        self._raw: dict[str, deque] = {}
        self._levels: dict[str, dict] = {}
        self.samples_recorded = 0

    def items(self) -> list:
        return sorted(self._raw)

    def record(self, item_id: str, value: DataValue) -> None:
        """Record one sample (non-numeric or bad-quality values skipped)."""
        raw = value.value
        if not value.is_good or isinstance(raw, bool) or not isinstance(raw, (int, float)):
            return
        series = self._raw.get(item_id)
        if series is None:
            series = deque(maxlen=self.raw_capacity)
            self._raw[item_id] = series
            self._levels[item_id] = {
                resolution: _Level(resolution, self.level_capacity)
                for resolution in self.resolutions
            }
        series.append((value.timestamp, float(raw)))
        self.samples_recorded += 1
        for level in self._levels[item_id].values():
            level.record(value.timestamp, float(raw))

    # -- queries --------------------------------------------------------------

    def raw(self, item_id: str, start: float = float("-inf"), end: float = float("inf")) -> list:
        """Raw ``(timestamp, value)`` samples in the window, oldest first."""
        series = self._raw.get(item_id, ())
        return [(t, v) for t, v in series if start <= t <= end]

    def trend(
        self,
        item_id: str,
        resolution: float,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> list:
        """Downsampled :class:`TrendBucket` list for one level."""
        levels = self._levels.get(item_id)
        if levels is None:
            return []
        level = levels.get(resolution)
        if level is None:
            raise KeyError(f"no {resolution}s level (have {self.resolutions})")
        return level.query(start, end)

    def statistics(self, item_id: str) -> dict:
        """Whole-history min/max/mean/last over the raw series."""
        series = self._raw.get(item_id)
        if not series:
            return {"count": 0}
        values = [v for _t, v in series]
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "last": values[-1],
        }


class TrendRecorder:
    """Feeds an HMI's live value stream into a :class:`ValueArchive`.

    Chains with any observer already installed on the HMI.
    """

    def __init__(self, hmi, archive: ValueArchive | None = None) -> None:
        self.hmi = hmi
        self.archive = archive if archive is not None else ValueArchive()
        self._downstream = hmi.on_value_change
        hmi.on_value_change = self._on_value

    def _on_value(self, item_id: str, value: DataValue) -> None:
        self.archive.record(item_id, value)
        if self._downstream is not None:
            self._downstream(item_id, value)

    def detach(self) -> None:
        self.hmi.on_value_change = self._downstream
