"""Items: the named data points of a SCADA deployment.

An item represents one sensor or actuator value ("Item i" in the paper's
Figure 2). Frontends own *source* items backed by RTU registers; the
SCADA Master holds *mirror* items that represent them; the HMI maps the
Master's items again. All three layers share this registry type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.neoscada.values import DataValue, Quality


@dataclass
class Item:
    """One named data point and its latest value."""

    item_id: str
    value: DataValue = field(
        default_factory=lambda: DataValue(None, Quality.UNCERTAIN, 0.0)
    )
    #: Free-form metadata (units, description, register mapping...).
    attributes: dict = field(default_factory=dict)
    #: Whether write operations may target this item (actuators).
    writable: bool = False


class ItemRegistry:
    """An ordered collection of items, keyed by id."""

    def __init__(self) -> None:
        self._items: dict[str, Item] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    def __iter__(self):
        return iter(self._items.values())

    def ids(self) -> list:
        return list(self._items)

    def register(
        self,
        item_id: str,
        initial=None,
        writable: bool = False,
        attributes: dict | None = None,
    ) -> Item:
        """Create an item; re-registering an existing id is an error."""
        if item_id in self._items:
            raise ValueError(f"item {item_id!r} already registered")
        value = (
            DataValue(None, Quality.UNCERTAIN, 0.0)
            if initial is None
            else DataValue(initial, Quality.GOOD, 0.0)
        )
        item = Item(
            item_id=item_id,
            value=value,
            attributes=dict(attributes or {}),
            writable=writable,
        )
        self._items[item_id] = item
        return item

    def get(self, item_id: str) -> Item:
        try:
            return self._items[item_id]
        except KeyError:
            raise KeyError(f"unknown item {item_id!r}")

    def try_get(self, item_id: str) -> Item | None:
        return self._items.get(item_id)

    def update(self, item_id: str, value: DataValue) -> Item:
        """Store a new value for an existing item."""
        item = self.get(item_id)
        item.value = value
        return item

    def remove(self, item_id: str) -> None:
        """Drop an item (shard migration); unknown ids are a no-op."""
        self._items.pop(item_id, None)

    def ensure(self, item_id: str) -> Item:
        """Fetch the item, creating a placeholder mirror if unknown.

        Mirror layers (Master, HMI) learn items lazily from updates.
        """
        item = self._items.get(item_id)
        if item is None:
            item = Item(item_id=item_id)
            self._items[item_id] = item
        return item
