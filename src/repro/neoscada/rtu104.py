"""An IEC-104-style substation RTU: event-driven instead of polled.

Where the Modbus :class:`~repro.neoscada.rtu.RTU` waits to be polled,
this controlled station *pushes* spontaneous updates to every connected
controlling station whenever an information object changes by more than
its deadband — the telecontrol pattern of real power-grid substations.
"""

from __future__ import annotations

from repro.neoscada.field.process import FieldProcess
from repro.neoscada.protocols.iec104 import (
    Command,
    CommandConfirm,
    GeneralInterrogation,
    InterrogationReply,
    SpontaneousUpdate,
    StartDataTransfer,
)
from repro.net.network import Network
from repro.sim.kernel import Simulator


class Iec104RTU:
    """One controlled station speaking the simplified IEC-104 protocol.

    Parameters
    ----------
    process:
        Field model whose registers become the information objects
        (register number = information object address).
    deadband:
        Minimum absolute change that triggers a spontaneous report.
    writable_ioas:
        Information objects that accept commands (actuators).
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        process: FieldProcess | None = None,
        step_interval: float = 0.5,
        writable_ioas: tuple = (),
        deadband: int = 0,
    ) -> None:
        self.sim = sim
        self.address = address
        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_message)
        self.process_model = process
        self.step_interval = step_interval
        self.writable_ioas = set(writable_ioas)
        self.deadband = deadband
        self.points: dict[int, int] = {}
        self._published: dict[int, int] = {}
        self._subscribers: list = []
        self._rng = sim.rng.stream(f"rtu104.{address}")
        self.stats = {"spontaneous": 0, "interrogations": 0, "commands": 0, "rejected": 0}
        if process is not None:
            self.points.update(process.initial_registers())
            sim.process(self._stepper(), name=f"rtu104-step:{address}")

    def set_point(self, ioa: int, value: int) -> None:
        """Directly set an information object (tests, manual scenarios)."""
        self.points[ioa] = value
        self._report_changes()

    # -- physics ---------------------------------------------------------------

    def _stepper(self):
        while True:
            yield self.sim.timeout(self.step_interval)
            updates = self.process_model.step(self.step_interval, self._rng, self.points)
            self.points.update(updates)
            self._report_changes()

    def _report_changes(self) -> None:
        for ioa, value in self.points.items():
            previous = self._published.get(ioa)
            if previous is not None and abs(value - previous) <= self.deadband:
                continue
            self._published[ioa] = value
            update = SpontaneousUpdate(ioa=ioa, value=value, timestamp=self.sim.now)
            for subscriber in self._subscribers:
                self.stats["spontaneous"] += 1
                self.endpoint.send(subscriber, update)

    # -- protocol server ----------------------------------------------------------

    def _on_message(self, message, src: str) -> None:
        if isinstance(message, StartDataTransfer):
            if message.reply_to not in self._subscribers:
                self._subscribers.append(message.reply_to)
            return
        if isinstance(message, GeneralInterrogation):
            self.stats["interrogations"] += 1
            points = tuple(
                (ioa, value, self.sim.now) for ioa, value in sorted(self.points.items())
            )
            self.endpoint.send(
                message.reply_to,
                InterrogationReply(req_id=message.req_id, points=points),
            )
            return
        if isinstance(message, Command):
            self._handle_command(message)

    def _handle_command(self, message: Command) -> None:
        self.stats["commands"] += 1
        if message.ioa not in self.points or message.ioa not in self.writable_ioas:
            self.stats["rejected"] += 1
            self.endpoint.send(
                message.reply_to,
                CommandConfirm(
                    req_id=message.req_id,
                    ioa=message.ioa,
                    ok=False,
                    reason=f"object {message.ioa} is not commandable",
                ),
            )
            return
        self.points[message.ioa] = message.value
        if self.process_model is not None:
            self.process_model.on_write(message.ioa, message.value, self.points)
        self.endpoint.send(
            message.reply_to,
            CommandConfirm(req_id=message.req_id, ioa=message.ioa, ok=True),
        )
        self._report_changes()
