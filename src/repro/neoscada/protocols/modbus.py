"""A simplified Modbus-TCP-style register protocol.

NeoSCADA natively speaks Modbus TCP/RTU to field devices (paper §II);
this module provides the equivalent for the simulated RTUs: 16-bit
holding registers, read-multiple and write-single function codes, and
exception replies. Values outside the register range raise exceptions
exactly like a real slave would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire import wire_type

#: Inclusive bounds of a 16-bit holding register.
REGISTER_MIN = 0
REGISTER_MAX = 0xFFFF

# Exception codes (subset of the Modbus spec).
ILLEGAL_ADDRESS = 2
ILLEGAL_VALUE = 3


@wire_type(70)
@dataclass(frozen=True)
class ReadRegisters:
    """Function 0x03: read ``count`` holding registers from ``start``."""

    req_id: int
    reply_to: str
    start: int
    count: int


@wire_type(71)
@dataclass(frozen=True)
class ReadReply:
    req_id: int
    start: int
    values: tuple


@wire_type(72)
@dataclass(frozen=True)
class WriteRegister:
    """Function 0x06: write a single holding register."""

    req_id: int
    reply_to: str
    register: int
    value: int


@wire_type(73)
@dataclass(frozen=True)
class WriteReply:
    req_id: int
    register: int
    value: int


@wire_type(74)
@dataclass(frozen=True)
class ExceptionReply:
    req_id: int
    code: int


def check_register_value(value) -> bool:
    """Whether ``value`` fits a 16-bit holding register."""
    return (
        isinstance(value, int)
        and not isinstance(value, bool)
        and REGISTER_MIN <= value <= REGISTER_MAX
    )


class ModbusClient:
    """Request/reply correlation for a component polling RTUs."""

    def __init__(self, address: str, send) -> None:
        self.address = address
        self._send = send
        self._req_counter = 0
        self._pending: dict[int, object] = {}

    def read(self, rtu: str, start: int, count: int, on_reply) -> int:
        """Read registers; ``on_reply(ReadReply | ExceptionReply)``."""
        self._req_counter += 1
        req_id = self._req_counter
        self._pending[req_id] = on_reply
        self._send(
            rtu,
            ReadRegisters(
                req_id=req_id, reply_to=self.address, start=start, count=count
            ),
        )
        return req_id

    def write(self, rtu: str, register: int, value: int, on_reply) -> int:
        """Write one register; ``on_reply(WriteReply | ExceptionReply)``."""
        self._req_counter += 1
        req_id = self._req_counter
        self._pending[req_id] = on_reply
        self._send(
            rtu,
            WriteRegister(
                req_id=req_id, reply_to=self.address, register=register, value=value
            ),
        )
        return req_id

    def dispatch(self, message, src: str) -> bool:
        if isinstance(message, (ReadReply, WriteReply, ExceptionReply)):
            callback = self._pending.pop(message.req_id, None)
            if callback is not None:
                callback(message)
            return True
        return False
