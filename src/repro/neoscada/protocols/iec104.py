"""A simplified IEC 60870-5-104-style telecontrol protocol.

NeoSCADA is a protocol "construction kit" (Modbus, Siemens S7, ... —
"others can be added", paper §II). This module adds a second field
protocol with a genuinely different interaction model from Modbus
polling: IEC-104 substations *push* changed values spontaneously and
answer general interrogations, and commands are confirmed explicitly.

The simplification keeps the operational semantics (information object
addresses, general interrogation, spontaneous transmission with
deadband, command confirmation) and drops the transport framing
(APCI sequence numbers, test frames).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire import wire_type

#: Cause-of-transmission values (subset of the standard's COT field).
COT_SPONTANEOUS = 3
COT_INTERROGATED = 20
COT_ACTIVATION_CONFIRM = 7


@wire_type(76)
@dataclass(frozen=True)
class StartDataTransfer:
    """STARTDT: the controlling station asks for spontaneous updates."""

    reply_to: str


@wire_type(77)
@dataclass(frozen=True)
class GeneralInterrogation:
    """C_IC: ask for a snapshot of every information object."""

    req_id: int
    reply_to: str


@wire_type(78)
@dataclass(frozen=True)
class InterrogationReply:
    """The snapshot: tuple of ``(ioa, value, timestamp)`` triples."""

    req_id: int
    points: tuple


@wire_type(79)
@dataclass(frozen=True)
class SpontaneousUpdate:
    """M_ME spontaneous measured-value report for one object."""

    ioa: int
    value: int
    timestamp: float
    cot: int = COT_SPONTANEOUS


@wire_type(80)
@dataclass(frozen=True)
class Command:
    """C_SC/C_SE: set an information object (direct-execute)."""

    req_id: int
    reply_to: str
    ioa: int
    value: int


@wire_type(81)
@dataclass(frozen=True)
class CommandConfirm:
    """ACTCON: positive/negative confirmation of a command."""

    req_id: int
    ioa: int
    ok: bool
    reason: str = ""


class Iec104Client:
    """Controlling-station side: correlation + callbacks for one owner."""

    def __init__(self, address: str, send) -> None:
        self.address = address
        self._send = send
        self._req_counter = 0
        self._pending: dict[int, object] = {}
        #: fn(rtu_address, SpontaneousUpdate) for pushed values.
        self.on_spontaneous = None

    def start_data_transfer(self, rtu: str) -> None:
        self._send(rtu, StartDataTransfer(reply_to=self.address))

    def interrogate(self, rtu: str, on_reply) -> int:
        self._req_counter += 1
        self._pending[self._req_counter] = on_reply
        self._send(
            rtu, GeneralInterrogation(req_id=self._req_counter, reply_to=self.address)
        )
        return self._req_counter

    def command(self, rtu: str, ioa: int, value: int, on_confirm) -> int:
        self._req_counter += 1
        self._pending[self._req_counter] = on_confirm
        self._send(
            rtu,
            Command(
                req_id=self._req_counter, reply_to=self.address, ioa=ioa, value=value
            ),
        )
        return self._req_counter

    def dispatch(self, message, src: str) -> bool:
        if isinstance(message, (InterrogationReply, CommandConfirm)):
            callback = self._pending.pop(message.req_id, None)
            if callback is not None:
                callback(message)
            return True
        if isinstance(message, SpontaneousUpdate):
            if self.on_spontaneous is not None:
                self.on_spontaneous(src, message)
            return True
        return False
