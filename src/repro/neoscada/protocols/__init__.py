"""Field protocols (Modbus-style register access)."""

from repro.neoscada.protocols.modbus import (
    ILLEGAL_ADDRESS,
    ILLEGAL_VALUE,
    ExceptionReply,
    ModbusClient,
    ReadRegisters,
    ReadReply,
    WriteRegister,
    WriteReply,
    check_register_value,
)

__all__ = [
    "ExceptionReply",
    "ILLEGAL_ADDRESS",
    "ILLEGAL_VALUE",
    "ModbusClient",
    "ReadRegisters",
    "ReadReply",
    "WriteRegister",
    "WriteReply",
    "check_register_value",
]
