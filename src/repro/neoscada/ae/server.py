"""Alarms & Events server: event fan-out to subscribers."""

from __future__ import annotations

from repro.neoscada.ae.events import EventRecord
from repro.neoscada.da.subscription import SubscriptionManager
from repro.neoscada.messages import EventUpdate, SubscribeEvents, UnsubscribeEvents


class AEServer:
    """Server side of the Alarms & Events interface."""

    def __init__(self, send) -> None:
        self._send = send
        self.subscriptions = SubscriptionManager()
        self.published = 0

    def dispatch(self, message, src: str) -> bool:
        if isinstance(message, SubscribeEvents):
            self.subscriptions.subscribe(message.subscriber, message.item_id)
            return True
        if isinstance(message, UnsubscribeEvents):
            self.subscriptions.unsubscribe(message.subscriber, message.item_id)
            return True
        return False

    def publish(self, event: EventRecord) -> int:
        """Send an EventUpdate to every matching subscriber."""
        update = EventUpdate(event=event)
        count = 0
        for subscriber in self.subscriptions.subscribers_for(event.item_id):
            self._send(subscriber, update)
            count += 1
        self.published += count
        return count
