"""Alarms & Events client: event subscription and reception."""

from __future__ import annotations

from repro.neoscada.messages import EventUpdate, SubscribeEvents, UnsubscribeEvents


class AEClient:
    """Client side of the Alarms & Events interface."""

    def __init__(self, address: str, send, on_event=None) -> None:
        self.address = address
        self._send = send
        self._on_event = on_event
        self.events_received = 0

    def subscribe(self, server: str, item_id: str = "*") -> None:
        self._send(server, SubscribeEvents(subscriber=self.address, item_id=item_id))

    def unsubscribe(self, server: str, item_id: str = "*") -> None:
        self._send(server, UnsubscribeEvents(subscriber=self.address, item_id=item_id))

    def dispatch(self, message, src: str) -> bool:
        if isinstance(message, EventUpdate):
            self.events_received += 1
            if self._on_event is not None:
                self._on_event(message.event, src)
            return True
        return False
