"""Event records for the Alarms & Events subsystem."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.wire import wire_type


@wire_type(62)
class Severity(enum.Enum):
    """Operational severity of an event."""

    INFO = "info"
    WARNING = "warning"
    ALARM = "alarm"
    ERROR = "error"


@wire_type(63)
@dataclass(frozen=True)
class EventRecord:
    """One event, as created by a handler and persisted in storage.

    ``event_id`` must be assigned deterministically by the creator; in
    the replicated Master it derives from the ordering information in
    ContextInfo so that all replicas produce byte-identical records.
    """

    event_id: str
    item_id: str
    event_type: str
    severity: Severity
    value: object
    message: str
    timestamp: float

    def matches(self, item_id: str) -> bool:
        return item_id in ("*", self.item_id)
