"""Alarms & Events (AE) interface: event subscription and notification."""

from repro.neoscada.ae.client import AEClient
from repro.neoscada.ae.events import EventRecord, Severity
from repro.neoscada.ae.server import AEServer

__all__ = ["AEClient", "AEServer", "EventRecord", "Severity"]
