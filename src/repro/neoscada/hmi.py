"""The Human-Machine Interface: the operator's window into the plant.

The HMI subscribes to the SCADA Master's items over DA and to its events
over AE, keeps a live view model of values and alarms, and lets the
operator issue writes and wait synchronously for their outcome (the
paper's Write-value use case). Pointing ``master_address`` at a ProxyHMI
instead of a real Master is all it takes to run against SMaRt-SCADA —
the replication is transparent, as §IV-C requires.
"""

from __future__ import annotations

from collections import deque

from repro.neoscada.ae.client import AEClient
from repro.neoscada.da.client import DAClient
from repro.neoscada.messages import (
    EventQuery,
    EventQueryReply,
    ValueQuery,
    ValueQueryReply,
    WriteResult,
)
from repro.neoscada.values import DataValue
from repro.net.network import Network
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class HMI:
    """One operator workstation."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        address: str,
        master_address: str,
        operator: str = "operator-1",
        event_log_size: int = 10_000,
    ) -> None:
        self.sim = sim
        self.address = address
        self.master_address = master_address
        self.operator = operator

        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(self._on_message)

        self.da = DAClient(address, self.endpoint.send, on_update=self._on_update)
        self.ae = AEClient(address, self.endpoint.send, on_event=self._on_event)

        #: Live view model: item_id -> latest DataValue.
        self.values: dict[str, DataValue] = {}
        #: Recent events, newest last.
        self.events: deque = deque(maxlen=event_log_size)
        #: Optional observers: fn(item_id, value) / fn(event).
        self.on_value_change = None
        self.on_alarm = None

        self.stats = {"updates": 0, "events": 0, "writes": 0, "write_failures": 0}
        self._query_counter = 0
        self._pending_queries: dict[str, Event] = {}
        self._started = False

    def start(self) -> None:
        """Subscribe to everything the Master offers."""
        if self._started:
            return
        self._started = True
        self.da.subscribe(self.master_address, "*")
        self.ae.subscribe(self.master_address, "*")
        self.da.browse(self.master_address)

    # ------------------------------------------------------------------
    # operator actions
    # ------------------------------------------------------------------

    def write(self, item_id: str, value) -> Event:
        """Request an item change; the event triggers with the WriteResult.

        Use from a process: ``result = yield hmi.write("breaker", 0)``.
        """
        self.stats["writes"] += 1
        done = Event(self.sim, name=f"write:{item_id}")
        state = {"span": None}  # filled once da.write assigns the op_id

        def on_result(result: WriteResult) -> None:
            if not result.success:
                self.stats["write_failures"] += 1
            span = state["span"]
            if span is not None and self.sim.tracer is not None:
                self.sim.tracer.end(span, success=result.success)
            done.succeed(result)

        op_id = self.da.write(
            self.master_address,
            item_id,
            value,
            on_result,
            operator=self.operator,
        )
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            state["span"] = tracer.begin(
                "hmi.write",
                f"op:{op_id}",
                process=self.address,
                item=item_id,
                operator=self.operator,
                value=value,
            )
        return done

    def query_events(
        self,
        item_id: str = "*",
        start: float = float("-inf"),
        end: float = float("inf"),
        event_type: str | None = None,
        limit: int | None = 100,
    ) -> Event:
        """Query the Master's event history (read-only).

        The returned event triggers with a list of
        :class:`~repro.neoscada.ae.events.EventRecord`. Use from a
        process: ``events = yield hmi.query_events("feeder.voltage")``.
        """
        self._query_counter += 1
        query_id = f"{self.address}:q{self._query_counter}"
        done = Event(self.sim, name=f"query:{query_id}")
        self._pending_queries[query_id] = done
        self.endpoint.send(
            self.master_address,
            EventQuery(
                query_id=query_id,
                reply_to=self.address,
                item_id=item_id,
                start=start,
                end=end,
                event_type=event_type,
                limit=limit,
            ),
        )
        return done

    def query_value(self, item_id: str) -> Event:
        """Read an item's current value from the Master (read-only).

        Unlike :meth:`value_of` — which answers from the locally cached
        view model — this asks the Master (through the proxy's unordered
        read path in the replicated deployment). The returned event
        triggers with the item's :class:`DataValue`, or ``None`` when the
        Master does not know the item. Use from a process:
        ``value = yield hmi.query_value("feeder.voltage")``.
        """
        self._query_counter += 1
        query_id = f"{self.address}:q{self._query_counter}"
        done = Event(self.sim, name=f"valuequery:{query_id}")
        self._pending_queries[query_id] = done
        self.endpoint.send(
            self.master_address,
            ValueQuery(
                query_id=query_id,
                reply_to=self.address,
                item_id=item_id,
            ),
        )
        return done

    def value_of(self, item_id: str):
        """Latest known raw value of an item (None if never seen)."""
        value = self.values.get(item_id)
        return value.value if value is not None else None

    def alarms(self, item_id: str = "*") -> list:
        """Alarm-severity events currently in the log."""
        return [
            event
            for event in self.events
            if event.matches(item_id) and event.event_type == "alarm"
        ]

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------

    def _on_update(self, message, src: str) -> None:
        self.stats["updates"] += 1
        self.values[message.item_id] = message.value
        if self.on_value_change is not None:
            self.on_value_change(message.item_id, message.value)

    def _on_event(self, event, src: str) -> None:
        self.stats["events"] += 1
        self.events.append(event)
        if self.on_alarm is not None and event.event_type == "alarm":
            self.on_alarm(event)

    def _on_message(self, message, src: str) -> None:
        if isinstance(message, EventQueryReply):
            pending = self._pending_queries.pop(message.query_id, None)
            if pending is not None:
                pending.succeed(list(message.events))
            return
        if isinstance(message, ValueQueryReply):
            pending = self._pending_queries.pop(message.query_id, None)
            if pending is not None:
                pending.succeed(message.value)
            return
        if self.da.dispatch(message, src):
            return
        if self.ae.dispatch(message, src):
            return
