"""Value model: variant values with quality and timestamp.

NeoSCADA items carry a *variant* value plus a quality flag and a source
timestamp; this module defines that triple. Only scalar variants are
allowed (int, float, bool, str, None) — the protocol layer depends on
values being canonically serializable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.wire import wire_type

_SCALARS = (int, float, bool, str, type(None))


@wire_type(50)
class Quality(enum.Enum):
    """Fitness of a value for operational use."""

    GOOD = "good"
    BAD = "bad"
    UNCERTAIN = "uncertain"
    TIMEOUT = "timeout"
    BLOCKED = "blocked"


@wire_type(51)
@dataclass(frozen=True)
class DataValue:
    """One sampled value of an item."""

    value: object
    quality: Quality = Quality.GOOD
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.value, _SCALARS):
            raise TypeError(
                f"item values must be scalars, got {type(self.value).__name__}"
            )

    def with_value(self, value, timestamp: float | None = None) -> "DataValue":
        """Copy with a new raw value (and optionally a new timestamp)."""
        return DataValue(
            value=value,
            quality=self.quality,
            timestamp=self.timestamp if timestamp is None else timestamp,
        )

    def with_quality(self, quality: Quality) -> "DataValue":
        return DataValue(value=self.value, quality=quality, timestamp=self.timestamp)

    @property
    def is_good(self) -> bool:
        return self.quality is Quality.GOOD
