"""Named chaos scenarios reproducing the paper's attack discussion.

Each scenario packages a fault schedule plus any campaign-config
overrides, and states whether the invariants are *expected* to hold.
``expect_violation=True`` scenarios deliberately exceed the ``n ≥ 3f+1``
assumption (more than ``f`` simultaneous Byzantine replicas) to prove
the monitors catch real safety violations — they are the chaos engine's
own regression tests.

Run one with ``python -m repro chaos <name>`` or
:func:`run_scenario`; list them with ``python -m repro chaos --list``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.chaos.adaptive import TriggeredAction
from repro.chaos.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.chaos.schedule import (
    CrashReplica,
    CrashRestart,
    DelayKind,
    DropKind,
    FieldOffline,
    InjectWrites,
    IsolateReplicas,
    KillLeader,
    PartitionNet,
    Rejuvenate,
    Schedule,
    SpoofFrontend,
    SwapByzantine,
)
from repro.heal import HealConfig

#: Overrides for the intact crash-restart drill. The checkpoint interval
#: is deliberately *longer* than the decisions the horizon produces: the
#: peers never checkpoint past the rebooted replica's recovered position,
#: so they still hold the log tail it needs and the reboot can rejoin by
#: WAL replay + partial transfer alone (the invariant the
#: durable-recovery monitor enforces). Once peers checkpoint beyond that
#: point they truncate their logs and a full transfer becomes the only
#: correct answer — that trade-off is the checkpoint-frequency vs
#: log-retention tension, exercised separately in the recovery tests.
_DURABLE_INTACT = {"durability": True, "checkpoint_interval": 40}

#: Overrides for the damaged-disk drills: checkpoints frequent enough
#: that one lands on the victim's disk *before* the crash fault hits it,
#: so digest verification runs against real on-disk state (checkpoint +
#: torn/corrupt WAL tail) rather than an empty device.
_DURABLE_DAMAGED = {"durability": True, "checkpoint_interval": 5}

#: Overrides for the ``pipelined-*`` drills: the same faults as their
#: sequential counterparts, but with the consensus pipeline open — the
#: leader keeps several instances in flight, so crashes and restarts hit
#: a window of undecided cids instead of at most one.
_PIPELINED = {"pipeline_depth": 4}

#: Overrides for the ``heal-evict-*`` drills: the closed self-healing
#: loop under the hardened zero-trust profile — every confirmed
#: Byzantine replica is evicted and replaced, not reimaged (reimaging a
#: swapped compromise would *cure* it, so these drills could never
#: exercise the reconfiguration path).
_HEAL_ZERO_TRUST = {"heal": True, "heal_config": HealConfig.zero_trust()}


@dataclass(frozen=True)
class Scenario:
    """One named fault drill."""

    name: str
    description: str
    build: object  # fn() -> Schedule
    expect_violation: bool = False
    #: CampaignConfig field overrides for this scenario.
    overrides: dict = field(default_factory=dict)

    def schedule(self) -> Schedule:
        return self.build()

    def config(self, base: CampaignConfig | None = None, **extra) -> CampaignConfig:
        base = base if base is not None else CampaignConfig()
        merged = dict(self.overrides)
        merged.update(extra)
        return replace(base, **merged) if merged else base


def _drop_write_value() -> Schedule:
    # §IV-D's drop attack: WriteValue messages to the field vanish; the
    # logical-timeout protocol must fail the writes deterministically.
    return Schedule([
        DropKind(at=1.0, duration=4.0, kind="WriteValue", dst="frontend-0"),
    ])


def _drop_write_result() -> Schedule:
    # The dual attack: the field executes but its WriteResult never
    # returns; the operator must still get a deterministic outcome.
    return Schedule([
        DropKind(at=1.0, duration=4.0, kind="WriteResult", src="frontend-0"),
    ])


def _leader_crash() -> Schedule:
    # Kill the consensus leader mid-campaign while writes are in flight;
    # the synchronization phase must elect a successor and keep going.
    return Schedule([
        KillLeader(at=1.5, duration=3.0),
    ])


def _shard_leader_kills() -> Schedule:
    # Kill the leaders of BOTH groups at the same instant. Each group
    # carries its own f budget, so this is in budget (one fault per
    # group) and every invariant must stay green — the sharded
    # deployment's independence claim, falsified if either group's
    # outage bleeds into the other.
    return Schedule([
        KillLeader(at=1.5, duration=3.0, shard=0),
        KillLeader(at=1.5, duration=3.0, shard=1),
    ])


def _partition_minority() -> Schedule:
    # One replica isolated from everything: the remaining 3 of 4 form a
    # quorum and keep deciding; the returnee state-transfers back in.
    return Schedule([
        IsolateReplicas(at=1.0, duration=3.0, indices=(3,)),
    ])


def _partition_split() -> Schedule:
    # A 2/2 split: no quorum on either side, so consensus stalls — then
    # the heal must restore liveness within the bound.
    return Schedule([
        PartitionNet(at=1.5, duration=2.0, groups=((0, 1), (2, 3))),
    ])


def _silent_replica() -> Schedule:
    # A replica goes mute (crash-like Byzantine) for most of the run.
    return Schedule([
        SwapByzantine(at=1.0, duration=4.0, index=2, behaviour="silent"),
    ])


def _falsifying_replica() -> Schedule:
    # One compromised replica forges field readings. With f=1 its
    # forgeries can never reach the proxies' f+1 push vote, so the HMI
    # keeps showing the truth.
    return Schedule([
        SwapByzantine(at=1.0, duration=4.0, index=1, behaviour="falsifying"),
    ])


def _rejuvenation_under_fire() -> Schedule:
    # Proactive recovery while a WriteResult drop attack is active and
    # writes are in flight: the logical timeout must still unblock the
    # operator and the fresh replica must state-transfer in.
    return Schedule([
        DropKind(at=0.8, duration=4.2, kind="WriteResult", src="frontend-0"),
        Rejuvenate(at=2.0, index=1),
        Rejuvenate(at=4.0, index=2),
    ])


def _rolling_crashes() -> Schedule:
    # Sequential (never simultaneous) crash/recover across the group.
    return Schedule([
        CrashReplica(at=0.8, duration=1.0, index=0),
        CrashReplica(at=2.2, duration=1.0, index=1),
        CrashReplica(at=3.6, duration=1.0, index=2),
    ])


def _crash_restart(disk: str) -> Schedule:
    # Power-cut one replica mid-campaign with the given disk fault and
    # reboot it from whatever the device honestly retained. ``intact``
    # must rejoin by WAL replay + log-tail transfer alone; damaged disks
    # must be caught by digest verification and fall back to the full
    # transfer with no safety violation; ``wiped`` is exactly the
    # rejuvenation path.
    return Schedule([
        CrashRestart(at=1.5, duration=2.0, index=2, disk=disk),
    ])


def _write_injection() -> Schedule:
    # Command injection from a hijacked HMI session: a flood of operator
    # writes over the legitimate replicated path. Safety holds (the
    # values are legal) — only the write *pattern* is anomalous, so this
    # drill exists for the IDS's write-burst detector.
    return Schedule([
        InjectWrites(at=2.0, count=24, interval=0.03),
    ])


def _frontend_spoof() -> Schedule:
    # A rogue endpoint floods forged requests under a real client's
    # identity; every secure channel rejects them, and the per-replica
    # rejection counters climbing in lockstep is the IDS signature.
    return Schedule([
        SpoofFrontend(at=2.0, count=30, interval=0.03),
    ])


def _adaptive_window_partition() -> Schedule:
    # Adaptive adversary: wait until the consensus pipeline window has
    # filled (an instance in flight), then split the group 2/2 so the
    # in-flight window straddles a quorumless partition.
    return Schedule([
        TriggeredAction(
            at=0.3,
            when="pipeline-full",
            action=PartitionNet(duration=1.5, groups=((0, 1), (2, 3))),
        ),
    ])


def _adaptive_transfer_leader_kill() -> Schedule:
    # Adaptive adversary: provoke a state transfer (isolate a replica,
    # then heal it), and the moment the transfer is observed running,
    # kill the leader — the recovering replica loses its catch-up source
    # mid-stream and must survive the concurrent leader change.
    return Schedule([
        IsolateReplicas(at=0.8, duration=1.0, indices=(3,)),
        TriggeredAction(
            at=1.5,
            duration=3.0,
            when="state-transfer-active",
            action=KillLeader(duration=1.5),
        ),
    ])


def _adaptive_warmup_swap() -> Schedule:
    # IDS-aware adversary: hold the compromise until the intrusion
    # detector's warm-up window has just elapsed, then swap a replica to
    # falsifying — no free learning period, the detector must flag it
    # from live windows alone.
    return Schedule([
        TriggeredAction(
            at=0.5,
            when="ids-warmup-done",
            action=SwapByzantine(index=2, behaviour="falsifying", duration=3.0),
        ),
    ])


def _adaptive_overbudget_swap() -> Schedule:
    # DELIBERATELY over budget, adaptively: two armed triggers each
    # holding a long falsifying swap. The static budget check charges
    # each trigger from its arm time to the horizon, so this schedule is
    # rejected without allow_overload — predicate timing cannot sneak
    # past ``n >= 3f+1``. Forced through, the colluding forgeries reach
    # the f+1 push vote and the hmi-truth monitor must catch it.
    return Schedule([
        TriggeredAction(
            at=0.5,
            when="always",
            action=SwapByzantine(index=1, behaviour="falsifying", duration=4.5),
        ),
        TriggeredAction(
            at=0.7,
            when="always",
            action=SwapByzantine(index=2, behaviour="falsifying", duration=4.3),
        ),
    ])


def _overbudget_falsify() -> Schedule:
    # DELIBERATELY over budget: two simultaneous falsifying replicas
    # (f=1) collude — their byte-identical forgeries reach the f+1 push
    # vote and the HMI displays a value the field never produced. The
    # hmi-truth monitor must flag this as a safety violation. Extra
    # network noise rides along so the shrinker has something to strip.
    return Schedule([
        SwapByzantine(at=0.6, duration=4.8, index=1, behaviour="falsifying"),
        SwapByzantine(at=0.8, duration=4.6, index=2, behaviour="falsifying"),
        DelayKind(at=1.0, duration=3.0, kind="WriteMsg", extra=0.002),
        DropKind(at=1.2, duration=2.0, kind="PushMessage", probability=0.1),
        FieldOffline(at=4.4, duration=0.8, frontend=0),
    ])


def _heal_attack(behaviour: str, index: int) -> Schedule:
    # An *unbounded* compromise (no duration): nothing in the schedule
    # ever heals it — only the recovery orchestrator can, by evicting
    # the suspect through a consensus reconfiguration. Equivocation is a
    # leader behaviour, so that drill compromises the initial leader.
    return Schedule([
        SwapByzantine(at=1.2, index=index, behaviour=behaviour),
    ])


def _heal_quorum_guard() -> Schedule:
    # One replica machine is already down when a second goes silent
    # Byzantine: evicting (or reimaging) the suspect would drop the live
    # group to 2 < 2f+1. The orchestrator must refuse — every action on
    # the suspect logged as blocked, escalating to an operator alarm —
    # and the group must recover on its own once the faults heal.
    return Schedule([
        CrashReplica(at=0.8, duration=4.0, index=3),
        SwapByzantine(at=1.2, duration=4.0, index=2, behaviour="silent"),
    ])


def _heal_scenarios() -> tuple:
    drills = []
    for behaviour, index in (
        ("silent", 2),
        ("stuttering", 2),
        ("lying", 2),
        ("falsifying", 2),
        ("equivocating", 0),
    ):
        drills.append(
            Scenario(
                name=f"heal-evict-{behaviour}",
                description=f"SELF-HEAL: permanent {behaviour} compromise; the"
                " orchestrator must evict-and-replace it via reconfiguration",
                build=(lambda b=behaviour, i=index: _heal_attack(b, i)),
                overrides=dict(_HEAL_ZERO_TRUST),
            )
        )
    drills.append(
        Scenario(
            name="heal-benign-leader-kill",
            description="SELF-HEAL negative drill: a benign leader crash and"
            " recovery; the orchestrator must take zero actions",
            build=_leader_crash,
            overrides={"heal": True},
        )
    )
    drills.append(
        Scenario(
            name="heal-quorum-guard",
            description="SELF-HEAL guard drill: a suspect appears while"
            " another replica is down; every action must be refused"
            " (blocked -> alarm), never eroding the 2f+1 quorum",
            build=_heal_quorum_guard,
            # The double fault stalls consensus, which eventually clears
            # the (progress-relative) silence verdict — escalate to the
            # alarm within the window the detector can still corroborate.
            overrides={
                "heal": True,
                "allow_overload": True,
                "heal_config": HealConfig(blocked_alarm_after=3),
            },
        )
    )
    return tuple(drills)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="drop-write-value",
            description="§IV-D drop attack: WriteValue to the field vanishes;"
            " writes must fail deterministically via the logical timeout",
            build=_drop_write_value,
        ),
        Scenario(
            name="drop-write-result",
            description="WriteResult from the field vanishes; the operator"
            " still gets a deterministic outcome",
            build=_drop_write_result,
        ),
        Scenario(
            name="leader-crash",
            description="crash the consensus leader under write load; a"
            " successor must take over",
            build=_leader_crash,
        ),
        Scenario(
            name="shard-leader-kills",
            description="SHARDED: kill the leaders of two groups at the same"
            " instant; each group's own f budget absorbs it, monitors green",
            build=_shard_leader_kills,
            overrides={"shards": 2},
        ),
        Scenario(
            name="partition-minority",
            description="isolate one replica; the majority keeps deciding and"
            " the returnee catches up",
            build=_partition_minority,
        ),
        Scenario(
            name="partition-split",
            description="2/2 split stalls consensus; healing restores"
            " liveness within the bound",
            build=_partition_split,
        ),
        Scenario(
            name="silent-replica",
            description="one replica goes mute for most of the run"
            " (crash-like Byzantine)",
            build=_silent_replica,
        ),
        Scenario(
            name="falsifying-replica",
            description="one compromised replica forges field readings; the"
            " f+1 push vote keeps the HMI truthful",
            build=_falsifying_replica,
        ),
        Scenario(
            name="rejuvenation-under-fire",
            description="proactive recovery while a WriteResult drop attack"
            " is active and writes are in flight",
            build=_rejuvenation_under_fire,
        ),
        Scenario(
            name="rolling-crashes",
            description="sequential crash/recover across the group, never"
            " more than f at once",
            build=_rolling_crashes,
        ),
        Scenario(
            name="crash-restart-intact",
            description="power-cut a replica with a durable disk; it must"
            " rejoin from WAL replay + log-tail transfer, no snapshot",
            build=lambda: _crash_restart("intact"),
            overrides=_DURABLE_INTACT,
        ),
        Scenario(
            name="crash-restart-torn",
            description="crash leaves a torn WAL tail write; digest checks"
            " must catch it and fall back to full transfer",
            build=lambda: _crash_restart("torn"),
            overrides=_DURABLE_DAMAGED,
        ),
        Scenario(
            name="crash-restart-corrupt",
            description="silent bit flip on the durable log; digest checks"
            " must catch it and fall back to full transfer",
            build=lambda: _crash_restart("corrupt"),
            overrides=_DURABLE_DAMAGED,
        ),
        Scenario(
            name="crash-restart-wiped",
            description="total disk loss on crash; recovery must behave"
            " exactly like proactive rejuvenation (full transfer)",
            build=lambda: _crash_restart("wiped"),
            overrides=_DURABLE_DAMAGED,
        ),
        Scenario(
            name="pipelined-leader-crash",
            description="crash the leader with pipeline_depth=4 — a window"
            " of undecided cids must be re-proposed by the successor",
            build=_leader_crash,
            overrides=_PIPELINED,
        ),
        Scenario(
            name="pipelined-crash-restart",
            description="power-cut a durable replica while the consensus"
            " pipeline is open; WAL replay must restore execution order",
            build=lambda: _crash_restart("intact"),
            overrides={**_DURABLE_INTACT, **_PIPELINED},
        ),
        Scenario(
            name="write-injection",
            description="command-injection write burst over the legitimate"
            " path; safety holds, the IDS write-burst detector must flag it",
            build=_write_injection,
        ),
        Scenario(
            name="frontend-spoof",
            description="rogue endpoint floods forged client requests; the"
            " secure channels reject them and the IDS flags the ingress",
            build=_frontend_spoof,
        ),
        Scenario(
            name="adaptive-window-partition",
            description="ADAPTIVE: partition 2/2 the moment the consensus"
            " pipeline window fills; the in-flight instance must survive",
            build=_adaptive_window_partition,
        ),
        Scenario(
            name="adaptive-transfer-leader-kill",
            description="ADAPTIVE: kill the leader the instant a state"
            " transfer is observed running",
            build=_adaptive_transfer_leader_kill,
        ),
        Scenario(
            name="adaptive-warmup-swap",
            description="ADAPTIVE, IDS-aware: swap a replica to falsifying"
            " right after the detector's warm-up window elapses",
            build=_adaptive_warmup_swap,
        ),
        Scenario(
            name="adaptive-overbudget-swap",
            description="ATTACK DRILL (expected safety violation): two armed"
            " triggers exceed the fault budget; rejected without"
            " allow_overload, caught by the monitors when forced",
            build=_adaptive_overbudget_swap,
            expect_violation=True,
            overrides={"allow_overload": True},
        ),
        Scenario(
            name="overbudget-falsify",
            description="ATTACK DRILL (expected safety violation): two"
            " colluding falsifying replicas out-vote the f+1 push quorum",
            build=_overbudget_falsify,
            expect_violation=True,
            overrides={"allow_overload": True},
        ),
        *_heal_scenarios(),
    )
}


def list_scenarios() -> list:
    """All scenarios, library ones first, attack drills last."""
    return sorted(
        SCENARIOS.values(), key=lambda s: (s.expect_violation, s.name)
    )


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def run_scenario(
    name: str,
    seed: int = 0,
    config: CampaignConfig | None = None,
    **overrides,
) -> CampaignReport:
    """Run one named scenario under the given seed."""
    scenario = get_scenario(name)
    cfg = scenario.config(config, seed=seed, **overrides)
    return run_campaign(scenario.schedule(), cfg)
