"""Adaptive adversaries: faults that fire on observed protocol state.

A fixed schedule says *when* a fault happens; an adaptive adversary says
*under which observed condition*. :class:`TriggeredAction` wraps any
ordinary :class:`~repro.chaos.schedule.Action` in a predicate drawn from
the :data:`PREDICATES` registry — "the consensus pipeline window has
filled", "a state transfer just started", "the IDS warm-up window has
elapsed" — and the campaign runner evaluates the armed triggers on the
same deterministic polling grid the invariant monitors use. Firing is
therefore a pure function of the (seeded) simulation state: the same
seed and schedule always fire the same faults at the same instants.

The **fault budget still applies**, twice over:

- statically, a triggered replica fault is charged for its worst case —
  from its arm time to the fault horizon — so two armed permanent
  Byzantine swaps are rejected by ``Schedule.validate_budget`` exactly
  like two overlapping fixed-time swaps;
- at runtime, a trigger whose inner action is a replica fault refuses to
  fire while ``f`` replicas are already faulty (unless the campaign
  opted into overload), so an adaptive schedule can never sneak past the
  ``n >= 3f+1`` assumption through lucky predicate timing.

Predicates observe the system read-only (pipeline occupancy counters,
state-transfer progress, the campaign clock); evaluating one never
schedules events or mutates protocol state.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:
    from repro.chaos.campaign import CampaignContext

from repro.chaos.schedule import Action


def _pipeline_occupancy(replica) -> int:
    return max(replica.next_propose_cid, replica.next_cid) - replica.next_cid


def _live_replicas(ctx: "CampaignContext"):
    return [pm.replica for pm in ctx.system.proxy_masters if pm.replica.active]


def _pred_always(ctx, param, state) -> bool:
    return True


def _pred_after(ctx, param, state) -> bool:
    """True once the campaign clock passes ``param`` seconds."""
    return ctx.sim.now >= float(param if param is not None else 0.0)


def _pred_pipeline_full(ctx, param, state) -> bool:
    """The consensus pipeline window has filled on some replica.

    Checks both the instantaneous occupancy and the monotone
    ``pipeline_occupancy_peak`` counter, because a window that fills and
    drains between two polling ticks would otherwise be unobservable.
    ``param`` overrides the threshold (default: the configured depth).
    """
    for replica in _live_replicas(ctx):
        threshold = (
            int(param) if param is not None else replica.config.pipeline_depth
        )
        if _pipeline_occupancy(replica) >= threshold:
            return True
        if replica.stats["pipeline_occupancy_peak"] >= threshold:
            return True
    return False


def _pred_state_transfer(ctx, param, state) -> bool:
    """A state transfer has started since this trigger was armed.

    Fires on an in-progress transfer observed at a tick, or on the
    monotone install counters moving past their armed baseline (a
    transfer that completes between ticks still counts — the adversary
    watched it happen).
    """
    totals = {}
    for replica in _live_replicas(ctx):
        st = replica.state_transfer
        if st.in_progress:
            return True
        totals[replica.address] = st.full_installs + st.partial_installs
    baseline = state.get("st_baseline")
    if baseline is None:
        state["st_baseline"] = totals
        return False
    for address, total in totals.items():
        if total > baseline.get(address, 0):
            return True
    return False


def _pred_ids_warmup_done(ctx, param, state) -> bool:
    """The intrusion detector's warm-up window has elapsed.

    Reads the warm-up end the campaign derives from its (possibly
    default) IDS configuration, so the predicate is deterministic whether
    or not the detector is actually enabled; ``param`` overrides it.
    """
    if param is not None:
        return ctx.sim.now >= float(param)
    return ctx.sim.now >= getattr(ctx, "ids_warmup_end", 1.0)


#: Named trigger predicates: ``fn(ctx, param, state) -> bool``. ``state``
#: is a per-(trigger, run) scratch dict for armed baselines.
PREDICATES: dict[str, object] = {
    "always": _pred_always,
    "after": _pred_after,
    "pipeline-full": _pred_pipeline_full,
    "state-transfer-active": _pred_state_transfer,
    "ids-warmup-done": _pred_ids_warmup_done,
}


@dataclass
class TriggeredAction(Action):
    """Fire ``action`` when predicate ``when`` holds, not at a wall time.

    ``at``/``duration`` describe the *armed* window: the trigger starts
    watching at ``at`` and disarms at ``at + duration`` (or the fault
    horizon). Each firing applies the inner action immediately and
    schedules its revert after the inner action's own ``duration``.
    ``max_fires`` bounds repeated firings. Runtime firing state lives in
    non-field attributes, so ``repr`` stays a valid constructor call for
    the shrinker's replay snippets.
    """

    when: str = "always"
    param: object = None
    action: Action = field(default_factory=Action)
    max_fires: int = 1

    @property
    def replica_fault(self):  # type: ignore[override]
        return self.action.replica_fault

    def end(self, horizon: float) -> float:
        armed_end = horizon if self.duration is None else min(
            self.at + self.duration, horizon
        )
        if self.action.duration is None:
            return horizon
        return min(armed_end + self.action.duration, horizon)

    def fault_interval(self, horizon: float):
        # Worst case: the trigger fires the instant it arms and the inner
        # fault runs to the horizon — charged statically so an adaptive
        # schedule cannot out-budget its fixed-time equivalent.
        if not self.action.replica_fault:
            return None
        return (self.at, horizon, 1)

    # -- runtime (driven by the campaign's trigger evaluator) -----------

    def reset_runtime(self) -> None:
        self.fired_times: list = []
        self.exhausted = False
        self.pred_state: dict = {}

    def armed(self, now: float, horizon: float) -> bool:
        if getattr(self, "exhausted", False) or now < self.at:
            return False
        armed_end = horizon if self.duration is None else self.at + self.duration
        return now <= armed_end

    def should_fire(self, ctx: "CampaignContext") -> bool:
        predicate = PREDICATES.get(self.when)
        if predicate is None:
            raise ValueError(
                f"unknown trigger predicate {self.when!r}; pick from "
                f"{sorted(PREDICATES)}"
            )
        if not hasattr(self, "pred_state"):
            self.reset_runtime()
        return bool(predicate(ctx, self.param, self.pred_state))

    def fire(self, ctx: "CampaignContext") -> float:
        """Apply the inner action now; returns the absolute revert time."""
        now = ctx.sim.now
        self.fired_times.append(now)
        if len(self.fired_times) >= self.max_fires:
            self.exhausted = True
        self.action.apply(ctx)
        horizon = ctx.config.horizon
        if self.action.duration is None:
            return horizon
        return min(now + self.action.duration, horizon)

    def _apply(self, ctx) -> None:  # pragma: no cover - evaluator drives
        raise RuntimeError(
            "TriggeredAction is driven by the campaign trigger evaluator, "
            "not by fixed-time apply()"
        )


def active_replica_faults(ctx: "CampaignContext") -> int:
    """How many replicas are currently faulted (crashed or compromised)."""
    return len(ctx.crashed | ctx.compromised)
