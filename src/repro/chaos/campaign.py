"""The deterministic chaos-campaign runner.

One campaign = one fresh SMaRt-SCADA deployment + background SCADA
traffic (sensor updates and operator writes) + one fault
:class:`~repro.chaos.schedule.Schedule` + the invariant monitor suite.
The runner:

1. validates the schedule against the ``f`` replica-fault budget,
2. builds the system from the campaign seed (every RNG stream derives
   from it),
3. applies each action at its start time and reverts it at its end time
   (open-ended faults heal at the fault horizon),
4. polls the safety monitors throughout, lets the system settle, then
   evaluates the liveness monitors,
5. returns a :class:`CampaignReport` with the verdicts and a
   :meth:`~CampaignReport.fingerprint` that is bit-stable: the same seed
   and schedule always produce the identical fingerprint, with the PERF
   switches on or off.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.chaos.adaptive import TriggeredAction, active_replica_faults
from repro.chaos.monitors import Violation, default_monitors
from repro.chaos.schedule import Schedule
from repro.core.config import SmartScadaConfig
from repro.core.system import build_smartscada, make_network
from repro.heal import HealConfig, RecoveryOrchestrator
from repro.ids import (
    FeatureExtractor,
    GroundTruthEpisode,
    IdsConfig,
    IntrusionDetector,
    score_detections,
)
from repro.neoscada import HandlerChain, Monitor
from repro.obs.export import write_chrome_trace
from repro.obs.trace import install_tracer
from repro.sim.kernel import Simulator

#: Retransmission budget for campaign clients: campaigns crash replicas
#: and partition the network on purpose, so clients must keep probing
#: (with the capped backoff) rather than give up mid-fault.
CAMPAIGN_MAX_ATTEMPTS = 1000


@dataclass(frozen=True)
class CampaignConfig:
    """Tunables for one campaign run (all timing in simulated seconds)."""

    seed: int = 0
    #: Faults only start/stop inside [0, horizon]; open-ended faults heal here.
    horizon: float = 6.0
    #: Post-horizon grace for recovery before liveness verdicts.
    settle: float = 10.0
    #: Liveness bound: writes must complete within this of max(submit, last heal).
    liveness_bound: float = 8.0
    #: Background traffic.
    update_interval: float = 0.2
    write_interval: float = 1.2
    sensors: int = 3
    #: Group shape.
    n: int = 4
    f: int = 1
    #: Independent BFT groups behind the one namespace (1 = classic).
    #: Each group carries its *own* ``f`` replica-fault budget.
    shards: int = 1
    #: Permit schedules that exceed the replica-fault budget (attack drills).
    allow_overload: bool = False
    #: Safety-monitor polling period.
    poll_interval: float = 0.1
    #: Record the network trace (for hop-level fingerprints).
    trace: bool = False
    #: Protocol timeouts, scaled down from the defaults so leader changes
    #: and logical timeouts resolve within a short campaign.
    request_timeout: float = 1.0
    sync_timeout: float = 2.0
    invoke_timeout: float = 0.5
    logical_timeout: float = 0.8
    #: Consensus pipeline depth (1 = strictly sequential ordering; the
    #: ``pipelined-*`` scenarios override it to exercise overlap).
    pipeline_depth: int = 1
    #: Durable replica state (`repro.storage`): required by
    #: :class:`~repro.chaos.schedule.CrashRestart` actions.
    durability: bool = False
    fsync_policy: str = "every-decision"
    checkpoint_interval: int = 1000
    #: Install a :class:`repro.obs.trace.SpanTracer` for the run.
    trace_spans: bool = False
    #: When set, a first invariant violation dumps the span window around
    #: it as Chrome trace-event JSON to this path (implies tracing).
    trace_dump: str | None = None
    #: Seconds of span context kept on each side of the first violation.
    trace_window: float = 1.0
    #: Span retention cap for the installed tracer.
    max_trace_spans: int = 200_000
    #: Hop-trace ring-buffer cap (``None`` = keep every hop).
    trace_max_hops: int | None = None
    #: Run the trace-driven intrusion detector alongside the monitors
    #: (implies span tracing). Detections are reported and scored against
    #: ground truth but stay outside the fingerprint: a campaign's
    #: behaviour is bit-identical with the IDS on or off.
    ids: bool = False
    #: Detector tuning; ``None`` = :class:`repro.ids.IdsConfig` defaults.
    #: The IDS warm-up end is derived from this (or the default) even
    #: when ``ids`` is off, so ``ids-warmup-done`` triggers fire at the
    #: same instant either way.
    ids_config: IdsConfig | None = None
    #: Close the loop: run the :class:`repro.heal.RecoveryOrchestrator`
    #: on the detector's verdicts (implies the IDS and span tracing).
    #: Unlike the passive IDS, healing *acts* — reconfigurations,
    #: restarts — so a heal campaign's fingerprint legitimately differs
    #: from the same campaign without it.
    heal: bool = False
    #: Orchestrator tuning; ``None`` = :class:`repro.heal.HealConfig`
    #: defaults (the proportionate-escalation policy table).
    heal_config: HealConfig | None = None
    #: Run the fleet observability control plane alongside the monitors:
    #: a :class:`repro.obs.fleet.FleetScoreboard` sampled on the poll
    #: grid plus a :class:`repro.obs.slo.SloEngine` evaluating burn-rate
    #: error budgets. Strictly passive — like the IDS, a campaign's
    #: fingerprint is bit-identical with the scoreboard on or off.
    fleet: bool = False
    #: SLO objectives; ``None`` = :func:`repro.obs.slo.default_fleet_slos`.
    slo_specs: tuple | None = None
    #: Simulation kernel override (``"heap"``/``"ring"``; ``None`` =
    #: the process default), for kernel-parity campaigns.
    kernel: str | None = None

    def scada_config(self) -> SmartScadaConfig:
        return SmartScadaConfig(
            n=self.n,
            f=self.f,
            request_timeout=self.request_timeout,
            sync_timeout=self.sync_timeout,
            invoke_timeout=self.invoke_timeout,
            logical_timeout=self.logical_timeout,
            pipeline_depth=self.pipeline_depth,
            durability=self.durability,
            fsync_policy=self.fsync_policy,
            checkpoint_interval=self.checkpoint_interval,
        )

    def sharded_config(self):
        from repro.shard.config import ShardedScadaConfig

        return ShardedScadaConfig(shards=self.shards, base=self.scada_config())


@dataclass
class WriteRecord:
    """Ledger entry for one operator write issued during the campaign."""

    number: int
    item_id: str
    value: object
    submitted: float
    completed: float | None = None
    success: bool | None = None
    reason: str | None = None


@dataclass
class CampaignContext:
    """Everything actions and monitors need about the running campaign."""

    sim: Simulator
    net: object
    system: object
    config: CampaignConfig
    handler_config: object = None
    injector: object = None
    #: Replica indices currently taken down / swapped Byzantine.
    crashed: set = field(default_factory=set)
    compromised: set = field(default_factory=set)
    rejuvenations: int = 0
    restarts: int = 0
    #: One dict per CrashRestart reboot: index, disk fault, crash /
    #: restart / settle times and the replacement ProxyMaster.
    restart_events: list = field(default_factory=list)
    #: item_id -> set of values the field actually produced.
    legal_values: dict = field(default_factory=dict)
    writes: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    #: Instant the last fault healed (liveness clock zero).
    last_heal: float = 0.0
    _seen_violations: set = field(default_factory=set)
    #: Planted-intrusion episodes (dicts; ``end=None`` while ongoing).
    ground_truth: list = field(default_factory=list)
    #: One dict per adaptive-trigger firing (action, predicate, times).
    trigger_fires: list = field(default_factory=list)
    #: When the IDS warm-up window ends — derived from the campaign's
    #: (possibly default) IDS config whether or not the detector runs,
    #: so the ``ids-warmup-done`` predicate is deterministic either way.
    ids_warmup_end: float = 1.0
    #: The running :class:`repro.ids.IntrusionDetector`, or ``None``.
    detector: object = None
    #: The running :class:`repro.heal.RecoveryOrchestrator`, or ``None``.
    orchestrator: object = None
    #: Replica indices evicted from the membership by the orchestrator —
    #: retired for the rest of the campaign: fault reverts must not
    #: resurrect a machine the group formally removed.
    evicted: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.injector is None:
            self.injector = self.net.faults

    # -- recording -----------------------------------------------------

    def record_violation(self, invariant: str, detail: str) -> None:
        key = (invariant, detail)
        if key in self._seen_violations:
            return
        self._seen_violations.add(key)
        span_id = None
        tracer = self.sim.tracer
        if tracer is not None and tracer.spans:
            # Anchor forensics at the most recent span: "what was the
            # system doing when the invariant broke".
            span_id = tracer.spans[-1].span_id
        self.violations.append(
            Violation(self.sim.now, invariant, detail, span_id=span_id)
        )

    def record_ground_truth(
        self, kind: str, entity: str, behaviour: str = "", end: float | None = None
    ) -> None:
        """Register a planted intrusion (called by attack actions)."""
        self.ground_truth.append(
            {
                "kind": kind,
                "entity": entity,
                "behaviour": behaviour,
                "start": self.sim.now,
                "end": end,
            }
        )

    def close_ground_truth(self, entity: str, kind: str | None = None) -> None:
        """End the open episode(s) for ``entity`` at the current time."""
        for episode in self.ground_truth:
            if episode["entity"] != entity or episode["end"] is not None:
                continue
            if kind is not None and episode["kind"] != kind:
                continue
            episode["end"] = self.sim.now

    def ground_truth_episodes(self) -> list:
        """The episodes as frozen records, open ones closed at ``now``."""
        return [
            GroundTruthEpisode(
                kind=episode["kind"],
                entity=episode["entity"],
                start=episode["start"],
                end=episode["end"] if episode["end"] is not None else self.sim.now,
                behaviour=episode["behaviour"],
            )
            for episode in self.ground_truth
        ]

    # -- topology helpers ----------------------------------------------

    def all_addresses(self) -> list:
        return self.net.addresses()

    def honest_indices(self) -> list:
        return [
            pm.index
            for pm in self.system.proxy_masters
            if pm.index not in self.compromised
        ]

    def honest_addresses(self) -> set:
        return {
            pm.address
            for pm in self.system.proxy_masters
            if pm.index not in self.compromised
        }

    def honest_live_replicas(self) -> list:
        return [pm.replica for pm in self.honest_live_proxy_masters()]

    def honest_live_proxy_masters(self) -> list:
        return [
            pm
            for pm in self.system.proxy_masters
            if pm.replica.active
            and pm.index not in self.compromised
            and pm.index not in self.crashed
            and pm.index not in self.evicted
        ]

    def client_proxies(self) -> list:
        """Every external BFT client (HMI side + field side, all groups)."""
        clients = list(self.system.proxy_hmi.bft_clients)
        for pf in self.system.proxy_frontends:
            clients.extend(pf.bft_clients)
        return clients

    def current_leader_index(self, shard: int = 0) -> int:
        """The *global* index honest replicas of ``shard`` follow."""
        for pm in self.honest_live_proxy_masters():
            if getattr(pm, "shard", 0) != shard:
                continue
            leader = pm.replica.leader  # "replica-<k>" / "s<j>-replica-<k>"
            local = int(leader.rsplit("-", 1)[1])
            return shard * self.config.n + local
        return shard * self.config.n

    def converged(self) -> bool:
        """Every group's honest live replicas agree on their frontier."""
        by_shard: dict = {}
        for pm in self.honest_live_proxy_masters():
            by_shard.setdefault(getattr(pm, "shard", 0), []).append(pm.replica)
        if not by_shard:
            return False
        for replicas in by_shard.values():
            if len({r.last_decided for r in replicas}) != 1:
                return False
            if len({r.executed_cid for r in replicas}) != 1:
                return False
        return True


@dataclass
class CampaignReport:
    """Outcome of one campaign run."""

    seed: int
    schedule: Schedule
    violations: list
    duration: float
    writes_total: int
    writes_succeeded: int
    writes_failed_cleanly: int
    updates_sent: int
    rejuvenations: int
    events_dispatched: int
    fault_stats: dict
    state_digests: list
    trace_digest: str
    #: Path of the violation span dump written this run (``None`` when
    #: tracing was off or no violation occurred). Diagnostics only —
    #: outside :meth:`fingerprint`.
    trace_dump: str | None = None
    #: CrashRestart recoveries: ``{index, disk, crashed_at, restarted_at,
    #: settled_at}`` per reboot. Diagnostics only — deliberately outside
    #: :meth:`fingerprint` (like ``fault_stats``), which hashes the
    #: behaviour-defining trace and verdicts.
    recoveries: list = field(default_factory=list)
    restarts: int = 0
    #: IDS output: typed :class:`repro.ids.Detection` events, the planted
    #: ground-truth episodes, and the precision/recall/latency score.
    #: Diagnostics only — deliberately outside :meth:`fingerprint`, which
    #: is the IDS-on/off invariance contract.
    detections: list = field(default_factory=list)
    ground_truth: list = field(default_factory=list)
    ids_score: dict | None = None
    #: Adaptive-adversary firings: ``{action, when, time, revert_at}``.
    trigger_fires: list = field(default_factory=list)
    #: Recovery-orchestrator audit trail (dicts from
    #: :meth:`repro.heal.HealAction.as_dict`, blocked attempts included)
    #: and the evicted-and-replaced count. Like the IDS output these
    #: stay outside :meth:`fingerprint` — but note healing *does* change
    #: the fingerprint itself, through the actions it takes.
    heal_actions: list = field(default_factory=list)
    evictions: int = 0
    #: Fleet scoreboard dump (:meth:`repro.obs.fleet.FleetScoreboard.
    #: to_dict`) and the SLO violations it recorded. Diagnostics only —
    #: deliberately outside :meth:`fingerprint`, which is the
    #: scoreboard-on/off invariance contract.
    fleet: dict | None = None
    slo_violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated_invariants(self) -> list:
        return sorted({v.invariant for v in self.violations})

    def fingerprint(self) -> str:
        """Bit-stable digest of the run: trace, state and verdicts.

        Two runs with the same seed and schedule must produce identical
        fingerprints — this is the determinism contract the test suite
        asserts with the PERF switches both on and off.
        """
        h = hashlib.sha256()
        h.update(f"seed={self.seed};t={self.duration:.9f};".encode())
        h.update(f"dispatched={self.events_dispatched};".encode())
        h.update(
            f"writes={self.writes_total}/{self.writes_succeeded}/"
            f"{self.writes_failed_cleanly};updates={self.updates_sent};".encode()
        )
        for digest_bytes in self.state_digests:
            h.update(digest_bytes)
        h.update(self.trace_digest.encode())
        for violation in self.violations:
            h.update(
                f"{violation.time:.9f}|{violation.invariant}|"
                f"{violation.detail};".encode()
            )
        return h.hexdigest()

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        extra = ""
        if not self.ok:
            extra = f" [{', '.join(self.violated_invariants())}]"
        return (
            f"{verdict}{extra} seed={self.seed} writes="
            f"{self.writes_succeeded}+{self.writes_failed_cleanly}f/"
            f"{self.writes_total} faults_fired={self.fault_stats.get('total_fired', 0)}"
        )


def _trace_digest(net) -> str:
    if not net.trace.enabled:
        return ""
    h = hashlib.sha256()
    for hop in net.trace.hops:
        h.update(
            f"{hop.src}>{hop.dst}:{hop.kind}:{hop.size}:"
            f"{hop.sent_at:.9f}:{hop.delivered_at:.9f};".encode()
        )
    return h.hexdigest()


def run_campaign(
    schedule: Schedule,
    config: CampaignConfig | None = None,
    monitors: list | None = None,
) -> CampaignReport:
    """Run one deterministic fault campaign and report the verdicts."""
    config = config if config is not None else CampaignConfig()
    schedule.validate_budget(
        config.f,
        config.horizon,
        config.allow_overload,
        n=config.n,
        shards=config.shards,
    )
    if config.shards > 1 and (config.ids or config.heal):
        raise ValueError(
            "IDS/heal campaigns watch one replica group; run them with "
            "shards=1 (per-group detection on sharded topologies is future "
            "work)"
        )
    monitors = monitors if monitors is not None else default_monitors()

    sim = Simulator(seed=config.seed, kernel=config.kernel)
    # Healing needs the detector, which needs the span stream.
    ids_active = config.ids or config.heal
    tracer = None
    if config.trace_spans or config.trace_dump is not None or ids_active:
        tracer = install_tracer(sim, max_spans=config.max_trace_spans)
    net = make_network(sim, trace=config.trace, max_hops=config.trace_max_hops)
    if config.shards > 1:
        from repro.shard.deployment import build_sharded_scada

        system = build_sharded_scada(sim, net=net, config=config.sharded_config())
    else:
        system = build_smartscada(sim, net=net, config=config.scada_config())

    sensors = [f"plant.s{i}" for i in range(config.sensors)]
    for sensor in sensors:
        system.frontend.add_item(sensor, initial=0)
    system.frontend.add_item("plant.actuator", initial=0, writable=True)

    def make_chain():
        return HandlerChain([Monitor(high=750.0)])

    for sensor in sensors:
        system.attach_handlers(sensor, make_chain)

    def handler_config(proxy_master) -> None:
        # Fresh incarnations (rejuvenation, Byzantine swap) re-read their
        # configuration: handler chains and the campaign's retry budget.
        for sensor in sensors:
            proxy_master.attach_handlers(sensor, make_chain())
        proxy_master.vote_client.max_attempts = CAMPAIGN_MAX_ATTEMPTS

    ctx = CampaignContext(
        sim=sim,
        net=net,
        system=system,
        config=config,
        handler_config=handler_config,
    )
    ctx.legal_values = {sensor: {0} for sensor in sensors}
    ctx.legal_values["plant.actuator"] = {0}
    ids_config = config.ids_config if config.ids_config is not None else IdsConfig()
    ctx.ids_warmup_end = ids_config.warmup
    if ids_active:
        features = FeatureExtractor(window=ids_config.window)
        tracer.subscribe(features.on_span)
        ctx.detector = IntrusionDetector(
            sim,
            net,
            features,
            ids_config,
            n=config.n,
            f=config.f,
        )
    if config.heal:
        ctx.orchestrator = RecoveryOrchestrator(
            sim,
            net,
            system,
            detector=ctx.detector,
            config=(
                config.heal_config
                if config.heal_config is not None
                else HealConfig()
            ),
            handler_config=handler_config,
            on_evict=lambda index, address: ctx.evicted.add(index),
        )
    scoreboard = None
    if config.fleet:
        from repro.obs.fleet import FleetScoreboard
        from repro.obs.slo import SloEngine

        scoreboard = FleetScoreboard(
            system,
            slo_engine=SloEngine(specs=config.slo_specs, sim=sim),
            detector=ctx.detector,
            orchestrator=ctx.orchestrator,
        )
    heal_times = []
    for action in schedule:
        interval = action.fault_interval(config.horizon)
        if interval is not None:
            heal_times.append(interval[1])
        else:
            heal_times.append(action.end(config.horizon))
    ctx.last_heal = max(heal_times, default=0.0)

    system.start()
    for proxy in ctx.client_proxies():
        proxy.max_attempts = CAMPAIGN_MAX_ATTEMPTS
    for proxy_master in system.proxy_masters:
        proxy_master.vote_client.max_attempts = CAMPAIGN_MAX_ATTEMPTS
    if ctx.orchestrator is not None:
        # The orchestrator's admin client reconfigures mid-fault; give it
        # the same keep-probing budget as every other campaign client.
        ctx.orchestrator.admin.proxy.max_attempts = CAMPAIGN_MAX_ATTEMPTS

    for monitor in monitors:
        monitor.start(ctx)

    # -- schedule the faults (action times are absolute sim times) ------
    triggered = [a for a in schedule if isinstance(a, TriggeredAction)]
    for action in schedule:
        if isinstance(action, TriggeredAction):
            continue
        sim.defer(max(action.at - sim.now, 0.0), action.apply, ctx)
        end = max(action.end(config.horizon), action.at)
        sim.defer(max(end - sim.now, 0.0), action.revert, ctx)

    # -- adaptive adversaries: evaluate armed triggers on the poll grid -
    for action in triggered:
        # The shrinker replays the same Action objects run after run.
        action.reset_runtime()

    def trigger_evaluator():
        while sim.now < config.horizon:
            if all(action.exhausted for action in triggered):
                return
            yield sim.timeout(config.poll_interval)
            if sim.now > config.horizon:
                return
            for action in triggered:
                if not action.armed(sim.now, config.horizon):
                    continue
                if not action.should_fire(ctx):
                    continue
                if (
                    action.action.replica_fault
                    and not config.allow_overload
                    and active_replica_faults(ctx) >= config.f
                ):
                    # Runtime budget guard: the predicate holds but f
                    # replicas are already faulty — hold fire until one
                    # heals (the static check already charged the worst
                    # case; this keeps lucky timing honest too).
                    continue
                revert_at = action.fire(ctx)
                ctx.trigger_fires.append(
                    {
                        "action": type(action.action).__name__,
                        "when": action.when,
                        "time": sim.now,
                        "revert_at": revert_at,
                    }
                )
                sim.defer(max(revert_at - sim.now, 0.0), action.action.revert, ctx)

    if triggered:
        sim.process(trigger_evaluator(), name="chaos-triggers")

    # -- background traffic --------------------------------------------
    counters = {"updates": 0}

    def update_traffic():
        step = 0
        while sim.now < config.horizon:
            yield sim.timeout(config.update_interval)
            step += 1
            for j, sensor in enumerate(sensors):
                value = (step * 37 + j * 101) % 700 + 1
                ctx.legal_values[sensor].add(value)
                system.frontend.inject_update(sensor, value)
                counters["updates"] += 1

    def write_traffic():
        number = 0
        while sim.now < config.horizon:
            yield sim.timeout(config.write_interval)
            number += 1
            value = (number * 10) % 500 + 3
            record = WriteRecord(
                number=number,
                item_id="plant.actuator",
                value=value,
                submitted=sim.now,
            )
            ctx.writes.append(record)
            ctx.legal_values["plant.actuator"].add(value)
            event = system.hmi.write("plant.actuator", value)

            def on_done(ev, record=record) -> None:
                result = ev.value
                record.completed = sim.now
                record.success = result.success
                record.reason = result.reason

            event.add_callback(on_done)

    def monitor_poller():
        while True:
            yield sim.timeout(config.poll_interval)
            for monitor in monitors:
                monitor.poll(ctx)
            if ctx.detector is not None:
                ctx.detector.poll()
            if ctx.orchestrator is not None:
                # Decisions ride the same grid, right after the detector
                # refreshed its verdicts: detect -> corroborate -> act is
                # one deterministic pipeline per tick.
                ctx.orchestrator.poll()
            if scoreboard is not None:
                # Last on the grid so the sample sees this tick's monitor
                # and heal state. Passive: adds zero simulation events.
                scoreboard.sample()

    sim.process(update_traffic(), name="chaos-updates")
    sim.process(write_traffic(), name="chaos-writes")
    sim.process(monitor_poller(), name="chaos-monitors")

    # -- run: fault window, then settle until quiesced ------------------
    sim.run(until=config.horizon)
    deadline = config.horizon + config.settle
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.5, deadline))
        if ctx.converged() and all(r.completed is not None for r in ctx.writes):
            break

    for monitor in monitors:
        monitor.finish(ctx)

    detections: list = []
    ids_score = None
    if ctx.detector is not None:
        # One last look at the final window, then score against the
        # planted episodes (open ones close at the final clock).
        ctx.detector.poll()
        detections = list(ctx.detector.detections)
        ids_score = score_detections(detections, ctx.ground_truth_episodes())

    succeeded = sum(1 for r in ctx.writes if r.success)
    failed_cleanly = sum(
        1 for r in ctx.writes if r.completed is not None and not r.success
    )
    dump_path = None
    if tracer is not None and config.trace_dump is not None and ctx.violations:
        # Failure forensics: keep the span window around the first
        # violation, Perfetto-loadable.
        first = min(v.time for v in ctx.violations)
        write_chrome_trace(
            config.trace_dump,
            tracer.window(first - config.trace_window, first + config.trace_window),
            clock=sim.now,
        )
        dump_path = config.trace_dump
    return CampaignReport(
        seed=config.seed,
        schedule=schedule,
        violations=list(ctx.violations),
        duration=sim.now,
        writes_total=len(ctx.writes),
        writes_succeeded=succeeded,
        writes_failed_cleanly=failed_cleanly,
        updates_sent=counters["updates"],
        rejuvenations=ctx.rejuvenations,
        events_dispatched=sim.stats()["events_dispatched"],
        fault_stats=sim.stats().get("net.faults", {}),
        state_digests=system.state_digests(),
        trace_digest=_trace_digest(net),
        trace_dump=dump_path,
        recoveries=[
            {key: value for key, value in event.items() if key != "proxy_master"}
            for event in ctx.restart_events
        ],
        restarts=ctx.restarts,
        detections=detections,
        ground_truth=[dict(episode) for episode in ctx.ground_truth],
        ids_score=ids_score,
        trigger_fires=list(ctx.trigger_fires),
        heal_actions=(
            ctx.orchestrator.action_log() if ctx.orchestrator is not None else []
        ),
        evictions=(
            ctx.orchestrator.evictions if ctx.orchestrator is not None else 0
        ),
        fleet=(scoreboard.to_dict() if scoreboard is not None else None),
        slo_violations=(
            [v.as_dict() for v in scoreboard.slo_engine.violations]
            if scoreboard is not None
            else []
        ),
    )


def sweep_seeds(
    build_schedule,
    seeds,
    config: CampaignConfig | None = None,
) -> dict:
    """Run one campaign per seed; returns ``{seed: CampaignReport}``.

    ``build_schedule`` is either a fixed :class:`Schedule` (replayed
    under different simulation seeds) or a callable ``fn(seed) ->
    Schedule`` (e.g. :func:`~repro.chaos.schedule.sample_schedule`) for
    randomized campaigns.
    """
    config = config if config is not None else CampaignConfig()
    reports = {}
    for seed in seeds:
        schedule = build_schedule(seed) if callable(build_schedule) else build_schedule
        reports[seed] = run_campaign(schedule, replace(config, seed=seed))
    return reports
