"""Invariant monitors that run continuously during a chaos campaign.

Safety invariants (checked every poll tick):

``ordered-prefix``
    All honest replicas execute the same totally-ordered prefix: once any
    honest replica decides value ``v`` for consensus slot ``cid``, every
    honest replica's decision log must hold the identical bytes for that
    slot forever.
``reply-agreement``
    No two honest replicas send divergent replies for the same
    ``(client, sequence)``.
``hmi-truth``
    The operator's HMI only ever displays values the field actually
    produced (the workload ledger). A forged reading that survives the
    proxies' f+1 push vote — possible only when more than ``f`` replicas
    are compromised — trips this immediately.
``client-quorum``
    Every result a client accepts is quorum-backed by at least one
    currently-honest replica (hooked into the proxies' vote completion).

Liveness invariants (checked when the campaign quiesces):

``write-completion``
    Every submitted write completes — successfully or as the
    deterministic failure synthesized by the §IV-D logical-timeout
    protocol — within ``liveness_bound`` seconds of the later of its
    submission and the last fault heal.
``leader-convergence``
    After the faults heal, at least ``n - f`` honest replicas agree on
    the maximum installed regency (the synchronization phase converged).
``state-convergence``
    Honest live replicas agree on ``last_decided`` / ``executed_cid`` and
    hold byte-identical Master state.

Monitors never mutate system state; a campaign stays bit-deterministic
with any subset of monitors installed.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.crypto import digest

if typing.TYPE_CHECKING:
    from repro.chaos.campaign import CampaignContext


@dataclass(frozen=True)
class Violation:
    """One invariant violation observed during a campaign."""

    time: float
    invariant: str
    detail: str
    #: Span id of the most recent trace span at violation time (``None``
    #: when tracing is off) — the anchor the ``chaos --json`` dump and
    #: trace forensics jump to. ``time`` is already simulated time.
    #: Outside the report fingerprint's hashed fields by construction
    #: (the fingerprint hashes time/invariant/detail only), so tracing
    #: on/off stays fingerprint-identical.
    span_id: str | None = None


class InvariantMonitor:
    """Base monitor: ``poll`` runs every tick, ``finish`` at quiesce."""

    name = "invariant"

    def start(self, ctx: "CampaignContext") -> None:
        pass

    def poll(self, ctx: "CampaignContext") -> None:
        pass

    def finish(self, ctx: "CampaignContext") -> None:
        pass


class OrderedPrefixMonitor(InvariantMonitor):
    name = "ordered-prefix"

    def __init__(self) -> None:
        #: ``(shard, cid) -> digest``: each group has its own total order,
        #: so slot numbers only collide *within* a group.
        self._decided: dict[tuple, bytes] = {}

    def poll(self, ctx) -> None:
        for pm in ctx.honest_live_proxy_masters():
            shard = getattr(pm, "shard", 0)
            for cid, value, _timestamp in pm.replica.decision_log:
                fingerprint = digest(value)
                key = (shard, cid)
                seen = self._decided.get(key)
                if seen is None:
                    self._decided[key] = fingerprint
                elif seen != fingerprint:
                    ctx.record_violation(
                        self.name,
                        f"replica {pm.replica.address} decided a different "
                        f"value for cid={cid} than an earlier honest replica "
                        f"of shard {shard}",
                    )


class ReplyAgreementMonitor(InvariantMonitor):
    name = "reply-agreement"

    def __init__(self) -> None:
        self._replies: dict[tuple, bytes] = {}

    def poll(self, ctx) -> None:
        for replica in ctx.honest_live_replicas():
            for client_id, reply in replica._last_reply.items():
                key = (client_id, reply.sequence)
                fingerprint = digest(reply.result)
                seen = self._replies.get(key)
                if seen is None:
                    self._replies[key] = fingerprint
                elif seen != fingerprint:
                    ctx.record_violation(
                        self.name,
                        f"replica {replica.address} replied divergently to "
                        f"client {client_id} sequence {reply.sequence}",
                    )


class HmiTruthMonitor(InvariantMonitor):
    name = "hmi-truth"

    def poll(self, ctx) -> None:
        hmi = ctx.system.hmi
        for item_id, legal in ctx.legal_values.items():
            shown = hmi.value_of(item_id)
            if shown is not None and shown not in legal:
                ctx.record_violation(
                    self.name,
                    f"HMI displays {shown!r} for {item_id!r}, which the "
                    f"field never produced (forged reading passed the "
                    f"f+1 push vote)",
                )


class ClientQuorumMonitor(InvariantMonitor):
    """Hooks every external client proxy's vote-completion callback."""

    name = "client-quorum"

    def start(self, ctx) -> None:
        for proxy in ctx.client_proxies():
            proxy.on_result = self._observer(ctx, proxy.client_id)

    def _observer(self, ctx, client_id: str):
        def on_result(sequence, _result, voters) -> None:
            honest = ctx.honest_addresses()
            if honest and not (set(voters) & honest):
                ctx.record_violation(
                    self.name,
                    f"client {client_id} accepted a result for sequence "
                    f"{sequence} voted only by compromised replicas "
                    f"({sorted(voters)})",
                )

        return on_result


class WriteCompletionMonitor(InvariantMonitor):
    name = "write-completion"

    def finish(self, ctx) -> None:
        bound = ctx.config.liveness_bound
        for record in ctx.writes:
            deadline = max(record.submitted, ctx.last_heal) + bound
            if record.completed is None:
                ctx.record_violation(
                    self.name,
                    f"write #{record.number} ({record.item_id}={record.value!r}, "
                    f"submitted t={record.submitted:.2f}s) never completed "
                    f"(deadline t={deadline:.2f}s, now t={ctx.sim.now:.2f}s)",
                )
            elif record.completed > deadline:
                ctx.record_violation(
                    self.name,
                    f"write #{record.number} completed at t={record.completed:.2f}s, "
                    f"after its deadline t={deadline:.2f}s",
                )


class LeaderConvergenceMonitor(InvariantMonitor):
    name = "leader-convergence"

    def finish(self, ctx) -> None:
        by_shard: dict[int, list] = {}
        for pm in ctx.honest_live_proxy_masters():
            by_shard.setdefault(getattr(pm, "shard", 0), []).append(pm.replica)
        if not by_shard:
            ctx.record_violation(self.name, "no honest live replicas at quiesce")
            return
        needed = ctx.config.n - ctx.config.f
        for shard, replicas in sorted(by_shard.items()):
            regencies = [r.synchronizer.regency for r in replicas]
            top = max(regencies)
            agreed = sum(1 for regency in regencies if regency == top)
            if agreed < needed:
                ctx.record_violation(
                    self.name,
                    f"only {agreed} honest replicas of shard {shard} "
                    f"installed regency {top} (need {needed}); "
                    f"regencies={regencies}",
                )


class StateConvergenceMonitor(InvariantMonitor):
    name = "state-convergence"

    def finish(self, ctx) -> None:
        by_shard: dict[int, list] = {}
        for pm in ctx.honest_live_proxy_masters():
            by_shard.setdefault(getattr(pm, "shard", 0), []).append(pm)
        for shard, members in sorted(by_shard.items()):
            replicas = [pm.replica for pm in members]
            if len(replicas) < 2:
                continue
            decided = {r.last_decided for r in replicas}
            executed = {r.executed_cid for r in replicas}
            if len(decided) > 1 or len(executed) > 1:
                ctx.record_violation(
                    self.name,
                    f"honest replicas of shard {shard} did not converge: "
                    f"last_decided={sorted(decided)} "
                    f"executed_cid={sorted(executed)}",
                )
                continue
            digests = {digest(pm.service.snapshot()) for pm in members}
            if len(digests) > 1:
                ctx.record_violation(
                    self.name,
                    f"honest replicas of shard {shard} hold {len(digests)} "
                    f"distinct Master states after quiesce",
                )


class DurableRecoveryMonitor(InvariantMonitor):
    """Checks every :class:`~repro.chaos.schedule.CrashRestart` recovery.

    Polled: stamps ``settled_at`` on each restart event the first time
    the rebooted replica has caught up with its honest peers (the
    recovery-time measurement surfaced in ``CampaignReport.recoveries``).

    At quiesce:

    - every rebooted replica must have settled (no divergent stragglers);
    - an ``intact``-disk reboot whose disk yielded a usable prefix must
      have recovered *without* a full snapshot install — WAL replay plus
      log-tail (partial) transfer only. A full install there means the
      durable boot path silently degraded to state shipping, the
      regression this monitor exists to catch. (Under the
      ``checkpoint-only`` fsync policy an intact crash can honestly lose
      the entire un-barriered tail — an empty prefix makes the full
      transfer the correct answer, so the rule does not apply.)

    Damaged disks (``torn``/``corrupt``/``wiped``) are *expected* to fall
    back to the full transfer; for them only convergence is checked (the
    safety monitors separately guarantee the fallback stayed honest).
    """

    name = "durable-recovery"

    def poll(self, ctx) -> None:
        for event in ctx.restart_events:
            if event["settled_at"] is not None:
                continue
            pm = event["proxy_master"]
            replica = pm.replica
            if not replica.active:
                continue
            shard = getattr(pm, "shard", 0)
            peers = [
                other.replica
                for other in ctx.honest_live_proxy_masters()
                if other.replica is not replica
                and getattr(other, "shard", 0) == shard
            ]
            if not peers:
                continue
            if replica.last_decided >= max(p.last_decided for p in peers):
                event["settled_at"] = ctx.sim.now

    def finish(self, ctx) -> None:
        self.poll(ctx)  # catch settlements since the last tick
        for event in ctx.restart_events:
            replica = event["proxy_master"].replica
            label = (
                f"replica-{event['index']} ({event['disk']} disk, rebooted "
                f"t={event['restarted_at']:.2f}s)"
            )
            if event["settled_at"] is None and replica.active:
                ctx.record_violation(
                    self.name,
                    f"{label} never caught up with its peers after the "
                    f"restart (last_decided={replica.last_decided})",
                )
            recovered = replica.recovered_from_disk
            if (
                event["disk"] == "intact"
                and recovered is not None
                and not recovered.damaged
                and recovered.last_cid >= 0
                and replica.state_transfer.full_installs
            ):
                ctx.record_violation(
                    self.name,
                    f"{label} recovered through a full snapshot transfer; "
                    f"an intact disk must rejoin by WAL replay + log-tail "
                    f"transfer only",
                )


class MttrMonitor(InvariantMonitor):
    """Time-to-detect / time-to-heal per planted intrusion (diagnostics).

    Records no violations: it correlates each ground-truth episode with
    the first matching detection and the first completed orchestrator
    action on the same entity, yielding the mean-time-to-recovery
    measurements the ``heal`` benchmark reports. Not part of
    :func:`default_monitors` — heal drills install it explicitly.
    """

    name = "mttr"

    def __init__(self) -> None:
        #: One dict per episode: entity, kind, start, detected_at,
        #: detect_latency, healed_at, heal_latency, action (or Nones).
        self.measurements: list = []

    def finish(self, ctx) -> None:
        detections = (
            list(ctx.detector.detections) if ctx.detector is not None else []
        )
        actions = (
            list(ctx.orchestrator.actions)
            if ctx.orchestrator is not None
            else []
        )
        self.measurements = []
        for episode in ctx.ground_truth:
            entity = episode["entity"]
            start = episode["start"]
            detected_at = next(
                (
                    d.time
                    for d in detections
                    if d.entity == entity and d.time >= start
                ),
                None,
            )
            healed = next(
                (
                    a
                    for a in actions
                    if a.target == entity
                    and a.outcome in ("completed", "raised")
                    and a.time >= start
                ),
                None,
            )
            healed_at = (
                healed.completed_at
                if healed is not None and healed.completed_at is not None
                else (healed.time if healed is not None else None)
            )
            self.measurements.append(
                {
                    "entity": entity,
                    "kind": episode["kind"],
                    "behaviour": episode.get("behaviour", ""),
                    "start": start,
                    "detected_at": detected_at,
                    "detect_latency": (
                        detected_at - start if detected_at is not None else None
                    ),
                    "healed_at": healed_at,
                    "heal_latency": (
                        healed_at - start if healed_at is not None else None
                    ),
                    "action": healed.kind if healed is not None else None,
                }
            )


class AvailabilityMonitor(InvariantMonitor):
    """Samples write throughput over time (diagnostics).

    Keeps a ``(time, completed_successful_writes)`` series on the poll
    grid so the heal benchmark can compare operator-write throughput
    before the attack, during it, and after the orchestrator healed the
    group. Not part of :func:`default_monitors`.
    """

    name = "availability"

    def __init__(self) -> None:
        self.samples: list = []

    def poll(self, ctx) -> None:
        done = sum(1 for record in ctx.writes if record.success)
        self.samples.append((ctx.sim.now, done))

    def finish(self, ctx) -> None:
        self.poll(ctx)

    def _count_at(self, t: float) -> int:
        best = 0
        for sample_time, count in self.samples:
            if sample_time > t:
                break
            best = count
        return best

    def rate(self, t0: float, t1: float) -> float:
        """Successful writes per second completed in ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        return (self._count_at(t1) - self._count_at(t0)) / (t1 - t0)


def default_monitors() -> list:
    """The full invariant suite, in evaluation order."""
    return [
        OrderedPrefixMonitor(),
        ReplyAgreementMonitor(),
        HmiTruthMonitor(),
        ClientQuorumMonitor(),
        WriteCompletionMonitor(),
        LeaderConvergenceMonitor(),
        StateConvergenceMonitor(),
        DurableRecoveryMonitor(),
    ]
