"""Shrinking: minimize a failing schedule to its essence.

When a campaign fails an invariant, the schedule that provoked it is
rarely minimal — randomized campaigns especially carry bystander
actions. The shrinker re-runs the campaign (same seed, so every attempt
is deterministic) with candidate reductions:

1. **action removal** — greedily drop one action at a time, keeping the
   removal whenever the reduced schedule still violates, repeated to a
   fixed point (like delta-debugging's 1-minimal pass);
2. **duration shortening** — halve each surviving action's fault window
   while the violation persists;
3. **de-adapting triggers** — each surviving
   :class:`~repro.chaos.adaptive.TriggeredAction` is replaced, when the
   violation allows it, by its inner action pinned at the time the
   trigger actually fired (recorded by the failing run), falling back to
   simplifying its predicate to ``always`` and halving the inner fault
   window. A minimal adaptive failure thus shrinks to a plain fixed-time
   schedule whenever the adaptivity wasn't essential.

The result carries the minimal schedule, the report proving it still
violates, and a replayable Python snippet (built from the actions'
constructor-valid reprs) that reproduces the failure standalone.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as dc_replace

from repro.chaos.adaptive import TriggeredAction
from repro.chaos.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.chaos.schedule import Schedule

#: Don't shorten fault windows below this (too short to matter).
MIN_DURATION = 0.5


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing schedule."""

    schedule: Schedule
    report: CampaignReport
    runs: int
    removed_actions: int
    snippet: str


def replay_snippet(schedule: Schedule, config: CampaignConfig) -> str:
    """A standalone Python snippet reproducing this campaign."""
    lines = [
        "from repro.chaos import *",
        "from repro.chaos.campaign import CampaignConfig",
        "from repro.heal import HealConfig",
        "from repro.ids import IdsConfig",
        "",
        "schedule = Schedule([",
    ]
    for action in schedule:
        lines.append(f"    {action!r},")
    lines.append("])")
    lines.append(f"config = {config!r}")
    lines.append("report = run_campaign(schedule, config)")
    lines.append("print(report.summary())")
    lines.append("for violation in report.violations:")
    lines.append("    print(f'  t={violation.time:.2f}s "
                 "{violation.invariant}: {violation.detail}')")
    return "\n".join(lines) + "\n"


def _heal_signature(report: CampaignReport) -> tuple:
    """The orchestrator's story, shrink-stable: (kind, target, outcome)s."""
    return tuple(
        (action["kind"], action["target"], action["outcome"])
        for action in report.heal_actions
    )


def _fails(
    schedule: Schedule,
    config: CampaignConfig,
    counter: list,
    heal_signature: tuple | None = None,
) -> "CampaignReport | None":
    """Run the campaign; return the report iff it still violates.

    With ``heal_signature`` set (pinned-heal shrinking), a candidate
    only counts when the recovery orchestrator also took the *same*
    actions with the same outcomes — a reduction that makes the failure
    survive by silencing or rerouting the self-healing response is a
    different bug, not a smaller reproduction of this one.
    """
    counter[0] += 1
    report = run_campaign(schedule, config)
    if report.ok:
        return None
    if heal_signature is not None and _heal_signature(report) != heal_signature:
        return None
    return report


def shrink_schedule(
    schedule: Schedule,
    config: CampaignConfig | None = None,
    max_runs: int = 60,
    pin_heal: bool = False,
) -> ShrinkResult:
    """Minimize ``schedule`` while it keeps violating an invariant.

    ``pin_heal`` additionally requires every reduction to preserve the
    failing run's recovery-orchestrator action log (kinds, targets and
    outcomes) — see :func:`_fails`. Only meaningful for campaigns with
    ``config.heal``.

    Raises ``ValueError`` if the input schedule doesn't fail in the
    first place (nothing to shrink).
    """
    config = config if config is not None else CampaignConfig()
    counter = [0]
    baseline = _fails(schedule, config, counter)
    if baseline is None:
        raise ValueError(
            "schedule does not violate any invariant under this config; "
            "nothing to shrink"
        )
    sig = _heal_signature(baseline) if pin_heal else None

    current = list(schedule.actions)
    best_report = baseline
    original_count = len(current)

    # Pass 1: greedy single-action removal to a fixed point.
    changed = True
    while changed and counter[0] < max_runs:
        changed = False
        for i in range(len(current)):
            if counter[0] >= max_runs or len(current) <= 1:
                break
            candidate = current[:i] + current[i + 1:]
            report = _fails(Schedule(list(candidate)), config, counter, sig)
            if report is not None:
                current = candidate
                best_report = report
                changed = True
                break  # restart the scan over the smaller schedule

    # Pass 2: halve durations while the violation persists.
    for i, action in enumerate(list(current)):
        while (
            counter[0] < max_runs
            and action.duration is not None
            and action.duration / 2 >= MIN_DURATION
        ):
            shorter = dc_replace(action, duration=round(action.duration / 2, 3))
            candidate = list(current)
            candidate[i] = shorter
            report = _fails(Schedule(candidate), config, counter, sig)
            if report is None:
                break
            action = shorter
            current = candidate
            best_report = report

    # Pass 3: de-adapt surviving triggers. A trigger that fired at time t
    # in the failing run is first tried as its inner action pinned at t
    # (adaptivity gone entirely); failing that, its predicate is
    # simplified to "always" and the inner fault window halved.
    for i, action in enumerate(list(current)):
        if not isinstance(action, TriggeredAction) or counter[0] >= max_runs:
            continue
        fired = list(getattr(action, "fired_times", ()))
        if fired:
            pinned = dc_replace(action.action, at=round(fired[0], 3))
            candidate = list(current)
            candidate[i] = pinned
            report = _fails(Schedule(candidate), config, counter, sig)
            if report is not None:
                current = candidate
                best_report = report
                continue
        if action.when != "always" and counter[0] < max_runs:
            simpler = dc_replace(action, when="always", param=None)
            candidate = list(current)
            candidate[i] = simpler
            report = _fails(Schedule(candidate), config, counter, sig)
            if report is not None:
                action = simpler
                current = candidate
                best_report = report
        inner = current[i].action if isinstance(current[i], TriggeredAction) else None
        while (
            inner is not None
            and counter[0] < max_runs
            and inner.duration is not None
            and inner.duration / 2 >= MIN_DURATION
        ):
            shorter = dc_replace(
                current[i], action=dc_replace(inner, duration=round(inner.duration / 2, 3))
            )
            candidate = list(current)
            candidate[i] = shorter
            report = _fails(Schedule(candidate), config, counter, sig)
            if report is None:
                break
            current = candidate
            best_report = report
            inner = shorter.action

    minimal = Schedule(list(current))
    return ShrinkResult(
        schedule=minimal,
        report=best_report,
        runs=counter[0],
        removed_actions=original_count - len(minimal),
        snippet=replay_snippet(minimal, config),
    )
