"""Fault actions, schedules, fault budgets and the seeded sampler.

A :class:`Schedule` is a list of time-stamped :class:`Action` objects
applied to a running :class:`~repro.core.system.SmartScadaSystem`. Each
action knows how to ``apply`` itself at its start time and ``revert``
itself at its end time; actions with ``duration=None`` stay active until
the campaign's fault horizon, where the runner heals everything so the
liveness invariants can be measured from a known last-heal instant.

The **fault budget** counts *replica* faults — crashes, leader kills,
Byzantine swaps and rejuvenations — because those are what the ``n ≥
3f+1`` assumption is about. Network faults (partitions, message drops)
are deliberately outside the budget: BFT safety must hold under
arbitrary network behaviour, and campaigns are encouraged to pile them
on. A schedule whose replica faults ever overlap more than ``f`` deep is
rejected unless the campaign explicitly opts into overload — the point
of an overload campaign being to *watch the invariants catch it*.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.bftsmart.byzantine import (
    EquivocatingLeader,
    FalsifyingReplica,
    LyingReplica,
    SilentReplica,
    StutteringReplica,
)
from repro.bftsmart.config import replica_address
from repro.bftsmart.replica import ServiceReplica
from repro.net.faults import Delay, Drop

if typing.TYPE_CHECKING:
    from repro.chaos.campaign import CampaignContext
    from repro.core.system import SmartScadaSystem

#: Byzantine behaviour registry for :class:`SwapByzantine` (and the CLI).
BEHAVIOURS: dict[str, type] = {
    "silent": SilentReplica,
    "lying": LyingReplica,
    "falsifying": FalsifyingReplica,
    "equivocating": EquivocatingLeader,
    "stuttering": StutteringReplica,
    "honest": ServiceReplica,
}

#: Budget accounting window charged for one rejuvenation (the replica is
#: "faulty" while it state-transfers back in).
REJUVENATION_WINDOW = 1.0


class ChaosBudgetError(ValueError):
    """A schedule exceeds the ``f`` simultaneous replica-fault budget."""


def swap_replica_behaviour(
    system: "SmartScadaSystem",
    index: int,
    behaviour,
    handler_config=None,
):
    """Swap a live Master replica for a Byzantine behaviour at runtime.

    ``behaviour`` is a :data:`BEHAVIOURS` name or a ServiceReplica
    subclass; ``"honest"`` (or :class:`ServiceReplica`) swaps the replica
    back to a correct implementation. The swap rides the proactive
    recovery machinery — the old instance is halted, the replacement
    state-transfers in at the same address — so behaviours that used to
    be constructor-time-only now model a *runtime compromise*.

    Returns the replacement ProxyMaster.
    """
    from repro.core.recovery import rejuvenate_replica

    if isinstance(behaviour, str):
        try:
            behaviour = BEHAVIOURS[behaviour]
        except KeyError:
            raise ValueError(
                f"unknown behaviour {behaviour!r}; pick from "
                f"{sorted(BEHAVIOURS)}"
            ) from None
    return rejuvenate_replica(
        system, index, handler_config=handler_config, replica_class=behaviour
    )


@dataclass
class Action:
    """Base fault action: applied at ``at``, reverted at ``end``.

    Subclasses define ``_apply``/``_revert`` against a campaign context.
    Runtime handles (installed rules, resolved targets) are stored as
    non-field attributes so ``repr(action)`` stays a valid constructor
    call — the shrinker's replay snippets are built from these reprs.
    """

    at: float = 0.0
    duration: float | None = None

    #: True when the action makes a replica faulty (counts toward budget).
    replica_fault = False

    def end(self, horizon: float) -> float:
        if self.duration is None:
            return horizon
        return min(self.at + self.duration, horizon)

    def fault_interval(self, horizon: float):
        """``(start, end, replicas)`` charged to the budget, or None."""
        if not self.replica_fault:
            return None
        return (self.at, self.end(horizon), 1)

    def apply(self, ctx: "CampaignContext") -> None:
        self._apply(ctx)

    def revert(self, ctx: "CampaignContext") -> None:
        self._revert(ctx)

    def _apply(self, ctx) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _revert(self, ctx) -> None:
        pass

    def fault_shard(self, n: int) -> int:
        """Which replica group this action's fault lands on.

        Indexed actions derive it from the flattened global index
        (shard ``k`` owns indices ``[k*n, (k+1)*n)``); actions that pick
        their victim at runtime (leader kills) carry a ``shard`` field.
        """
        index = getattr(self, "index", None)
        if index is not None:
            return index // n
        return getattr(self, "shard", 0)


def _machine_addresses(ctx, index: int) -> list:
    """Every endpoint hosted on replica machine ``index``.

    Resolved through the deployment (not recomputed from the index), so
    the same action works on sharded topologies where machine ``index``
    answers to a namespaced ``s<k>-replica-<i>`` address.
    """
    pms = ctx.system.proxy_masters
    if index < len(pms):
        address = pms[index].address
    else:
        address = replica_address(index)
    return [address, f"{address}-adapter"]


def _crash_machine(ctx, index: int) -> list:
    """Take a replica machine fully down (inbound and outbound)."""
    rules = []
    for address in _machine_addresses(ctx, index):
        ctx.net.crash(address)
        # Endpoint ``down`` only swallows inbound traffic; a crashed
        # machine must also stop talking, so outbound is dropped too.
        rules.append(ctx.injector.add(Drop(src=address)))
    ctx.crashed.add(index)
    return rules


def _recover_machine(ctx, index: int, rules: list) -> None:
    for address in _machine_addresses(ctx, index):
        ctx.net.recover(address)
    for rule in rules:
        if rule in ctx.injector.rules:
            ctx.injector.remove(rule)
    ctx.crashed.discard(index)


@dataclass
class CrashReplica(Action):
    """Crash replica machine ``index`` (silent, both directions)."""

    index: int = 0
    replica_fault = True

    def _apply(self, ctx) -> None:
        self._rules = _crash_machine(ctx, self.index)

    def _revert(self, ctx) -> None:
        _recover_machine(ctx, self.index, getattr(self, "_rules", []))


@dataclass
class KillLeader(Action):
    """Crash whichever replica currently leads group ``shard``."""

    shard: int = 0
    replica_fault = True

    def _apply(self, ctx) -> None:
        self._index = ctx.current_leader_index(self.shard)
        self._rules = _crash_machine(ctx, self._index)

    def _revert(self, ctx) -> None:
        index = getattr(self, "_index", None)
        if index is not None:
            _recover_machine(ctx, index, getattr(self, "_rules", []))


@dataclass
class IsolateReplicas(Action):
    """Partition the given replica machines away from everything else."""

    indices: tuple = ()

    def _apply(self, ctx) -> None:
        isolated = []
        for index in self.indices:
            isolated.extend(_machine_addresses(ctx, index))
        rest = [a for a in ctx.all_addresses() if a not in isolated]
        self._rule = ctx.injector.partition([isolated, rest])

    def _revert(self, ctx) -> None:
        rule = getattr(self, "_rule", None)
        if rule is not None:
            ctx.injector.heal(rule)


@dataclass
class PartitionNet(Action):
    """Partition arbitrary groups (replica indices or raw addresses)."""

    groups: tuple = ()

    def _apply(self, ctx) -> None:
        resolved = []
        for group in self.groups:
            addresses = []
            for member in group:
                if isinstance(member, int):
                    addresses.extend(_machine_addresses(ctx, member))
                else:
                    addresses.append(member)
            resolved.append(addresses)
        self._rule = ctx.injector.partition(resolved)

    def _revert(self, ctx) -> None:
        rule = getattr(self, "_rule", None)
        if rule is not None:
            ctx.injector.heal(rule)


@dataclass
class SwapByzantine(Action):
    """Swap replica ``index`` for a Byzantine behaviour at runtime.

    With a ``duration``, the replica is swapped back to an honest
    (pristine, state-transferring) instance at the end — modelling a
    compromise contained within a rejuvenation window. Without one, the
    compromise is permanent (still within budget if ≤ f replicas).
    """

    index: int = 0
    behaviour: str = "silent"
    replica_fault = True

    def _apply(self, ctx) -> None:
        if self.index in ctx.evicted:
            # The group already voted this machine out; there is no
            # replica left at the address to compromise.
            return
        swap_replica_behaviour(
            ctx.system, self.index, self.behaviour, handler_config=ctx.handler_config
        )
        ctx.compromised.add(self.index)
        if self.behaviour != "honest":
            ctx.record_ground_truth(
                "byzantine",
                ctx.system.proxy_masters[self.index].address,
                behaviour=self.behaviour,
            )

    def _revert(self, ctx) -> None:
        address = ctx.system.proxy_masters[self.index].address
        if self.index in ctx.evicted:
            # Evicted mid-episode: the attacker's machine was removed
            # from the membership, so healing the fault must not boot an
            # honest replica at a retired address. The episode still
            # closes (the compromise ended when the group cut it off).
            ctx.compromised.discard(self.index)
            ctx.close_ground_truth(address)
            return
        swap_replica_behaviour(
            ctx.system, self.index, "honest", handler_config=ctx.handler_config
        )
        ctx.compromised.discard(self.index)
        ctx.close_ground_truth(address)

    def fault_interval(self, horizon: float):
        # A permanent swap stays charged until the end of the campaign.
        return (self.at, self.end(horizon), 1)


@dataclass
class DropKind(Action):
    """Drop a message class (``kind``) matching src/dst globs."""

    kind: str | None = None
    src: str | None = None
    dst: str | None = None
    probability: float = 1.0
    max_count: int | None = None

    def _apply(self, ctx) -> None:
        self._rule = ctx.injector.add(
            Drop(
                src=self.src,
                dst=self.dst,
                kind=self.kind,
                probability=self.probability,
                max_count=self.max_count,
            )
        )

    def _revert(self, ctx) -> None:
        rule = getattr(self, "_rule", None)
        if rule is not None and rule in ctx.injector.rules:
            ctx.injector.remove(rule)


@dataclass
class DelayKind(Action):
    """Add ``extra`` seconds of delay to a message class."""

    kind: str | None = None
    extra: float = 0.001
    src: str | None = None
    dst: str | None = None

    def _apply(self, ctx) -> None:
        self._rule = ctx.injector.add(
            Delay(self.extra, src=self.src, dst=self.dst, kind=self.kind)
        )

    def _revert(self, ctx) -> None:
        rule = getattr(self, "_rule", None)
        if rule is not None and rule in ctx.injector.rules:
            ctx.injector.remove(rule)


@dataclass
class FieldOffline(Action):
    """Take a Frontend (the field side: its RTUs/links) offline.

    Writes forwarded to it vanish, which is exactly the condition the
    §IV-D logical-timeout protocol exists for.
    """

    frontend: int = 0

    def _apply(self, ctx) -> None:
        address = f"frontend-{self.frontend}"
        ctx.net.crash(address)
        self._rule = ctx.injector.add(Drop(src=address))

    def _revert(self, ctx) -> None:
        address = f"frontend-{self.frontend}"
        ctx.net.recover(address)
        rule = getattr(self, "_rule", None)
        if rule is not None and rule in ctx.injector.rules:
            ctx.injector.remove(rule)


@dataclass
class InjectWrites(Action):
    """A command-injection-style write burst from the operator station.

    Models an attacker who has taken over (or replayed) the HMI session
    and floods operator writes far above the learned duty cycle — the
    injected-command scenario of the bump-in-the-wire IDS literature.
    The writes travel the legitimate replicated path, so no safety
    invariant trips (their values are entered into the campaign's legal
    ledger); only their *pattern* is anomalous, which is exactly what
    the ``write-burst`` detector keys on.
    """

    count: int = 24
    interval: float = 0.03
    item: str = "plant.actuator"

    def _apply(self, ctx) -> None:
        ctx.record_ground_truth(
            "write-burst",
            ctx.system.hmi.address,
            end=ctx.sim.now + self.count * self.interval,
        )

        def burst():
            for i in range(self.count):
                value = 800 + (i * 7) % 120
                ctx.legal_values.setdefault(self.item, set()).add(value)
                ctx.system.hmi.write(self.item, value)
                yield ctx.sim.timeout(self.interval)

        ctx.sim.process(burst(), name=f"inject-writes@{self.at:.2f}")


@dataclass
class SpoofFrontend(Action):
    """Inject forged client requests from a rogue network endpoint.

    The spoofer claims an existing client identity but holds no keys, so
    every replica's secure channel rejects the envelopes (and counts
    them). The flood is invisible to the protocol — spoofed traffic is
    dropped before dispatch — but the per-replica rejection counters
    climb in lockstep, the signature the ``spoofed-frontend`` detector
    watches through the metrics registry.
    """

    target: str = "proxy-hmi"
    count: int = 30
    interval: float = 0.03

    def _apply(self, ctx) -> None:
        from repro.bftsmart.messages import Sealed
        from repro.crypto.mac import MAC_SIZE

        ctx.record_ground_truth(
            "spoof",
            "*",
            end=ctx.sim.now + self.count * self.interval,
        )
        rogue = ctx.net.endpoint(f"spoofer-{self.target}")
        replicas = [pm.address for pm in ctx.system.proxy_masters]

        def flood():
            for i in range(self.count):
                forged = Sealed(
                    sender=self.target,
                    payload=b"forged-client-request-%d" % i,
                    tags={dst: b"\x00" * MAC_SIZE for dst in replicas},
                )
                for dst in replicas:
                    rogue.send(dst, forged, kind="ClientRequest")
                yield ctx.sim.timeout(self.interval)

        ctx.sim.process(flood(), name=f"spoof-frontend@{self.at:.2f}")


@dataclass
class Rejuvenate(Action):
    """Proactively recover replica ``index`` (instantaneous trigger)."""

    index: int = 0
    replica_fault = True

    def _apply(self, ctx) -> None:
        from repro.core.recovery import rejuvenate_replica

        if self.index in ctx.evicted:
            return
        rejuvenate_replica(ctx.system, self.index, handler_config=ctx.handler_config)
        ctx.rejuvenations += 1

    def fault_interval(self, horizon: float):
        return (self.at, min(self.at + REJUVENATION_WINDOW, horizon), 1)


@dataclass
class CrashRestart(Action):
    """Power-cut replica ``index``; reboot it from its durable disk.

    Requires a durable campaign (``CampaignConfig(durability=True)``).
    At ``at`` the machine goes down and the ``disk`` crash fault model —
    ``intact`` / ``torn`` / ``corrupt`` / ``wiped`` (see
    :data:`repro.storage.CRASH_MODES`) — is applied to its device, the
    honest-crash-semantics moment. At the end of the window the machine
    reboots through :func:`repro.core.recovery.restart_replica`:
    checkpoint + WAL-tail recovery from disk, then a partial (log-tail)
    state transfer for the suffix — or the full-transfer fallback when
    the disk failed digest verification.
    """

    index: int = 0
    disk: str = "intact"
    replica_fault = True

    def _apply(self, ctx) -> None:
        self._rules = _crash_machine(ctx, self.index)
        old = ctx.system.proxy_masters[self.index]
        # The power cut: the process dies with the machine (a halted
        # replica with its storage detached can't write "post-mortem"
        # checkpoints), and the crash fault hits the device *now* — the
        # torn write is whatever was in flight at this instant.
        old.replica.halt()
        storage = old.replica.storage
        old.replica.storage = None
        if storage is not None:
            storage.crash(self.disk)

    def _revert(self, ctx) -> None:
        from repro.core.recovery import restart_replica

        _recover_machine(ctx, self.index, getattr(self, "_rules", []))
        if self.index in ctx.evicted:
            # Rebooting hardware the group evicted brings the machine
            # back online but must not rejoin it to the replica group.
            return
        replacement = restart_replica(
            ctx.system,
            self.index,
            disk_fault=None,  # the fault already hit at crash time
            handler_config=ctx.handler_config,
        )
        ctx.restarts += 1
        ctx.restart_events.append(
            {
                "index": self.index,
                "disk": self.disk,
                "crashed_at": self.at,
                "restarted_at": ctx.sim.now,
                "settled_at": None,
                "proxy_master": replacement,
            }
        )

    def fault_interval(self, horizon: float):
        # Like a rejuvenation, the replica stays charged to the budget
        # for a recovery window after the reboot while it catches up.
        return (self.at, min(self.end(horizon) + REJUVENATION_WINDOW, horizon), 1)


@dataclass
class Schedule:
    """An ordered list of fault actions forming one campaign."""

    actions: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.actions = sorted(self.actions, key=lambda a: a.at)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def max_simultaneous_replica_faults(
        self, horizon: float, shard: int | None = None, n: int = 4
    ) -> int:
        """Peak depth of overlapping replica-fault windows.

        With ``shard`` set, only faults landing on that group count —
        each group tolerates ``f`` faults *independently*, which is the
        whole point of sharding the fault budget.
        """
        edges = []
        for action in self.actions:
            interval = action.fault_interval(horizon)
            if interval is None:
                continue
            if shard is not None and action.fault_shard(n) != shard:
                continue
            start, end, count = interval
            edges.append((start, 1, count))
            edges.append((end, 0, -count))
        # Sort by time; at equal times process the end (-count) first so
        # back-to-back faults on the same replica don't double-count.
        edges.sort()
        depth = peak = 0
        for _time, _order, delta in edges:
            depth += delta
            peak = max(peak, depth)
        return peak

    def validate_budget(
        self,
        f: int,
        horizon: float,
        allow_overload: bool = False,
        n: int = 4,
        shards: int = 1,
    ) -> None:
        if allow_overload:
            return
        if shards <= 1:
            peak = self.max_simultaneous_replica_faults(horizon)
            if peak > f:
                raise ChaosBudgetError(
                    f"schedule has up to {peak} simultaneous replica faults, "
                    f"budget is f={f}; pass allow_overload=True to run an "
                    f"over-budget campaign on purpose"
                )
            return
        # Sharded: each group carries its own f budget. Killing one
        # leader in every group at the same instant is in budget; two
        # simultaneous faults inside one group (f=1) is not.
        for shard in range(shards):
            peak = self.max_simultaneous_replica_faults(horizon, shard=shard, n=n)
            if peak > f:
                raise ChaosBudgetError(
                    f"schedule has up to {peak} simultaneous replica faults "
                    f"on shard {shard}, per-group budget is f={f}; pass "
                    f"allow_overload=True to run an over-budget campaign "
                    f"on purpose"
                )

    def describe(self) -> str:
        lines = []
        for action in self.actions:
            lines.append(f"  t={action.at:6.2f}s  {action!r}")
        return "\n".join(lines) if lines else "  (empty schedule)"


# ---------------------------------------------------------------------------
# seeded random campaigns
# ---------------------------------------------------------------------------

def sample_schedule(
    seed: int,
    *,
    horizon: float = 6.0,
    n: int = 4,
    f: int = 1,
    max_actions: int = 5,
    allow_overload: bool = False,
) -> Schedule:
    """Sample a schedule within the fault budget, deterministically.

    The same ``seed`` always yields the same schedule (the sampler uses
    its own :class:`random.Random`, untangled from the simulation's RNG
    streams). Candidate actions that would push the replica-fault overlap
    past ``f`` are discarded, so every sampled schedule is in budget
    unless ``allow_overload`` asks otherwise.
    """
    rng = random.Random(seed)
    count = rng.randint(2, max(2, max_actions))
    kinds = (
        "crash", "crash", "kill-leader", "isolate", "drop-wv", "drop-wr",
        "swap", "delay", "field", "rejuvenate",
    )
    actions: list = []
    for _ in range(count * 3):  # oversample; budget filter prunes
        if len(actions) >= count:
            break
        kind = rng.choice(kinds)
        at = round(rng.uniform(0.5, horizon * 0.7), 2)
        duration = round(rng.uniform(0.8, horizon * 0.4), 2)
        index = rng.randrange(n)
        if kind == "crash":
            candidate = CrashReplica(at=at, duration=duration, index=index)
        elif kind == "kill-leader":
            candidate = KillLeader(at=at, duration=duration)
        elif kind == "isolate":
            candidate = IsolateReplicas(at=at, duration=duration, indices=(index,))
        elif kind == "drop-wv":
            # §IV-D's drop attack targets the field link; co-located hops
            # (HMI <-> ProxyHMI on one machine) are not droppable, so an
            # unconstrained drop would model an impossible fault.
            candidate = DropKind(
                at=at, duration=duration, kind="WriteValue", dst="frontend-0"
            )
        elif kind == "drop-wr":
            candidate = DropKind(
                at=at, duration=duration, kind="WriteResult", src="frontend-0"
            )
        elif kind == "swap":
            behaviour = rng.choice(("silent", "lying", "stuttering", "falsifying"))
            candidate = SwapByzantine(
                at=at, duration=duration, index=index, behaviour=behaviour
            )
        elif kind == "delay":
            candidate = DelayKind(
                at=at, duration=duration, kind="PushMessage",
                extra=round(rng.uniform(0.001, 0.02), 4),
            )
        elif kind == "field":
            candidate = FieldOffline(at=at, duration=min(duration, 2.0), frontend=0)
        else:
            candidate = Rejuvenate(at=at, index=index)
        trial = Schedule(actions + [candidate])
        if (
            not allow_overload
            and trial.max_simultaneous_replica_faults(horizon) > f
        ):
            continue
        actions.append(candidate)
    return Schedule(actions)
