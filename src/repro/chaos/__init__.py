"""Chaos campaign engine: scheduled + randomized fault drills.

The paper's central claim is that SMaRt-SCADA stays correct and live
*under attack* — dropped WriteValue/WriteResult messages (§IV-D), a
Byzantine or crashed leader, replica compromise inside a rejuvenation
window. This package turns that claim into a machine-checkable property:

- :mod:`repro.chaos.schedule` — composable, time-stamped fault actions
  (crash/restart, kill-the-leader, partition/heal, Byzantine swap,
  message-class drops, field devices offline, rejuvenation) plus a
  seeded sampler that generates schedules within a fault budget;
- :mod:`repro.chaos.monitors` — safety and liveness invariants checked
  continuously while a campaign runs;
- :mod:`repro.chaos.campaign` — the deterministic campaign runner and
  seed-sweep driver;
- :mod:`repro.chaos.scenarios` — a library of named scenarios
  reproducing the paper's attack discussion;
- :mod:`repro.chaos.adaptive` — adaptive adversaries: any action wrapped
  in a :class:`~repro.chaos.adaptive.TriggeredAction` fires on an
  *observed* predicate (pipeline full, state transfer active, IDS
  warm-up elapsed) instead of a wall time, still inside the fault
  budget;
- :mod:`repro.chaos.shrink` — minimizes a failing schedule to the
  smallest one still violating an invariant and emits a replayable
  Python snippet.

Every campaign is bit-deterministic: the same seed and schedule produce
the identical event trace and the identical invariant verdicts.
"""

from repro.chaos.adaptive import PREDICATES, TriggeredAction
from repro.chaos.campaign import (
    CampaignConfig,
    CampaignReport,
    run_campaign,
    sweep_seeds,
)
from repro.chaos.monitors import AvailabilityMonitor, MttrMonitor, Violation
from repro.chaos.schedule import (
    BEHAVIOURS,
    Action,
    ChaosBudgetError,
    CrashReplica,
    DelayKind,
    DropKind,
    FieldOffline,
    InjectWrites,
    IsolateReplicas,
    KillLeader,
    PartitionNet,
    Rejuvenate,
    Schedule,
    SpoofFrontend,
    SwapByzantine,
    sample_schedule,
    swap_replica_behaviour,
)
from repro.chaos.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    run_scenario,
)
from repro.chaos.shrink import ShrinkResult, replay_snippet, shrink_schedule

__all__ = [
    "Action",
    "AvailabilityMonitor",
    "BEHAVIOURS",
    "CampaignConfig",
    "MttrMonitor",
    "CampaignReport",
    "ChaosBudgetError",
    "CrashReplica",
    "DelayKind",
    "DropKind",
    "FieldOffline",
    "InjectWrites",
    "IsolateReplicas",
    "KillLeader",
    "PREDICATES",
    "PartitionNet",
    "Rejuvenate",
    "SCENARIOS",
    "Scenario",
    "Schedule",
    "ShrinkResult",
    "SpoofFrontend",
    "SwapByzantine",
    "TriggeredAction",
    "Violation",
    "get_scenario",
    "list_scenarios",
    "replay_snippet",
    "run_campaign",
    "run_scenario",
    "sample_schedule",
    "shrink_schedule",
    "swap_replica_behaviour",
    "sweep_seeds",
]
