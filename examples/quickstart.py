"""Quickstart: a BFT SCADA Master in ~40 lines.

Builds the paper's six-machine SMaRt-SCADA deployment (one Frontend with
its proxy, four SCADA Master replicas, one HMI with its proxy), pushes a
sensor update through the Byzantine-agreement pipeline, and issues an
operator write — then shows that all four replicas hold byte-identical
state.

Run:  python examples/quickstart.py
"""

from repro.core import build_smartscada
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=42)
    system = build_smartscada(sim)  # n=4 replicas, f=1

    # Declare the plant: one sensor, one actuator.
    system.frontend.add_item("plant.temperature", initial=20)
    system.frontend.add_item("plant.valve", initial=0, writable=True)
    # Alarm when the temperature passes 80 degrees (same chain on every replica).
    system.attach_handlers(
        "plant.temperature", lambda: HandlerChain([Monitor(high=80.0)])
    )
    system.start()

    def scenario():
        # A field update travels Frontend -> proxy -> Byzantine agreement
        # -> 4 Masters -> f+1 voting -> HMI (paper Figure 6).
        system.frontend.inject_update("plant.temperature", 95)
        yield sim.timeout(0.5)
        print(f"HMI temperature reading : {system.hmi.value_of('plant.temperature')}")
        for alarm in system.hmi.alarms():
            print(f"HMI alarm               : {alarm.event_id}: {alarm.message}")

        # An operator write travels the other way (paper Figure 7).
        result = yield system.hmi.write("plant.valve", 1)
        print(f"valve write succeeded   : {result.success}")
        yield sim.timeout(0.5)
        print(f"valve position at field : "
              f"{system.frontend.items.get('plant.valve').value.value}")
        return True

    sim.run_process(scenario(), until=30)

    digests = system.state_digests()
    print(f"replica state digests equal across {len(digests)} replicas: "
          f"{len(set(digests)) == 1}")


if __name__ == "__main__":
    main()
