"""Proactive recovery: rejuvenating Master replicas under live load.

Intrusion tolerance is strongest when replicas are periodically restored
from a clean state — an adversary then has to compromise f+1 replicas
*within one rejuvenation window*, not over the system's lifetime (the
Castro-Liskov proactive recovery idea; see DESIGN.md §6). This example
runs a steady sensor workload while a scheduler rejuvenates one replica
every few seconds; each pristine instance state-transfers the complete
Master state (items, alarms, subscriptions) back in, and the HMI never
notices.

Run:  python examples/proactive_recovery.py
"""

from repro.core import SmartScadaConfig, build_smartscada
from repro.core.recovery import RejuvenationScheduler
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=37)
    system = build_smartscada(sim, config=SmartScadaConfig())
    system.frontend.add_item("plant.flow", initial=10)
    system.attach_handlers("plant.flow", lambda: HandlerChain([Monitor(high=95.0)]))
    system.start()

    def feed():
        value = 0
        while True:
            yield sim.timeout(0.04)  # 25 updates/s
            value += 1
            system.frontend.inject_update("plant.flow", value % 100)

    sim.process(feed())

    def reapply_handlers(proxy_master):
        proxy_master.attach_handlers(
            "plant.flow", HandlerChain([Monitor(high=95.0)])
        )

    scheduler = RejuvenationScheduler(
        system, period=4.0, handler_config=reapply_handlers, settle_time=2.0
    )
    scheduler.start()

    def observer():
        last_count = 0
        for _ in range(6):
            yield sim.timeout(5.0)
            received = system.hmi.stats["updates"]
            print(
                f"[t={sim.now:5.1f}s] HMI updates: {received:4d} "
                f"(+{received - last_count} in the last 5 s)  "
                f"rejuvenations so far: {scheduler.rejuvenations}"
            )
            last_count = received
        return True

    sim.run_process(observer(), until=120)
    scheduler.stop()

    # Quiesce and verify the group converged.
    for _ in range(40):
        sim.run(until=sim.now + 0.5)
        live = [pm.replica for pm in system.proxy_masters if pm.replica.active]
        if len({r.last_decided for r in live}) == 1 and len(
            {r.executed_cid for r in live}
        ) == 1:
            break

    print()
    print(f"rejuvenations completed      : {scheduler.rejuvenations}")
    print(f"recovered within settle time : {scheduler.recovered_in_time}")
    print(f"alarms at the HMI            : {len(system.hmi.alarms())}")
    print(
        f"replica states identical     : "
        f"{len(set(system.state_digests())) == 1}"
    )
    assert scheduler.rejuvenations >= 4
    assert len(set(system.state_digests())) == 1


if __name__ == "__main__":
    main()
