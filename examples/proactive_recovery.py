"""Proactive recovery: rejuvenating Master replicas under live load.

Intrusion tolerance is strongest when replicas are periodically restored
from a clean state — an adversary then has to compromise f+1 replicas
*within one rejuvenation window*, not over the system's lifetime (the
Castro-Liskov proactive recovery idea; see DESIGN.md §6). This example
runs a steady sensor workload while a scheduler rejuvenates one replica
every few seconds; each pristine instance state-transfers the complete
Master state (items, alarms, subscriptions) back in, and the HMI never
notices.

The second act contrasts the two ways a replica can come back on a
*durable* deployment (``SmartScadaConfig(durability=True)``,
docs/DURABILITY.md):

- **rejuvenation** deliberately wipes the disk — a compromised machine's
  storage is exactly what proactive recovery must not trust — so the
  replacement ships the full snapshot from its peers;
- **crash-restart** keeps the (intact) disk: the reboot replays the
  newest checkpoint plus the WAL tail locally and fetches only the
  missed suffix through the partial state transfer.

Both recovery times and the bytes shipped are printed side by side.

Run:  python examples/proactive_recovery.py
"""

from repro.core import SmartScadaConfig, build_smartscada
from repro.core.recovery import (
    RejuvenationScheduler,
    rejuvenate_replica,
    restart_replica,
)
from repro.neoscada import HandlerChain, Monitor
from repro.net import LanLatency, Network
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=37)
    system = build_smartscada(sim, config=SmartScadaConfig())
    system.frontend.add_item("plant.flow", initial=10)
    system.attach_handlers("plant.flow", lambda: HandlerChain([Monitor(high=95.0)]))
    system.start()

    def feed():
        value = 0
        while True:
            yield sim.timeout(0.04)  # 25 updates/s
            value += 1
            system.frontend.inject_update("plant.flow", value % 100)

    sim.process(feed())

    def reapply_handlers(proxy_master):
        proxy_master.attach_handlers(
            "plant.flow", HandlerChain([Monitor(high=95.0)])
        )

    scheduler = RejuvenationScheduler(
        system, period=4.0, handler_config=reapply_handlers, settle_time=2.0
    )
    scheduler.start()

    def observer():
        last_count = 0
        for _ in range(6):
            yield sim.timeout(5.0)
            received = system.hmi.stats["updates"]
            print(
                f"[t={sim.now:5.1f}s] HMI updates: {received:4d} "
                f"(+{received - last_count} in the last 5 s)  "
                f"rejuvenations so far: {scheduler.rejuvenations}"
            )
            last_count = received
        return True

    sim.run_process(observer(), until=120)
    scheduler.stop()

    # Quiesce and verify the group converged.
    for _ in range(40):
        sim.run(until=sim.now + 0.5)
        live = [pm.replica for pm in system.proxy_masters if pm.replica.active]
        if len({r.last_decided for r in live}) == 1 and len(
            {r.executed_cid for r in live}
        ) == 1:
            break

    print()
    print(f"rejuvenations completed      : {scheduler.rejuvenations}")
    print(f"recovered within settle time : {scheduler.recovered_in_time}")
    print(f"alarms at the HMI            : {len(system.hmi.alarms())}")
    print(
        f"replica states identical     : "
        f"{len(set(system.state_digests())) == 1}"
    )
    assert scheduler.rejuvenations >= 4
    assert len(set(system.state_digests())) == 1

    contrast_recovery_paths()


def contrast_recovery_paths() -> None:
    """Rejuvenation (wiped disk) vs crash-restart (intact disk)."""

    def measure(strategy: str) -> dict:
        sim = Simulator(seed=37)
        # A constrained (10 Mbit/s) backhaul between control-centre
        # replicas: recovery time is then dominated by the bytes shipped,
        # which is the axis the two strategies differ on.
        net = Network(
            sim,
            latency=LanLatency(
                base=0.0003,
                jitter=0.00006,
                bandwidth=1_250_000.0,
                rng=sim.rng.stream("net.jitter"),
            ),
        )
        system = build_smartscada(
            sim,
            net=net,
            config=SmartScadaConfig(durability=True, checkpoint_interval=50),
        )
        items = [f"plant.flow-{i}" for i in range(6)]
        for item in items:
            system.frontend.add_item(item, initial=10)
            system.attach_handlers(
                item, lambda: HandlerChain([Monitor(high=95.0)])
            )
        system.start()

        def reapply_handlers(proxy_master):
            for item in items:
                proxy_master.attach_handlers(
                    item, HandlerChain([Monitor(high=95.0)])
                )

        def feed(count):
            for value in range(count):
                system.frontend.inject_update(
                    items[value % len(items)], value % 100
                )
                sim.run(until=sim.now + 0.02)

        feed(120)  # history: a checkpoint plus a WAL tail on every disk
        system.proxy_masters[2].replica.halt()
        if strategy != "rejuvenation":
            system.durable_storage[2].crash("intact")
        feed(10)  # the outage: peers keep deciding without the victim
        if strategy == "rejuvenation":
            # Proactive recovery: the machine is reprovisioned, the disk
            # deliberately wiped, the replacement boots amnesiac.
            fresh = rejuvenate_replica(system, 2, handler_config=reapply_handlers)
        else:
            # Power-cut and reboot: the disk survives and is trusted as
            # far as its digests verify.
            fresh = restart_replica(
                system, 2, disk_fault=None, handler_config=reapply_handlers
            )
        started = sim.now
        target = max(
            pm.replica.last_decided
            for pm in system.proxy_masters
            if pm.replica.active and pm is not fresh
        )
        while fresh.replica.last_decided < target and sim.now < started + 10:
            sim.run(until=sim.now + 0.0002)
        recovery_time = sim.now - started
        feed(5)
        assert len(set(system.state_digests())) == 1
        transfer = fresh.replica.state_transfer
        return {
            "time": recovery_time,
            "shipped": transfer.bytes_installed,
            "kind": (
                f"{transfer.full_installs} full"
                if transfer.full_installs
                else f"{transfer.partial_installs} partial"
            ),
        }

    rejuvenation = measure("rejuvenation")
    restart = measure("crash-restart")
    print()
    print("recovery strategies on a durable deployment (same history):")
    print(
        f"  rejuvenation  (wiped disk) : {rejuvenation['time'] * 1000:6.2f} ms, "
        f"{rejuvenation['shipped']:5d} bytes shipped ({rejuvenation['kind']} transfer)"
    )
    print(
        f"  crash-restart (intact disk): {restart['time'] * 1000:6.2f} ms, "
        f"{restart['shipped']:5d} bytes shipped ({restart['kind']} transfer)"
    )
    print(
        f"  restart-from-disk advantage: "
        f"{rejuvenation['time'] / restart['time']:.1f}x faster, "
        f"{rejuvenation['shipped'] / restart['shipped']:.1f}x fewer bytes"
    )
    assert restart["time"] < rejuvenation["time"]
    assert restart["shipped"] < rejuvenation["shipped"]


if __name__ == "__main__":
    main()
