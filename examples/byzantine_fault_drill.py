"""Byzantine fault drill: what SMaRt-SCADA is actually for.

Runs the replicated deployment through an escalating attack scenario
while a steady sensor workload flows:

1. baseline operation;
2. the current consensus leader is crashed — the synchronization phase
   elects a new regency and traffic continues;
3. the crashed replica comes back and catches up via state transfer;
4. an attacker drops the WriteValue towards the Frontend — the logical
   timeout protocol (§IV-D) unblocks the write deterministically;
5. final check: all four Master replicas hold byte-identical state.

Run:  python examples/byzantine_fault_drill.py
"""

from repro.core import SmartScadaConfig, build_smartscada
from repro.net import Drop
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=13)
    config = SmartScadaConfig(request_timeout=0.5, sync_timeout=1.0)
    system = build_smartscada(sim, config=config)
    system.frontend.add_item("plant.pressure", initial=100)
    system.frontend.add_item("plant.relief-valve", initial=0, writable=True)
    system.start()

    feeding = {"on": True}

    def feed(updates_per_second=50):
        value = 100
        while feeding["on"]:
            yield sim.timeout(1.0 / updates_per_second)
            value += 1
            system.frontend.inject_update("plant.pressure", value)

    sim.process(feed())

    def drill():
        yield sim.timeout(1.0)
        seen = system.hmi.stats["updates"]
        print(f"[t={sim.now:5.2f}s] phase 1: baseline — HMI received {seen} updates")

        # Phase 2: kill the leader replica.
        print(f"[t={sim.now:5.2f}s] phase 2: crashing the leader (replica-0)")
        system.net.crash("replica-0")
        before = system.hmi.stats["updates"]
        yield sim.timeout(4.0)
        after = system.hmi.stats["updates"]
        regencies = [r.synchronizer.regency for r in system.replicas[1:]]
        print(f"[t={sim.now:5.2f}s]   leader change completed, regencies={regencies}")
        print(f"[t={sim.now:5.2f}s]   HMI kept receiving: +{after - before} updates")
        assert after > before, "SCADA must survive a crashed leader"

        # Phase 3: the replica recovers and state-transfers in.
        print(f"[t={sim.now:5.2f}s] phase 3: recovering replica-0")
        system.net.recover("replica-0")
        yield sim.timeout(3.0)
        transfers = system.replicas[0].state_transfer.completed
        print(f"[t={sim.now:5.2f}s]   state transfers completed: {transfers}")

        # Phase 4: attacker drops WriteValue messages to the Frontend.
        print(f"[t={sim.now:5.2f}s] phase 4: dropping WriteValue towards the field")
        rule = system.net.faults.add(Drop(dst="frontend-0", kind="WriteValue"))
        started = sim.now
        result = yield system.hmi.write("plant.relief-valve", 1)
        print(
            f"[t={sim.now:5.2f}s]   write unblocked after "
            f"{sim.now - started:.2f}s: success={result.success} "
            f"({result.reason})"
        )
        assert not result.success and "logical timeout" in result.reason
        system.net.faults.remove(rule)
        result = yield system.hmi.write("plant.relief-valve", 1)
        print(f"[t={sim.now:5.2f}s]   retried without attacker: success={result.success}")
        assert result.success

        # Phase 5: stop the workload and wait until the recovered replica
        # has fully caught up (state transfer chases a moving target while
        # updates keep flowing).
        feeding["on"] = False
        for _ in range(60):
            yield sim.timeout(0.5)
            decided = {r.last_decided for r in system.replicas}
            executed = {r.executed_cid for r in system.replicas}
            if len(decided) == 1 and len(executed) == 1:
                break
        return True

    sim.run_process(drill(), until=240)

    digests = set(system.state_digests())
    print(f"\nphase 5: replica state digests identical: {len(digests) == 1}")
    assert len(digests) == 1


if __name__ == "__main__":
    main()
