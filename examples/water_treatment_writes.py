"""Water treatment: operator writes, authorization and audited commands.

A water tank behind an RTU; the replicated Master guards the pump with a
Block handler (only the shift chief may switch it) and audits every
completed write as an AE event. Demonstrates the paper's Write-value use
case (§II-B-b) including the *double reply* on denial: the operator gets
a failed WriteResult over DA and the reason as an EventUpdate over AE.

Run:  python examples/water_treatment_writes.py
"""

from repro.core import build_smartscada, make_network
from repro.neoscada import RTU, Block, HandlerChain, Monitor, Scale
from repro.neoscada.field import WaterTank
from repro.neoscada.field.watertank import LEVEL, PUMP, VALVE
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=21)
    net = make_network(sim)
    system = build_smartscada(sim, net=net)
    for proxy_master in system.proxy_masters:
        proxy_master.master.audit_writes = True  # audit successful writes too

    RTU(
        sim,
        net,
        "rtu-tank",
        process=WaterTank(initial_level_mm=2500, noise=0.0),
        step_interval=0.5,
        writable_registers=(PUMP, VALVE),
    )
    system.frontend.add_item("tank.level", rtu="rtu-tank", register=LEVEL)
    system.frontend.add_item("tank.pump", rtu="rtu-tank", register=PUMP, writable=True)
    system.frontend.add_item("tank.valve", rtu="rtu-tank", register=VALVE, writable=True)

    system.attach_handlers(
        "tank.level",
        lambda: HandlerChain([Scale(factor=0.001), Monitor(high=4.5, low=0.5)]),
    )
    # Only the shift chief may touch the pump; anyone may set the valve
    # within 0..100%.
    system.attach_handlers(
        "tank.pump", lambda: HandlerChain([Block(allowed_operators=("chief",))])
    )

    def valve_range(value, ctx):
        ok = isinstance(value.value, int) and 0 <= value.value <= 100
        return ok, "" if ok else f"valve setting {value.value!r} outside 0..100%"

    system.attach_handlers("tank.valve", lambda: HandlerChain([Block(predicate=valve_range)]))
    system.start()

    def shift():
        yield sim.timeout(2.0)
        print(f"tank level: {system.hmi.value_of('tank.level'):.3f} m")

        # 1. A regular operator tries to stop the pump: denied, with the
        #    reason arriving over *both* DA and AE (the double reply).
        system.hmi.operator = "operator-1"
        result = yield system.hmi.write("tank.pump", 0)
        print(f"operator-1 pump stop -> success={result.success} ({result.reason})")
        yield sim.timeout(0.5)
        denials = [e for e in system.hmi.events if e.event_type == "write-denied"]
        print(f"write-denied events at the HMI: {len(denials)}")

        # 2. An out-of-range valve command trips the interlock predicate.
        result = yield system.hmi.write("tank.valve", 250)
        print(f"operator-1 valve 250% -> success={result.success} ({result.reason})")

        # 3. The chief stops the pump; the write reaches the RTU and is
        #    audited in the Master's event storage.
        system.hmi.operator = "chief"
        result = yield system.hmi.write("tank.pump", 0)
        print(f"chief pump stop -> success={result.success}")
        yield sim.timeout(5.0)
        print(f"tank level after pump stop: {system.hmi.value_of('tank.level'):.3f} m")
        return True

    sim.run_process(shift(), until=120)

    storage = system.masters[0].storage
    print()
    print("Master event log (all replicas identical):")
    for event in storage.to_tuple():
        print(f"  [{event.timestamp:7.3f}] {event.event_type:16s} "
              f"{event.item_id:12s} {event.message}")
    assert len(set(system.state_digests())) == 1


if __name__ == "__main__":
    main()
