"""Power-grid monitoring: the paper's motivating domain, end to end.

A medium-voltage substation with three feeders, each behind its own RTU
running a physical feeder model. The Frontend polls the RTUs over the
Modbus-style protocol; the replicated SCADA Master scales raw register
values into engineering units, watches them with Monitor handlers, and
the HMI trips a breaker when a feeder goes over-current — the classic
supervisory control loop, running on top of Byzantine agreement.

(The paper validated its workload with "the staff of an electrical
company that runs a country-scale SCADA"; this example is that setting
in miniature.)

Run:  python examples/power_grid_monitoring.py
"""

from repro.core import build_smartscada, make_network
from repro.neoscada import RTU, HandlerChain, Monitor, Scale, TrendRecorder
from repro.neoscada.field import PowerFeeder
from repro.neoscada.field.powergrid import BREAKER, CURRENT, VOLTAGE
from repro.sim import Simulator

FEEDERS = ("north", "east", "south")


def main() -> None:
    sim = Simulator(seed=7)
    net = make_network(sim)
    system = build_smartscada(sim, net=net)

    # Field layer: one RTU per feeder, each with its own physics. The
    # east feeder carries a heavier, spikier load — it will alarm.
    profiles = {
        "north": PowerFeeder(base_current=40.0, load_swing=0.2),
        "east": PowerFeeder(base_current=55.0, load_swing=0.6, day_length=30.0),
        "south": PowerFeeder(base_current=35.0, load_swing=0.3),
    }
    for name in FEEDERS:
        RTU(
            sim,
            net,
            f"rtu-{name}",
            process=profiles[name],
            step_interval=0.25,
            writable_registers=(BREAKER,),
        )
        system.frontend.add_item(f"{name}.voltage", rtu=f"rtu-{name}", register=VOLTAGE)
        system.frontend.add_item(f"{name}.current", rtu=f"rtu-{name}", register=CURRENT)
        system.frontend.add_item(
            f"{name}.breaker", rtu=f"rtu-{name}", register=BREAKER, writable=True
        )
        # Registers are decivolts/deciamps: scale to engineering units,
        # then alarm on over-current (> 70 A).
        system.attach_handlers(
            f"{name}.voltage", lambda: HandlerChain([Scale(factor=0.1)])
        )
        system.attach_handlers(
            f"{name}.current",
            lambda: HandlerChain([Scale(factor=0.1), Monitor(high=70.0)]),
        )
    system.start()
    trends = TrendRecorder(system.hmi)  # HD subsystem: record what we see

    tripped = []

    def operator_console():
        """Supervisory loop: trip any feeder that alarms on over-current."""
        while True:
            yield sim.timeout(0.5)
            for alarm in system.hmi.alarms():
                feeder = alarm.item_id.split(".")[0]
                if feeder not in tripped:
                    print(f"[t={sim.now:6.2f}s] ALARM {alarm.item_id}: {alarm.message}")
                    tripped.append(feeder)
                    result = yield system.hmi.write(f"{feeder}.breaker", 0)
                    print(
                        f"[t={sim.now:6.2f}s] breaker trip on {feeder!r}: "
                        f"{'ok' if result.success else result.reason}"
                    )

    sim.process(operator_console())

    def report():
        for tick in range(6):
            yield sim.timeout(5.0)
            readings = ", ".join(
                f"{name}: {system.hmi.value_of(f'{name}.current') or 0:5.1f} A"
                for name in FEEDERS
            )
            print(f"[t={sim.now:6.2f}s] currents  {readings}")
        return True

    sim.run_process(report(), until=60)

    print()
    print("trend summary (10s buckets, north feeder current):")
    for bucket in trends.archive.trend("north.current", 10.0):
        print(
            f"  t={bucket.start:5.0f}s  min={bucket.minimum:5.1f}  "
            f"mean={bucket.mean:5.1f}  max={bucket.maximum:5.1f} A"
        )
    print()
    print(f"feeders tripped          : {tripped}")
    print(f"alarms logged at the HMI : {len(system.hmi.alarms())}")
    events = system.masters[0].storage.query(event_type="alarm")
    print(f"alarms in Master storage : {len(events)}")
    print(
        "replica states identical :",
        len(set(system.state_digests())) == 1,
    )
    assert tripped, "expected the east feeder to trip"


if __name__ == "__main__":
    main()
