"""Ablation: consensus pipelining (``pipeline_depth``).

With ``pipeline_depth=1`` Mod-SMaRt runs one instance at a time — the
strictly sequential ordering the paper's evaluation used. The pipelined
leader instead keeps a window of instances in flight and the replicas
release decisions strictly in cid order, so ordering throughput stops
being capped at one batch per consensus round-trip.

Two sweeps expose the knob:

* **Bare library** — echo service under an offered load that the
  sequential ordering cannot absorb (small batches over a 1 ms-hop
  network). Depth 1 caps at ``batch_max / instance-RTT``; each extra
  in-flight slot adds roughly one more batch per round-trip until the
  offered load (or the execution stage) binds.
* **Figure 8(a)-style updates** — the integrated SMaRt-SCADA update
  path, pushed into the ordering-bound regime (2 ms hops, small
  batches). Depth 1 drops updates on the floor; depth 4 restores the
  offered rate. On the paper's own LAN point (0.25 ms hops, batch 200)
  ordering is *not* the bottleneck, which is why ``pipeline_depth=1``
  reproduces Figure 8 unchanged.

The measured curve is recorded under the ``pipeline_ablation`` key of
``BENCH_PERF.json``, next to the hot-path pipelines.
"""

import pathlib

from conftest import once, print_table

from repro.bftsmart import EchoService, GroupConfig, build_group, build_proxy
from repro.core import SmartScadaConfig
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.workloads import (
    LatencyRecorder,
    ThroughputMeter,
    run_update_experiment,
    write_report,
)

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PERF.json"

DEPTHS = (1, 2, 4, 8)

# Bare-library sweep: 1 ms hops make one instance cost ~3 ms, and
# batch_max=8 keeps batching from hiding it — sequential ordering caps
# near 8/3ms ~ 2.7k req/s, far below the offered load.
LIB_OFFERED = 8_000.0
LIB_HOP = 0.001
LIB_BATCH_MAX = 8
LIB_WARMUP = 0.2
LIB_WINDOW = 0.5

# Integrated sweep: same idea at the SCADA level (2 ms hops, batch 4:
# sequential ordering caps near 4/6ms ~ 660 updates/s) with the
# Figure 8(a) update workload offered just under the Master's own
# execution ceiling, so ordering is the only bottleneck in play.
FIG_OFFERED = 900.0
FIG_HOP = 0.002
FIG_BATCH_MAX = 4


def run_library_point(depth: int):
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(LIB_HOP))
    keystore = KeyStore()
    config = GroupConfig(
        n=4,
        f=1,
        batch_max=LIB_BATCH_MAX,
        batch_wait=0.0005,
        pipeline_depth=depth,
    )
    replicas = build_group(sim, net, config, EchoService, keystore)
    proxy = build_proxy(sim, net, "load-client", config, keystore, invoke_timeout=30.0)

    latencies = LatencyRecorder()
    recording = {"on": False}

    def firehose():
        interval = 1.0 / LIB_OFFERED
        while True:
            started = sim.now
            event = proxy.invoke_ordered(b"x" * 256)

            def on_done(ev, started=started):
                ev.defused = True
                if recording["on"]:
                    latencies.record(sim.now - started)

            event.add_callback(on_done)
            yield sim.timeout(interval)

    sim.process(firehose())
    meter = ThroughputMeter(sim, lambda: replicas[0].stats["executed"])
    sim.run(until=LIB_WARMUP)
    meter.open_window()
    recording["on"] = True
    sim.run(until=LIB_WARMUP + LIB_WINDOW)
    meter.close_window()
    recording["on"] = False
    pipeline = sim.stats()[f"pipeline.{replicas[0].address}"]
    return {
        "throughput": meter.rate,
        "latency_mean_s": latencies.mean,
        "instances": replicas[0].stats["decided"],
        "occupancy_mean": pipeline["occupancy_mean"],
        "occupancy_peak": pipeline["occupancy_peak"],
    }


def run_fig8a_point(depth: int):
    result = run_update_experiment(
        "smartscada",
        rate=FIG_OFFERED,
        duration=2.0,
        warmup=0.5,
        config=SmartScadaConfig(
            batch_max=FIG_BATCH_MAX,
            pipeline_depth=depth,
            invoke_timeout=30.0,
        ),
        hop_latency=FIG_HOP,
    )
    return {
        "throughput": result.throughput,
        "latency_p50_s": result.latency.get("p50"),
        "latency_mean_s": result.latency.get("mean"),
    }


def test_pipeline_ablation(benchmark):
    def sweep():
        return (
            {d: run_library_point(d) for d in DEPTHS},
            {d: run_fig8a_point(d) for d in (1, 4)},
        )

    library, fig8a = once(benchmark, sweep)

    print_table(
        f"Ablation — consensus pipelining (bare library, offered {LIB_OFFERED:.0f}/s,"
        f" {LIB_HOP * 1000:.0f} ms hops, batch_max {LIB_BATCH_MAX})",
        ["depth", "throughput (req/s)", "mean latency (ms)", "occupancy mean/peak"],
        [
            [
                str(d),
                f"{p['throughput']:.0f}",
                f"{p['latency_mean_s'] * 1000:.1f}",
                f"{p['occupancy_mean']:.2f}/{p['occupancy_peak']}",
            ]
            for d, p in library.items()
        ],
    )
    print_table(
        f"Ablation — consensus pipelining (Fig 8(a)-style updates, offered"
        f" {FIG_OFFERED:.0f}/s, {FIG_HOP * 1000:.0f} ms hops, batch_max {FIG_BATCH_MAX})",
        ["depth", "delivered (ops/s)", "p50 latency (ms)"],
        [
            [
                str(d),
                f"{p['throughput']:.0f}",
                f"{(p['latency_p50_s'] or 0) * 1000:.1f}",
            ]
            for d, p in fig8a.items()
        ],
    )

    write_report(
        {
            "pipeline_ablation": {
                "description": (
                    "Throughput/latency vs pipeline_depth. 'library' is the "
                    "bare replication stack (echo service) under an "
                    "ordering-bound load; 'fig8a_update_style' is the "
                    "integrated update path in the same regime. depth 1 is "
                    "the sequential ordering every Figure 8 number uses."
                ),
                "library": {
                    "offered_rate": LIB_OFFERED,
                    "hop_latency_s": LIB_HOP,
                    "batch_max": LIB_BATCH_MAX,
                    "depths": {str(d): p for d, p in library.items()},
                },
                "fig8a_update_style": {
                    "offered_rate": FIG_OFFERED,
                    "hop_latency_s": FIG_HOP,
                    "batch_max": FIG_BATCH_MAX,
                    "depths": {str(d): p for d, p in fig8a.items()},
                },
            }
        },
        str(REPORT_PATH),
    )

    # The pipeline must genuinely open up: at depth 4 the leader keeps
    # several instances in flight at once...
    assert library[4]["occupancy_peak"] >= 3
    assert library[1]["occupancy_peak"] <= 1
    # ...and that translates into ordering throughput: each depth step
    # up to saturation buys a near-multiplicative win over sequential.
    assert library[2]["throughput"] >= 1.5 * library[1]["throughput"]
    assert library[4]["throughput"] >= 2.0 * library[1]["throughput"]
    # Deeper than the load needs must not hurt.
    assert library[8]["throughput"] >= 0.95 * library[4]["throughput"]
    # Draining the ordering backlog also collapses queueing latency.
    assert library[4]["latency_mean_s"] < library[1]["latency_mean_s"]
    # The integrated Figure 8(a)-style point shows the same shape:
    # depth >= 4 delivers a measurable win over the sequential ordering.
    assert fig8a[4]["throughput"] >= 1.15 * fig8a[1]["throughput"]
    assert fig8a[4]["throughput"] >= FIG_OFFERED * 0.9
