"""Recovery benchmark: restart-from-disk vs snapshot-only rejoin.

The durable-storage tentpole's payoff, measured the way Figure 8(c)
measures the write path — two identically-seeded deployments, one
recovery strategy each:

``restart-from-disk``
    the crashed replica reboots from an intact disk (newest checkpoint +
    WAL-tail replay) and fetches only the suffix it missed through the
    *partial* state transfer;
``snapshot-only``
    the same crash with a wiped disk: the replica comes back amnesiac
    and ships the full checkpoint snapshot + decided log from a peer —
    exactly what every recovery cost before this PR.

Both axes of the claim are asserted and recorded in
``BENCH_RECOVERY.json``: time-to-rejoin (simulated seconds from reboot
to caught-up) and bytes shipped over the network. A second test sweeps
the WAL fsync policies and records the barrier-count / durability-lag
trade-off from the ``Simulator.stats()`` storage counters.
"""

from __future__ import annotations

import json
import pathlib

from conftest import once, print_table

from repro.core import SmartScadaConfig, build_smartscada
from repro.core.recovery import restart_replica
from repro.neoscada import HandlerChain, Monitor
from repro.net import LanLatency, Network
from repro.sim import Simulator
from repro.storage import FSYNC_POLICIES

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_RECOVERY.json"

HISTORY = 60  # decisions before the crash
OUTAGE = 10  # decisions the victim misses while down
VICTIM = 2
#: A constrained SCADA backhaul (10 Mbit/s) instead of the default
#: gigabit LAN: recovery time is then dominated by the bytes shipped,
#: which is exactly the axis the two strategies differ on.
BANDWIDTH = 1_250_000.0


def _update_report(section: str, payload) -> None:
    report = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def _build(policy="every-decision"):
    config = SmartScadaConfig(
        durability=True, checkpoint_interval=25, fsync_policy=policy
    )
    sim = Simulator(seed=11)
    net = Network(
        sim,
        latency=LanLatency(
            base=0.0003,
            jitter=0.00006,
            bandwidth=BANDWIDTH,
            rng=sim.rng.stream("net.jitter"),
        ),
    )
    system = build_smartscada(sim, net=net, config=config)
    system.frontend.add_item("sensor", initial=0)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()

    def reconfigure(proxy_master):
        proxy_master.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))

    return sim, system, reconfigure


def _feed(sim, system, count, base=120):
    for i in range(count):
        system.frontend.inject_update("sensor", base + i)  # >100: alarms
        sim.run(until=sim.now + 0.02)


def _measure_recovery(disk: str) -> dict:
    sim, system, reconfigure = _build()
    _feed(sim, system, HISTORY)
    system.proxy_masters[VICTIM].replica.halt()
    system.durable_storage[VICTIM].crash(disk)
    _feed(sim, system, OUTAGE)

    target = max(
        pm.replica.last_decided
        for pm in system.proxy_masters
        if pm.replica.active
    )
    rebooted_at = sim.now
    fresh = restart_replica(
        system, VICTIM, disk_fault=None, handler_config=reconfigure
    )
    deadline = sim.now + 30.0
    while fresh.replica.last_decided < target and sim.now < deadline:
        sim.run(until=sim.now + 0.0002)
    assert fresh.replica.last_decided >= target, "never rejoined"
    rejoin_time = sim.now - rebooted_at

    # Converged for real, not just caught up on cids.
    _feed(sim, system, 5, base=10)
    sim.run(until=sim.now + 1.0)
    assert len(set(system.state_digests())) == 1

    transfer = fresh.replica.state_transfer
    recovered = fresh.replica.recovered_from_disk
    counters = sim.stats()["storage"][fresh.replica.address]
    return {
        "disk": disk,
        "time_to_rejoin_s": round(rejoin_time, 6),
        "bytes_shipped": transfer.bytes_installed,
        "bytes_replayed_from_disk": counters["bytes_replayed"],
        "full_installs": transfer.full_installs,
        "partial_installs": transfer.partial_installs,
        "checkpoint_cid_on_disk": recovered.checkpoint_cid,
        "wal_entries_replayed": len(recovered.entries),
    }


def test_restart_from_disk_beats_snapshot_only(benchmark):
    results = once(
        benchmark,
        lambda: {
            "restart_from_disk": _measure_recovery("intact"),
            "snapshot_only": _measure_recovery("wiped"),
        },
    )
    durable = results["restart_from_disk"]
    snapshot = results["snapshot_only"]
    results["speedup"] = round(
        snapshot["time_to_rejoin_s"] / durable["time_to_rejoin_s"], 3
    )
    results["bytes_ratio"] = round(
        snapshot["bytes_shipped"] / durable["bytes_shipped"], 3
    )
    _update_report("recovery", results)

    print_table(
        "crash recovery — restart-from-disk vs snapshot-only",
        ["strategy", "rejoin (s)", "bytes shipped", "replayed from disk",
         "installs"],
        [
            [
                "restart-from-disk (intact)",
                f"{durable['time_to_rejoin_s']:.4f}",
                durable["bytes_shipped"],
                durable["bytes_replayed_from_disk"],
                f"{durable['partial_installs']} partial",
            ],
            [
                "snapshot-only (wiped)",
                f"{snapshot['time_to_rejoin_s']:.4f}",
                snapshot["bytes_shipped"],
                snapshot["bytes_replayed_from_disk"],
                f"{snapshot['full_installs']} full",
            ],
        ],
    )
    print(f"speedup: {results['speedup']}x, "
          f"bytes ratio: {results['bytes_ratio']}x")

    # The acceptance criteria, verbatim: the durable path rejoins through
    # WAL replay + log-tail transfer only, faster and smaller.
    assert durable["full_installs"] == 0
    assert durable["partial_installs"] >= 1
    assert durable["wal_entries_replayed"] > 0
    assert durable["bytes_shipped"] < snapshot["bytes_shipped"]
    assert durable["time_to_rejoin_s"] < snapshot["time_to_rejoin_s"]
    # The wiped path really did ship a snapshot.
    assert snapshot["full_installs"] >= 1
    assert snapshot["bytes_replayed_from_disk"] == 0


def test_fsync_policy_overhead(benchmark):
    def sweep():
        rows = {}
        for policy in FSYNC_POLICIES:
            sim, system, _ = _build(policy=policy)
            _feed(sim, system, HISTORY)
            counters = sim.stats()["storage"]
            total = {
                "fsyncs": sum(c["fsyncs"] for c in counters.values()),
                "appends": sum(c["appends"] for c in counters.values()),
                "bytes_written": sum(
                    c["bytes_written"] for c in counters.values()
                ),
                "busy_time_s": round(
                    sum(c["busy_time"] for c in counters.values()), 6
                ),
            }
            rows[policy] = total
        return rows

    rows = once(benchmark, sweep)
    _update_report("fsync_policies", rows)
    print_table(
        "WAL fsync policies — barrier cost for the same history",
        ["policy", "fsyncs", "appends", "bytes written", "disk busy (s)"],
        [
            [policy, r["fsyncs"], r["appends"], r["bytes_written"],
             f"{r['busy_time_s']:.4f}"]
            for policy, r in rows.items()
        ],
    )
    # Same durable history, strictly decreasing barrier counts.
    assert (
        rows["every-decision"]["fsyncs"]
        > rows["every-n"]["fsyncs"]
        > rows["checkpoint-only"]["fsyncs"]
    )
    # The appends are identical — the policy only moves the barriers.
    assert len({r["appends"] for r in rows.values()}) == 1
