"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artefacts
(Figure 8's three panels, the message-flow step counts of Figures 3/4/6/7,
the §V-B BFT-SMaRt microbenchmark claim, the §IV-D liveness property) or
an ablation of a design decision. Simulations are deterministic, so each
measurement runs once (``rounds=1``) and the interesting output is the
paper-style table printed at the end, plus shape assertions.
"""

from __future__ import annotations


def print_table(title: str, header: list, rows: list) -> None:
    """Print a paper-style result table."""
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    box = {}

    def runner():
        box["result"] = fn()

    benchmark.pedantic(runner, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


def role_of(address: str) -> str:
    """Map a network address onto its architectural role (for step counts)."""
    if address.endswith("-adapter"):
        return "adapter-client"
    if address.endswith("-bft"):
        base = address[: -len("-bft")]
        return f"{role_of(base)}-client"
    if address.startswith("replica-"):
        return "proxy-master"
    if address.startswith("scada-master"):
        return "master"
    if address.startswith("proxy-frontend"):
        return "proxy-frontend"
    if address.startswith("proxy-hmi"):
        return "proxy-hmi"
    if address.startswith("frontend"):
        return "frontend"
    if address.startswith("rtu"):
        return "rtu"
    if address.startswith("hmi"):
        return "hmi"
    return address


def flow_stages(trace) -> list:
    """Collapse a hop trace into the ordered distinct (kind, src→dst) stages.

    This is the simulated counterpart of the numbered arrows in the
    paper's message-flow figures: broadcast fan-out (one PROPOSE to three
    replicas) is one stage, as the paper counts it.
    """
    stages = []
    for hop in trace.hops:
        stage = (hop.kind, role_of(hop.src), role_of(hop.dst))
        if not stages or stages[-1] != stage:
            if stage not in stages:
                stages.append(stage)
    return stages
