"""Ablation: end-to-end update latency (Frontend sensor → HMI screen).

The paper reports throughput only; operators also care how *stale* a
reading is when it reaches the screen. This ablation measures the
sensor-to-HMI latency of both systems below saturation — the price of
the 3 → 9 communication steps (Figures 3 vs 6) in time rather than
throughput.
"""

from conftest import once, print_table

from repro.workloads import run_update_experiment

RATE = 500.0  # below both systems' capacity: pure pipeline latency


def test_update_latency(benchmark):
    results = once(
        benchmark,
        lambda: {
            system: run_update_experiment(
                system, rate=RATE, duration=2.0, warmup=0.5
            )
            for system in ("neoscada", "smartscada")
        },
    )
    rows = []
    for system, result in results.items():
        rows.append(
            [
                system,
                f"{result.latency['mean'] * 1000:.2f}",
                f"{result.latency['p50'] * 1000:.2f}",
                f"{result.latency['p99'] * 1000:.2f}",
            ]
        )
    print_table(
        f"Ablation — sensor-to-HMI update latency at {RATE:.0f} updates/s (ms)",
        ["system", "mean", "p50", "p99"],
        rows,
    )
    neo = results["neoscada"].latency
    smart = results["smartscada"].latency
    # The replicated pipeline (9 steps + agreement + voting) costs a few
    # extra milliseconds — noticeable, but far below any operational
    # staleness threshold (seconds).
    assert smart["mean"] > neo["mean"]
    assert smart["mean"] < neo["mean"] + 0.015
    assert smart["p99"] < 0.05
