"""Ablation: wide-area deployment (the Spire comparison angle).

The related work (§VI) discusses Spire, which spreads replicas across
control centers and data centers over a WAN. This ablation re-runs both
use cases with per-hop latencies from LAN (0.25 ms) to continental WAN
(20 ms): the open-loop update path degrades gracefully (throughput is
CPU-bound, only staleness grows), while the closed-loop write path —
with its two Byzantine agreements — pays the full round-trip bill, which
is exactly the cost Spire's architecture optimizes.
"""

from conftest import once, print_table

from repro.core import SmartScadaConfig, build_smartscada, make_network
from repro.sim import Simulator
from repro.workloads import ThroughputMeter, UpdateWorkload, WriteWorkload

HOP_LATENCIES = (0.00025, 0.002, 0.020)
UPDATE_RATE = 500.0


def run_point(hop_latency: float):
    sim = Simulator(seed=1)
    net = make_network(sim, hop_latency=hop_latency)
    system = build_smartscada(sim, net=net, config=SmartScadaConfig())
    item_ids = [f"sensor-{i}" for i in range(10)]
    for item_id in item_ids:
        system.frontend.add_item(item_id, initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()

    # Updates: open loop at half capacity.
    updates = UpdateWorkload(sim, system.frontend, item_ids, rate=UPDATE_RATE)
    meter = ThroughputMeter(sim, lambda: system.hmi.stats["updates"])
    updates.start(duration=2.0)
    sim.run(until=sim.now + 0.5)
    meter.open_window()
    sim.run(until=sim.now + 1.5)
    meter.close_window()
    updates.stop()
    sim.run(until=sim.now + 1.0)

    # Writes: closed loop.
    writes = WriteWorkload(sim, system.hmi, "actuator")
    writes.start(duration=2.0)
    sim.run(stop_on=writes.done, until=sim.now + 60)
    return meter.rate, writes.latencies.mean, writes.completed / 2.0


def test_wan_deployment(benchmark):
    results = once(
        benchmark, lambda: {h: run_point(h) for h in HOP_LATENCIES}
    )
    rows = []
    for hop, (update_rate, write_latency, write_rate) in results.items():
        rows.append(
            [
                f"{hop * 1000:.2f}",
                f"{update_rate:.0f}",
                f"{write_latency * 1000:.1f}",
                f"{write_rate:.0f}",
            ]
        )
    print_table(
        "Ablation — per-hop latency sweep (LAN -> WAN)",
        ["hop (ms)", "updates/s delivered", "write latency (ms)", "writes/s"],
        rows,
    )
    lan = results[HOP_LATENCIES[0]]
    wan = results[HOP_LATENCIES[-1]]
    # Open-loop updates: throughput unaffected by latency (pipeline).
    assert wan[0] >= lan[0] * 0.95
    # Closed-loop writes: the ~16-step path pays every hop; 20 ms hops
    # push one write into the hundreds of milliseconds.
    assert wan[1] > 0.1
    assert wan[2] < lan[2] * 0.2