"""Mean-time-to-recovery of the closed-loop self-healing subsystem.

For each of the five Byzantine replica behaviours, a seeded chaos
campaign plants the compromise at t=1.2s with healing enabled
(zero-trust policy: confirmed Byzantine replicas are evicted). The
:class:`~repro.chaos.monitors.MttrMonitor` correlates the planted
ground truth with the first detection and the completed recovery
action; the :class:`~repro.chaos.monitors.AvailabilityMonitor` samples
operator-write throughput so the pre-attack, under-attack and
post-heal rates can be compared.

Acceptance (the ISSUE's bar): every behaviour is evicted and replaced
with all safety/liveness monitors green, post-heal throughput recovers
to >= 90% of the pre-attack rate, and no unsafe action is ever taken
(every completed action passed the 2f+1 quorum guard). Results land in
``BENCH_MTTR.json``.
"""

from __future__ import annotations

import pathlib
from dataclasses import replace as dc_replace

from conftest import once, print_table

from repro.chaos import (
    AvailabilityMonitor,
    MttrMonitor,
    Schedule,
    SwapByzantine,
    run_campaign,
)
from repro.chaos.campaign import CampaignConfig
from repro.chaos.monitors import default_monitors
from repro.heal import HealConfig
from repro.workloads.profiler import write_report

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_MTTR.json"

SEED = 3
ATTACK_AT = 1.2
BEHAVIOURS = ("silent", "stuttering", "lying", "falsifying", "equivocating")

#: Dense operator writes: the availability series needs enough samples
#: inside each phase to yield a meaningful rate.
BASE = CampaignConfig(
    seed=SEED,
    heal=True,
    heal_config=HealConfig.zero_trust(),
    write_interval=0.25,
)


def run_drill(behaviour: str) -> dict:
    index = 0 if behaviour == "equivocating" else 2
    schedule = Schedule([
        SwapByzantine(at=ATTACK_AT, index=index, behaviour=behaviour),
    ])
    mttr = MttrMonitor()
    avail = AvailabilityMonitor()
    report = run_campaign(
        schedule, BASE, monitors=default_monitors() + [mttr, avail]
    )
    assert report.ok, report.violations
    assert report.evictions == 1

    measurement = next(
        m for m in mttr.measurements if m["behaviour"] == behaviour
    )
    healed_at = measurement["healed_at"]
    assert healed_at is not None

    end = avail.samples[-1][0]
    pre = avail.rate(0.2, ATTACK_AT)
    during = avail.rate(ATTACK_AT, healed_at)
    post = avail.rate(healed_at + 0.3, end)
    recovered = post / pre if pre > 0 else 0.0

    #: "Unsafe" = an action that went ahead despite guard blockers, or
    #: any completed action beyond the single planned eviction.
    completed = [
        a for a in report.heal_actions if a["outcome"] == "completed"
    ]
    assert [a["kind"] for a in completed] == ["evict"]

    return {
        "behaviour": behaviour,
        "detect_latency_s": round(measurement["detect_latency"], 4),
        "heal_latency_s": round(measurement["heal_latency"], 4),
        "ops_pre": round(pre, 3),
        "ops_during": round(during, 3),
        "ops_post": round(post, 3),
        "recovered": round(recovered, 4),
        "evictions": report.evictions,
        "blocked": sum(
            1 for a in report.heal_actions if a["outcome"] == "blocked"
        ),
    }


def test_heal_mttr(benchmark):
    results = once(benchmark, lambda: [run_drill(b) for b in BEHAVIOURS])

    print_table(
        "closed-loop recovery: time-to-detect / time-to-heal "
        f"(seed {SEED}, attack at t={ATTACK_AT}s)",
        ["behaviour", "detect", "heal", "ops/s pre", "ops/s during",
         "ops/s post", "recovered"],
        [
            [
                r["behaviour"],
                f"{r['detect_latency_s']:.2f}s",
                f"{r['heal_latency_s']:.2f}s",
                f"{r['ops_pre']:.2f}",
                f"{r['ops_during']:.2f}",
                f"{r['ops_post']:.2f}",
                f"{r['recovered'] * 100:.0f}%",
            ]
            for r in results
        ],
    )

    for r in results:
        assert r["evictions"] == 1, r
        assert r["recovered"] >= 0.9, r
        assert r["detect_latency_s"] <= r["heal_latency_s"], r

    write_report(
        {
            "mttr": {
                "seed": SEED,
                "attack_at_s": ATTACK_AT,
                "behaviours": {r["behaviour"]: r for r in results},
            }
        },
        str(REPORT_PATH),
    )
