"""Ablation: Mod-SMaRt request batching.

Batching is the library design decision that keeps agreement off the
critical path (DESIGN.md §2): the leader packs every pending request
into one PROPOSE, so consensus cost amortizes across the batch. At SCADA
load (1000 updates/s) the serial Master hides this; to expose it, this
ablation drives the bare replication stack (echo service) at 10k req/s —
with batch_max=1 the sequential consensus caps throughput at roughly
1/instance-latency, while real batching sustains the offered load.

It also confirms the SCADA-level observation: at 1000 updates/s the
integrated system's throughput is insensitive to batch_max, because the
Master, not agreement, is the bottleneck (§V-B).
"""

from conftest import once, print_table

from repro.bftsmart import EchoService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.workloads import ThroughputMeter

OFFERED = 10_000.0
WARMUP = 0.2
WINDOW = 0.5


def run_point(batch_max: int):
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.00025))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=batch_max, batch_wait=0.0005)
    replicas = build_group(sim, net, config, EchoService, keystore)
    proxy = build_proxy(sim, net, "load-client", config, keystore, invoke_timeout=10.0)

    def firehose():
        interval = 1.0 / OFFERED
        while True:
            event = proxy.invoke_ordered(b"x" * 64)
            event.add_callback(lambda ev: setattr(ev, "defused", True))
            yield sim.timeout(interval)

    sim.process(firehose())
    meter = ThroughputMeter(sim, lambda: replicas[0].stats["executed"])
    sim.run(until=WARMUP)
    meter.open_window()
    sim.run(until=WARMUP + WINDOW)
    meter.close_window()
    instances = replicas[0].stats["decided"]
    return meter.rate, instances


def test_batching_ablation(benchmark):
    results = once(benchmark, lambda: {b: run_point(b) for b in (1, 10, 500)})
    print_table(
        "Ablation — Mod-SMaRt batching (bare library, offered 10k req/s)",
        ["batch_max", "throughput (req/s)", "consensus instances"],
        [
            [str(b), f"{rate:.0f}", str(instances)]
            for b, (rate, instances) in results.items()
        ],
    )
    rate1, _inst1 = results[1]
    rate500, inst500 = results[500]
    # Unbatched consensus caps at ~1/instance-latency; batching recovers
    # nearly the full offered load with far fewer instances.
    assert rate500 > 3 * rate1
    assert rate500 >= OFFERED * 0.8
    assert inst500 < rate500 * WINDOW / 3
