"""Figures 4 vs 7: communication steps of one write operation.

The paper attributes Figure 8(c)'s 78% drop to "the additional 10
communications steps that our solution needs to perform the write
operation". One synchronous write is replayed through both systems with
tracing on; the flows and counts are printed and the blow-up asserted.
"""

from conftest import flow_stages, once, print_table

from repro.core import build_neoscada, build_smartscada, make_network
from repro.sim import Simulator


def trace_write(system_name):
    sim = Simulator(seed=1)
    net = make_network(sim, trace=True)
    if system_name == "neoscada":
        system = build_neoscada(sim, net=net)
    else:
        system = build_smartscada(sim, net=net)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    net.trace.clear()

    def operator():
        result = yield system.hmi.write("actuator", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert result.success
    return net.trace


def test_write_flow_steps(benchmark):
    traces = once(
        benchmark,
        lambda: {name: trace_write(name) for name in ("neoscada", "smartscada")},
    )
    neo_stages = flow_stages(traces["neoscada"])
    smart_stages = flow_stages(traces["smartscada"])
    print_table(
        "Figures 4 vs 7 — write value communication steps",
        ["system", "flow stages", "network hops", "paper steps"],
        [
            ["neoscada", len(neo_stages), traces["neoscada"].count(), "6"],
            ["smartscada", len(smart_stages), traces["smartscada"].count(), "16"],
        ],
    )
    print("\nNeoSCADA flow:")
    for stage in neo_stages:
        print(f"  {stage[1]} -> {stage[2]}: {stage[0]}")
    print("SMaRt-SCADA flow:")
    for stage in smart_stages:
        print(f"  {stage[1]} -> {stage[2]}: {stage[0]}")

    # Figure 4: HMI -> Master -> Frontend -> Master -> HMI.
    neo_kinds = [s[0] for s in neo_stages]
    assert neo_kinds.count("WriteValue") == 2
    assert neo_kinds.count("WriteResult") == 2
    # Figure 7: two Byzantine agreements (one per direction).
    smart_kinds = [s[0] for s in smart_stages]
    assert "Propose" in smart_kinds and "AcceptMsg" in smart_kinds
    request_stages = [s for s in smart_stages if s[0] == "ClientRequest"]
    assert len(request_stages) >= 2  # write in, write-result in
    # The paper's "+10 steps": the replicated flow has at least 10 more
    # distinct stages than the original.
    assert len(smart_stages) - len(neo_stages) >= 8
    assert traces["smartscada"].count() >= 5 * traces["neoscada"].count()
