"""Figure 8(c): Write-value use case throughput.

Paper setup: the HMI performs synchronous writes (closed loop).
NeoSCADA sustains ~450 writes/s; SMaRt-SCADA drops 78% to ~100/s,
explained by the 10 additional communication steps (Figures 4 vs 7) and
the single-threaded Master. The paper adds that ~100 commands/s is still
far beyond what human operators produce.
"""

from conftest import once, print_table

from repro.workloads import run_write_experiment

DURATION = 3.0


def run_both():
    neo = run_write_experiment("neoscada", duration=DURATION)
    smart = run_write_experiment("smartscada", duration=DURATION)
    return neo, smart


def test_fig8c_write_throughput(benchmark):
    neo, smart = once(benchmark, run_both)
    drop = smart.overhead_vs(neo)
    print_table(
        "Figure 8(c) — write value use case",
        ["system", "writes/s", "mean latency (ms)", "p99 (ms)", "paper"],
        [
            [
                "NeoSCADA",
                f"{neo.throughput:.0f}",
                f"{neo.latency['mean'] * 1000:.2f}",
                f"{neo.latency['p99'] * 1000:.2f}",
                "~450/s",
            ],
            [
                "SMaRt-SCADA",
                f"{smart.throughput:.0f}",
                f"{smart.latency['mean'] * 1000:.2f}",
                f"{smart.latency['p99'] * 1000:.2f}",
                "~100/s (-78%)",
            ],
        ],
    )
    print(f"overhead: {drop:.1%} (paper: 78%)")
    # Shape: a drastic drop in the 65–85% band, with NeoSCADA in the
    # hundreds and SMaRt-SCADA around one hundred.
    assert 0.65 <= drop <= 0.88
    assert neo.throughput > 250
    assert 60 <= smart.throughput <= 180
    # No write ever failed in the fault-free runs.
    assert neo.details["failed"] == 0
    assert smart.details["failed"] == 0


def test_fig8c_realistic_operator_headroom(benchmark):
    """§V-B: "virtually impossible for a group of human operators to
    perform almost 100 commands/second" — the replicated system still has
    orders of magnitude of headroom over a human operator crew (~1/s)."""
    smart = once(
        benchmark, lambda: run_write_experiment("smartscada", duration=DURATION)
    )
    print_table(
        "Write headroom vs. human operators",
        ["SMaRt-SCADA writes/s", "operator crew (est.)", "headroom"],
        [[f"{smart.throughput:.0f}", "~1/s", f"{smart.throughput:.0f}x"]],
    )
    assert smart.throughput > 50
