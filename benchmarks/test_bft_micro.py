"""§V-B claim: "BFT-SMaRt is not the bottleneck of our system".

The paper observes that the bare library reaches 16k requests/s for
1024-byte messages (Bessani et al., DSN'14) — two orders of magnitude
above SMaRt-SCADA's ~100 writes/s — so the SCADA serialization, not the
agreement protocol, limits the integrated system. This bench measures
our replication stack alone on an echo service with 1024-byte payloads
and checks the same two-orders-of-magnitude headroom over the measured
integrated write path.
"""

from conftest import once, print_table

from repro.bftsmart import EchoService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.workloads import ThroughputMeter, run_write_experiment

PAYLOAD = bytes(1024)
OFFERED_RATE = 25_000.0
WARMUP = 0.2
WINDOW = 0.6


def run_micro():
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.00025))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=500, batch_wait=0.001)
    replicas = build_group(sim, net, config, EchoService, keystore)
    proxy = build_proxy(sim, net, "load-client", config, keystore, invoke_timeout=5.0)

    def firehose():
        interval = 1.0 / OFFERED_RATE
        while True:
            event = proxy.invoke_ordered(PAYLOAD)
            event.add_callback(lambda ev: setattr(ev, "defused", True))
            yield sim.timeout(interval)

    sim.process(firehose())
    meter = ThroughputMeter(sim, lambda: replicas[0].stats["executed"])
    sim.run(until=WARMUP)
    meter.open_window()
    sim.run(until=WARMUP + WINDOW)
    meter.close_window()
    return meter.rate, replicas[0].stats


def test_bft_smart_alone_is_not_the_bottleneck(benchmark):
    library_rate, _stats = once(benchmark, run_micro)
    write = run_write_experiment("smartscada", duration=2.0)
    print_table(
        "§V-B — raw replication library vs integrated write path",
        ["measurement", "ops/s", "paper"],
        [
            ["bare library (1 KiB echo)", f"{library_rate:.0f}", "16k req/s"],
            ["SMaRt-SCADA writes", f"{write.throughput:.0f}", "~100/s"],
            [
                "headroom",
                f"{library_rate / max(write.throughput, 1):.0f}x",
                ">100x",
            ],
        ],
    )
    # The library alone sustains orders of magnitude more than the
    # integrated write path: the serialization bottleneck, not BFT,
    # limits SMaRt-SCADA.
    assert library_rate > 5_000
    assert library_rate > 50 * write.throughput
