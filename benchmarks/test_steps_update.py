"""Figures 3 vs 6: communication steps of one item update.

The paper explains Figure 8(a)'s overhead by step counts: "each
ItemUpdate message takes 3 communication steps to go from the Frontend
to the HMI, but in the SMaRt-SCADA the same operation takes 9 steps".
This bench replays a single update through each system with network
tracing on and counts (a) raw network hops and (b) distinct flow stages
(the numbered arrows of the figures; fan-out = one stage).
"""

from conftest import flow_stages, once, print_table

from repro.core import build_neoscada, build_smartscada, make_network
from repro.sim import Simulator


def trace_update(system_name):
    sim = Simulator(seed=1)
    net = make_network(sim, trace=True)
    if system_name == "neoscada":
        system = build_neoscada(sim, net=net)
    else:
        system = build_smartscada(sim, net=net)
    system.frontend.add_item("sensor", initial=0)
    system.start()
    net.trace.clear()  # drop setup traffic; trace only the update itself
    system.frontend.inject_update("sensor", 42)
    sim.run(until=sim.now + 1.0)
    assert system.hmi.value_of("sensor") == 42
    return net.trace


def test_update_flow_steps(benchmark):
    traces = once(
        benchmark,
        lambda: {name: trace_update(name) for name in ("neoscada", "smartscada")},
    )
    rows = []
    for name, trace in traces.items():
        stages = flow_stages(trace)
        rows.append([name, len(stages), trace.count(), "3" if name == "neoscada" else "9"])
    print_table(
        "Figures 3 vs 6 — item update communication steps",
        ["system", "flow stages", "network hops", "paper steps"],
        rows,
    )
    neo_stages = flow_stages(traces["neoscada"])
    smart_stages = flow_stages(traces["smartscada"])
    print("\nNeoSCADA flow:")
    for stage in neo_stages:
        print(f"  {stage[1]} -> {stage[2]}: {stage[0]}")
    print("SMaRt-SCADA flow:")
    for stage in smart_stages:
        print(f"  {stage[1]} -> {stage[2]}: {stage[0]}")

    # Figure 3: Frontend -> Master -> HMI (2 network stages; the paper's
    # third step is the Master-internal DA->AE transfer).
    assert [s[1:] for s in neo_stages if s[0] == "ItemUpdate"] == [
        ("frontend", "master"),
        ("master", "hmi"),
    ]
    # Figure 6: the replicated path inserts the proxies and the
    # three-phase Byzantine agreement.
    kinds = [s[0] for s in smart_stages]
    for required in ("ItemUpdate", "ClientRequest", "Propose", "WriteMsg", "AcceptMsg", "PushMessage"):
        assert required in kinds, f"missing stage {required}"
    assert len(smart_stages) >= 3 * len(neo_stages)
    # Raw hop blow-up: replication multiplies network messages ~20x.
    assert traces["smartscada"].count() >= 10 * traces["neoscada"].count()
