"""Ablation: polled (Modbus) vs event-driven (IEC-104) field protocols.

NeoSCADA supports multiple field protocols (paper §II); their traffic
characteristics differ sharply. A polled substation costs request+reply
per register run per poll interval whether anything changed or not; an
event-driven one pays one message per actual change. This ablation runs
the same feeder behind both protocols and counts field-side messages —
the kind of trade a SCADA integrator weighs when sizing serial links.
"""

from conftest import once, print_table

from repro.core import build_neoscada, make_network
from repro.neoscada import RTU, Iec104RTU
from repro.neoscada.field import PowerFeeder
from repro.sim import Simulator

DURATION = 30.0


def run_point(protocol: str):
    sim = Simulator(seed=3)
    net = make_network(sim, trace=True)
    system = build_neoscada(sim, net=net)
    # A quasi-static feeder: tiny load swing over a long period, no
    # noise — the registers genuinely change only a handful of times.
    feeder = PowerFeeder(noise=0.0, load_swing=0.03, day_length=300.0)
    if protocol == "modbus":
        RTU(sim, net, "field-rtu", process=feeder, step_interval=0.5)
        for register, name in ((0, "voltage"), (1, "current"), (2, "power")):
            system.frontend.add_item(f"feeder.{name}", rtu="field-rtu", register=register)
    else:
        Iec104RTU(
            sim, net, "field-rtu", process=feeder, step_interval=0.5, deadband=5
        )
        for ioa, name in ((0, "voltage"), (1, "current"), (2, "power")):
            system.frontend.add_iec104_item(f"feeder.{name}", "field-rtu", ioa)
    system.start()
    net.trace.clear()
    sim.run(until=sim.now + DURATION)
    field_messages = net.trace.count(dst="field-rtu") + net.trace.count(src="field-rtu")
    updates_at_hmi = system.hmi.stats["updates"]
    return field_messages, updates_at_hmi


def test_field_protocol_traffic(benchmark):
    results = once(
        benchmark, lambda: {p: run_point(p) for p in ("modbus", "iec104")}
    )
    print_table(
        f"Ablation — field protocol traffic over {DURATION:.0f}s "
        "(3-point feeder, slow drift)",
        ["protocol", "field-side messages", "HMI updates seen"],
        [
            [protocol, str(messages), str(updates)]
            for protocol, (messages, updates) in results.items()
        ],
    )
    modbus_msgs, modbus_updates = results["modbus"]
    iec_msgs, iec_updates = results["iec104"]
    # Event-driven transmission cuts field traffic substantially for a
    # quasi-static process (polling pays full price regardless)...
    assert iec_msgs < modbus_msgs * 0.6
    # ...while the HMI still tracks the process.
    assert iec_updates > 0 and modbus_updates > 0
