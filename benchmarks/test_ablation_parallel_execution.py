"""Ablation: parallel execution support (§VII-b future work, implemented).

The paper's closing discussion names the fix for the serialization
bottleneck: "a BFT library that supports multi-threading [...] or adding
parallel execution support to BFT-SMaRt (as recently done by Alchieri et
al.)". This repository implements that extension (lane-partitioned
execution, ``GroupConfig.execution_lanes``); the bench shows the
execution throughput of a CPU-bound partitioned service scaling with the
lane count, while a conflicting (barrier) workload stays serial.
"""

import zlib

from conftest import once, print_table

from repro.bftsmart import GroupConfig, KeyValueService, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode, encode

OP_COST = 0.001  # 1 ms of simulated CPU per operation
OPERATIONS = 120
KEYS = 16


class LanedKV(KeyValueService):
    def lane_of(self, operation):
        request = decode(operation)
        if request[0] in ("put", "get", "delete"):
            return zlib.crc32(request[1].encode("utf-8"))
        return None

    def cost_of(self, operation):
        return OP_COST


def run_point(lanes: int):
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.00025))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, execution_lanes=lanes)
    replicas = build_group(sim, net, config, LanedKV, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=10.0)

    def burst():
        events = [
            proxy.invoke_ordered(encode(("put", f"key-{i % KEYS}", i)))
            for i in range(OPERATIONS)
        ]
        yield sim.all_of(events)
        return sim.now

    completion = sim.run_process(burst(), until=sim.now + 120)
    states = {tuple(sorted(r.service.data.items())) for r in replicas}
    assert len(states) == 1, "replicas diverged under parallel execution"
    return OPERATIONS / completion


def test_parallel_execution_scaling(benchmark):
    results = once(benchmark, lambda: {lanes: run_point(lanes) for lanes in (1, 2, 4, 8)})
    serial = results[1]
    print_table(
        "Ablation — §VII-b parallel execution lanes "
        f"({OPERATIONS} ops x {OP_COST * 1000:.0f} ms over {KEYS} keys)",
        ["lanes", "throughput (ops/s)", "speedup"],
        [
            [str(lanes), f"{rate:.0f}", f"{rate / serial:.2f}x"]
            for lanes, rate in results.items()
        ],
    )
    # Near-serial bound at 1 lane; clear scaling by 4-8 lanes.
    assert serial <= 1.3 / OP_COST
    assert results[4] > 2.0 * serial
    assert results[8] >= results[4] * 0.9
