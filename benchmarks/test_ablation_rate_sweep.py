"""Ablation: offered-rate sweep (the capacity curve behind Figure 8a).

The paper measures one offered load (1000 updates/s). Sweeping the rate
shows the full picture: SMaRt-SCADA tracks the offered load up to its
serial-Master capacity (~940/s with the calibrated costs) and saturates
flat beyond it, while NeoSCADA's multi-threaded Master keeps up well
past the paper's workload.
"""

from conftest import once, print_table

from repro.workloads import run_update_experiment

RATES = (250.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0)


def test_offered_rate_sweep(benchmark):
    results = once(
        benchmark,
        lambda: {
            (system, rate): run_update_experiment(
                system, rate=rate, duration=2.0, warmup=0.5
            ).throughput
            for system in ("neoscada", "smartscada")
            for rate in RATES
        },
    )
    rows = []
    for rate in RATES:
        rows.append(
            [
                f"{rate:.0f}",
                f"{results[('neoscada', rate)]:.0f}",
                f"{results[('smartscada', rate)]:.0f}",
            ]
        )
    print_table(
        "Ablation — offered update rate sweep (ops/s delivered)",
        ["offered", "NeoSCADA", "SMaRt-SCADA"],
        rows,
    )
    # Below capacity both systems track the offered load.
    for rate in (250.0, 500.0, 750.0):
        assert results[("neoscada", rate)] >= rate * 0.97
        assert results[("smartscada", rate)] >= rate * 0.95
    # Beyond capacity SMaRt-SCADA saturates flat (~940/s) while NeoSCADA
    # keeps tracking well past the paper's workload.
    smart_saturated = [results[("smartscada", r)] for r in (1000.0, 1500.0, 2000.0)]
    assert max(smart_saturated) - min(smart_saturated) < 0.12 * max(smart_saturated)
    assert 850 <= smart_saturated[-1] <= 1000
    assert results[("neoscada", 2000.0)] >= 1900
