"""Figure 8(a): Update-value use case throughput.

Paper setup: the Frontend offers 1000 ItemUpdate/s (the Kirsch et al.
workload, "significantly above" a country-scale utility's real load);
NeoSCADA processes all of them, SMaRt-SCADA shows a ~6% drop caused by
the extra communication steps (3 → 9, Figures 3 vs 6).
"""

from conftest import once, print_table

from repro.workloads import run_update_experiment

OFFERED = 1000.0
DURATION = 3.0
WARMUP = 0.5


def test_fig8a_neoscada(benchmark):
    result = once(
        benchmark,
        lambda: run_update_experiment(
            "neoscada", rate=OFFERED, duration=DURATION, warmup=WARMUP
        ),
    )
    print_table(
        "Figure 8(a) — update value, NeoSCADA",
        ["system", "offered (ops/s)", "measured (ops/s)", "paper (ops/s)"],
        [["NeoSCADA", int(OFFERED), f"{result.throughput:.0f}", "~1000"]],
    )
    # NeoSCADA keeps up with the full offered load.
    assert result.throughput >= OFFERED * 0.98


def test_fig8a_smartscada(benchmark):
    result = once(
        benchmark,
        lambda: run_update_experiment(
            "smartscada", rate=OFFERED, duration=DURATION, warmup=WARMUP
        ),
    )
    drop = 1.0 - result.throughput / OFFERED
    print_table(
        "Figure 8(a) — update value, SMaRt-SCADA",
        ["system", "offered (ops/s)", "measured (ops/s)", "drop", "paper drop"],
        [
            [
                "SMaRt-SCADA",
                int(OFFERED),
                f"{result.throughput:.0f}",
                f"{drop:.1%}",
                "~6%",
            ]
        ],
    )
    # The paper's shape: a small single-digit drop, not a collapse.
    assert 0.02 <= drop <= 0.12
