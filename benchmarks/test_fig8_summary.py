"""The complete Figure 8 reproduction, as one paper-style table.

Regenerates all three panels in a single run and prints them side by
side with the paper's numbers — the headline artefact of this
reproduction. (The per-panel benches assert tighter bands; this one
checks the cross-panel ordering that defines the figure.)
"""

from conftest import once, print_table

from repro.workloads import run_update_experiment, run_write_experiment

OFFERED = 1000.0


def run_everything():
    results = {}
    for ratio in (0.0, 0.5, 1.0):
        for system in ("neoscada", "smartscada"):
            results[(system, "update", ratio)] = run_update_experiment(
                system, rate=OFFERED, alarm_ratio=ratio, duration=2.5, warmup=0.5
            ).throughput
    for system in ("neoscada", "smartscada"):
        results[(system, "write", None)] = run_write_experiment(
            system, duration=2.5
        ).throughput
    return results


def test_figure8_full_reproduction(benchmark):
    r = once(benchmark, run_everything)

    def drop(key):
        return 1.0 - r[("smartscada",) + key] / r[("neoscada",) + key]

    rows = [
        [
            "8(a) update, no alarms",
            f"{r[('neoscada', 'update', 0.0)]:.0f}",
            f"{r[('smartscada', 'update', 0.0)]:.0f}",
            f"{drop(('update', 0.0)):.1%}",
            "6%",
        ],
        [
            "8(b) update, 50% alarms",
            f"{r[('neoscada', 'update', 0.5)]:.0f}",
            f"{r[('smartscada', 'update', 0.5)]:.0f}",
            f"{drop(('update', 0.5)):.1%}",
            "10%",
        ],
        [
            "8(b) update, 100% alarms",
            f"{r[('neoscada', 'update', 1.0)]:.0f}",
            f"{r[('smartscada', 'update', 1.0)]:.0f}",
            f"{drop(('update', 1.0)):.1%}",
            "25%",
        ],
        [
            "8(c) synchronous writes",
            f"{r[('neoscada', 'write', None)]:.0f}",
            f"{r[('smartscada', 'write', None)]:.0f}",
            f"{drop(('write', None)):.1%}",
            "78%",
        ],
    ]
    print_table(
        "Figure 8 — full reproduction (ops/s)",
        ["experiment", "NeoSCADA", "SMaRt-SCADA", "overhead", "paper"],
        rows,
    )
    # The figure's defining shape: overheads strictly ordered
    # 8(a) < 8(b)-50% < 8(b)-100% < 8(c).
    overheads = [
        drop(("update", 0.0)),
        drop(("update", 0.5)),
        drop(("update", 1.0)),
        drop(("write", None)),
    ]
    assert overheads == sorted(overheads)
    assert overheads[0] < 0.12
    assert overheads[-1] > 0.6
    # NeoSCADA handles the full offered update load in every scenario.
    for ratio in (0.0, 0.5, 1.0):
        assert r[("neoscada", "update", ratio)] >= OFFERED * 0.98
